//! Problem storage abstraction: dense and CSR backends behind one trait.
//!
//! The SEA drivers never need random access to a whole matrix — each
//! equilibration pass walks *rows* of the prior, the weight table, and the
//! iterate (columns are handled by solving rows of an explicit transpose).
//! [`Storage`] captures exactly that access pattern, so the solvers can run
//! unchanged over [`DenseMatrix`] (the historical backend) or
//! [`CsrMatrix`] (support-only storage for sparse CMPs).
//!
//! Two invariants make dense and sparse solves *bitwise* comparable:
//!
//! 1. Within a row, stored entries are visited in increasing column order in
//!    both backends (dense trivially; CSR by construction), so the kernel
//!    sees the same value sequences.
//! 2. A problem's prior, weights, and iterates all share one pattern
//!    ([`Storage::same_pattern`]); for CSR the pattern `Arc`s are literally
//!    shared, so this is a pointer check.
//!
//! For CSR storage the stored pattern **is** the support: missing cells are
//! structural zeros (never variables), stored cells — including stored
//! zeros — are variables. `ZeroPolicy` therefore has no effect on sparse
//! problems; [`Storage::from_dense`] keeps every dense cell (stored zeros
//! included) so that a dense problem and its sparse re-construction describe
//! the same feasible set.

use crate::error::SeaError;
use sea_linalg::{CsrMatrix, DenseMatrix};
use std::fmt;
use std::ops::Range;

/// Borrowed view of one row of a [`Storage`] backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowView<'a> {
    /// A contiguous dense row: entry `j` lives at `row[j]`.
    Dense(&'a [f64]),
    /// A sparse row: entry `idx[k]` (strictly increasing) has value
    /// `vals[k]`; absent columns are structural zeros.
    Indexed {
        /// Column indices of the stored entries, strictly increasing.
        idx: &'a [u32],
        /// Stored values, parallel to `idx`.
        vals: &'a [f64],
    },
}

impl RowView<'_> {
    /// Number of stored entries in this row.
    #[inline]
    pub fn stored(&self) -> usize {
        match self {
            RowView::Dense(row) => row.len(),
            RowView::Indexed { vals, .. } => vals.len(),
        }
    }
}

/// Matrix storage backend for SEA problems and iterates.
///
/// Implementations must visit stored entries of a row in increasing column
/// order (see the module docs for why), and `transposed` must order each
/// transposed row by original row index — the order the dense column pass
/// walks.
pub trait Storage: Clone + fmt::Debug + PartialEq + Send + Sync + 'static {
    /// Backend name for manifests, events, and CLI flags (`"dense"`/`"csr"`).
    fn label() -> &'static str;

    /// Number of rows `m`.
    fn rows(&self) -> usize;

    /// Number of columns `n`.
    fn cols(&self) -> usize;

    /// Number of stored entries (`m·n` dense; pattern nnz for CSR).
    fn stored(&self) -> usize;

    /// All stored values, row-major over the pattern.
    fn values(&self) -> &[f64];

    /// Mutable view of all stored values.
    fn values_mut(&mut self) -> &mut [f64];

    /// Borrowed view of row `i`.
    fn row_view(&self, i: usize) -> RowView<'_>;

    /// Range of row `i`'s stored values within [`Storage::values`].
    fn row_range(&self, i: usize) -> Range<usize>;

    /// Mutable stored values of row `i`.
    fn row_values_mut(&mut self, i: usize) -> &mut [f64];

    /// A matrix with the same shape *and pattern*, all stored values zero.
    ///
    /// # Errors
    /// Propagates allocation/shape failures from the backend.
    fn zeros_like(&self) -> Result<Self, SeaError>;

    /// Cache-friendly explicit transpose (built once per solve for the
    /// column pass).
    ///
    /// # Errors
    /// Propagates allocation failures from the backend.
    fn transposed(&self) -> Result<Self, SeaError>;

    /// `true` when `other` has the same shape and support pattern.
    fn same_pattern(&self, other: &Self) -> bool;

    /// Value at `(i, j)`; structural zeros read as `0.0`.
    fn get(&self, i: usize, j: usize) -> f64;

    /// Per-row sums of stored values into `out` (length `rows`).
    fn row_sums_into(&self, out: &mut [f64]);

    /// Per-column sums of stored values into `out` (length `cols`).
    fn col_sums_into(&self, out: &mut [f64]);

    /// Largest absolute difference of stored values against a same-pattern
    /// matrix.
    fn max_abs_diff(&self, other: &Self) -> f64;

    /// Overwrite stored values from a same-pattern matrix.
    fn copy_values_from(&mut self, other: &Self);

    /// Import a dense matrix, keeping **every** cell as a variable (for CSR
    /// this means a full pattern with stored zeros — see the module docs).
    ///
    /// # Errors
    /// Propagates backend construction failures.
    fn from_dense(dense: &DenseMatrix) -> Result<Self, SeaError>;

    /// Materialize as a dense matrix (structural zeros become stored zeros).
    ///
    /// # Errors
    /// Propagates allocation failures from the backend.
    fn to_dense(&self) -> Result<DenseMatrix, SeaError>;
}

impl Storage for DenseMatrix {
    fn label() -> &'static str {
        "dense"
    }

    #[inline]
    fn rows(&self) -> usize {
        DenseMatrix::rows(self)
    }

    #[inline]
    fn cols(&self) -> usize {
        DenseMatrix::cols(self)
    }

    #[inline]
    fn stored(&self) -> usize {
        DenseMatrix::len(self)
    }

    #[inline]
    fn values(&self) -> &[f64] {
        self.as_slice()
    }

    #[inline]
    fn values_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }

    #[inline]
    fn row_view(&self, i: usize) -> RowView<'_> {
        RowView::Dense(self.row(i))
    }

    #[inline]
    fn row_range(&self, i: usize) -> Range<usize> {
        let n = DenseMatrix::cols(self);
        i * n..(i + 1) * n
    }

    #[inline]
    fn row_values_mut(&mut self, i: usize) -> &mut [f64] {
        self.row_mut(i)
    }

    fn zeros_like(&self) -> Result<Self, SeaError> {
        DenseMatrix::zeros(DenseMatrix::rows(self), DenseMatrix::cols(self)).map_err(SeaError::from)
    }

    fn transposed(&self) -> Result<Self, SeaError> {
        Ok(DenseMatrix::transposed(self))
    }

    fn same_pattern(&self, other: &Self) -> bool {
        DenseMatrix::rows(self) == DenseMatrix::rows(other)
            && DenseMatrix::cols(self) == DenseMatrix::cols(other)
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        DenseMatrix::get(self, i, j)
    }

    fn row_sums_into(&self, out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.row(i).iter().sum();
        }
    }

    fn col_sums_into(&self, out: &mut [f64]) {
        DenseMatrix::col_sums_into(self, out);
    }

    fn max_abs_diff(&self, other: &Self) -> f64 {
        DenseMatrix::max_abs_diff(self, other)
    }

    fn copy_values_from(&mut self, other: &Self) {
        self.as_mut_slice().copy_from_slice(other.as_slice());
    }

    fn from_dense(dense: &DenseMatrix) -> Result<Self, SeaError> {
        Ok(dense.clone())
    }

    fn to_dense(&self) -> Result<DenseMatrix, SeaError> {
        Ok(self.clone())
    }
}

impl Storage for CsrMatrix {
    fn label() -> &'static str {
        "csr"
    }

    #[inline]
    fn rows(&self) -> usize {
        CsrMatrix::rows(self)
    }

    #[inline]
    fn cols(&self) -> usize {
        CsrMatrix::cols(self)
    }

    #[inline]
    fn stored(&self) -> usize {
        CsrMatrix::stored(self)
    }

    #[inline]
    fn values(&self) -> &[f64] {
        self.vals()
    }

    #[inline]
    fn values_mut(&mut self) -> &mut [f64] {
        self.vals_mut()
    }

    #[inline]
    fn row_view(&self, i: usize) -> RowView<'_> {
        RowView::Indexed {
            idx: self.row_cols(i),
            vals: self.row_vals(i),
        }
    }

    #[inline]
    fn row_range(&self, i: usize) -> Range<usize> {
        CsrMatrix::row_range(self, i)
    }

    #[inline]
    fn row_values_mut(&mut self, i: usize) -> &mut [f64] {
        CsrMatrix::row_vals_mut(self, i)
    }

    fn zeros_like(&self) -> Result<Self, SeaError> {
        Ok(CsrMatrix::zeros_like(self))
    }

    fn transposed(&self) -> Result<Self, SeaError> {
        Ok(CsrMatrix::transposed(self))
    }

    fn same_pattern(&self, other: &Self) -> bool {
        CsrMatrix::same_pattern(self, other)
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        CsrMatrix::get(self, i, j)
    }

    fn row_sums_into(&self, out: &mut [f64]) {
        CsrMatrix::row_sums_into(self, out);
    }

    fn col_sums_into(&self, out: &mut [f64]) {
        CsrMatrix::col_sums_into(self, out);
    }

    fn max_abs_diff(&self, other: &Self) -> f64 {
        CsrMatrix::max_abs_diff(self, other)
    }

    fn copy_values_from(&mut self, other: &Self) {
        debug_assert!(CsrMatrix::same_pattern(self, other));
        self.vals_mut().copy_from_slice(other.vals());
    }

    fn from_dense(dense: &DenseMatrix) -> Result<Self, SeaError> {
        CsrMatrix::from_dense_full(dense).map_err(SeaError::from)
    }

    fn to_dense(&self) -> Result<DenseMatrix, SeaError> {
        CsrMatrix::to_dense(self).map_err(SeaError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]).unwrap()
    }

    fn generic_round_trip<S: Storage>(src: &DenseMatrix) {
        let s = S::from_dense(src).unwrap();
        assert_eq!(s.rows(), src.rows());
        assert_eq!(s.cols(), src.cols());
        let back = s.to_dense().unwrap();
        assert_eq!(&back, src);
        let t = s.transposed().unwrap();
        assert_eq!(t.rows(), src.cols());
        assert_eq!(t.get(2, 0), 2.0);
        let z = s.zeros_like().unwrap();
        assert!(z.same_pattern(&s));
        assert!(z.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn both_backends_round_trip() {
        let d = dense();
        generic_round_trip::<DenseMatrix>(&d);
        generic_round_trip::<CsrMatrix>(&d);
    }

    #[test]
    fn from_dense_keeps_every_cell_for_csr() {
        let d = dense();
        let c = <CsrMatrix as Storage>::from_dense(&d).unwrap();
        // Full pattern: stored zeros stay variables, matching dense exactly.
        assert_eq!(Storage::stored(&c), 6);
        assert_eq!(Storage::values(&c), d.as_slice());
    }

    #[test]
    fn row_views_agree_across_backends() {
        let d = dense();
        let c = CsrMatrix::from_dense_pruned(&d).unwrap();
        match c.row_view(0) {
            RowView::Indexed { idx, vals } => {
                assert_eq!(idx, &[0, 2]);
                assert_eq!(vals, &[1.0, 2.0]);
            }
            RowView::Dense(_) => panic!("CSR row view must be indexed"),
        }
        match Storage::row_view(&d, 0) {
            RowView::Dense(row) => assert_eq!(row, &[1.0, 0.0, 2.0]),
            RowView::Indexed { .. } => panic!("dense row view must be dense"),
        }
    }

    #[test]
    fn sums_and_diffs_match_between_backends() {
        let d = dense();
        let c = CsrMatrix::from_dense_pruned(&d).unwrap();
        let mut rd = vec![0.0; 2];
        let mut rc = vec![0.0; 2];
        Storage::row_sums_into(&d, &mut rd);
        Storage::row_sums_into(&c, &mut rc);
        assert_eq!(rd, rc);
        let mut cd = vec![0.0; 3];
        let mut cc = vec![0.0; 3];
        Storage::col_sums_into(&d, &mut cd);
        Storage::col_sums_into(&c, &mut cc);
        assert_eq!(cd, cc);
    }

    #[test]
    fn row_ranges_index_values() {
        let d = dense();
        let c = CsrMatrix::from_dense_pruned(&d).unwrap();
        assert_eq!(Storage::row_range(&d, 1), 3..6);
        assert_eq!(Storage::row_range(&c, 1), 2..3);
        let mut c2 = c.clone();
        c2.row_values_mut(1)[0] = 9.0;
        assert_eq!(c2.get(1, 1), 9.0);
    }
}
