//! Glue between the sea-observe event schema and solver-side types.
//!
//! An event log recorded by [`crate::solver::solve_diagonal_observed`] (or
//! the general/bounded drivers) carries, in its `PhaseEnd` events, the same
//! per-task cost vectors that `record_trace` collects in process. This
//! module converts between the two representations so a JSONL solve log can
//! be replayed through the sea-parsim scheduling simulator exactly like an
//! in-process [`ExecutionTrace`].

use crate::trace::{ExecutionTrace, PhaseKind};
use sea_observe::{Event, PhaseLabel};

/// Map a trace phase kind to its event-schema label (same wire names).
pub fn phase_label(kind: PhaseKind) -> PhaseLabel {
    match kind {
        PhaseKind::RowEquilibration => PhaseLabel::RowEquilibration,
        PhaseKind::ColumnEquilibration => PhaseLabel::ColumnEquilibration,
        PhaseKind::ConvergenceCheck => PhaseLabel::ConvergenceCheck,
        PhaseKind::Projection => PhaseLabel::Projection,
    }
}

/// Inverse of [`phase_label`].
pub fn phase_kind(label: PhaseLabel) -> PhaseKind {
    match label {
        PhaseLabel::RowEquilibration => PhaseKind::RowEquilibration,
        PhaseLabel::ColumnEquilibration => PhaseKind::ColumnEquilibration,
        PhaseLabel::ConvergenceCheck => PhaseKind::ConvergenceCheck,
        PhaseLabel::Projection => PhaseKind::Projection,
    }
}

/// Rebuild an [`ExecutionTrace`] from a recorded event stream.
///
/// Every `PhaseEnd` event becomes one phase, in log order. When the event
/// carries per-task costs they are used verbatim (matching what
/// `record_trace` would have produced); serial drivers that omit them fall
/// back to a single task holding the whole phase duration.
pub fn trace_from_events(events: &[Event]) -> ExecutionTrace {
    let mut trace = ExecutionTrace::new();
    for event in events {
        if let Event::PhaseEnd {
            label,
            seconds,
            task_seconds,
            ..
        } = event
        {
            let costs = if task_seconds.is_empty() {
                vec![*seconds]
            } else {
                task_seconds.clone()
            };
            trace.push(phase_kind(*label), costs);
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_mapping_is_a_bijection() {
        for kind in PhaseKind::ALL {
            assert_eq!(phase_kind(phase_label(kind)), kind);
            assert_eq!(phase_label(kind).name(), kind.name());
        }
    }

    #[test]
    fn trace_from_events_uses_task_costs_and_falls_back() {
        let events = vec![
            Event::PhaseStart {
                label: PhaseLabel::RowEquilibration,
                tasks: 3,
            },
            Event::PhaseEnd {
                label: PhaseLabel::RowEquilibration,
                tasks: 3,
                seconds: 0.6,
                task_seconds: vec![0.1, 0.2, 0.3],
            },
            Event::PhaseEnd {
                label: PhaseLabel::ConvergenceCheck,
                tasks: 1,
                seconds: 0.05,
                task_seconds: Vec::new(),
            },
        ];
        let trace = trace_from_events(&events);
        assert_eq!(trace.phases.len(), 2);
        assert_eq!(trace.phases[0].kind, PhaseKind::RowEquilibration);
        assert_eq!(trace.phases[0].task_seconds, vec![0.1, 0.2, 0.3]);
        assert_eq!(trace.phases[1].task_seconds, vec![0.05]);
        assert!((trace.serial_fraction() - 0.05 / 0.65).abs() < 1e-12);
    }

    #[test]
    fn round_trip_through_observed_solve() {
        use crate::problem::{DiagonalProblem, TotalSpec};
        use crate::solver::{solve_diagonal_observed, SeaOptions};
        use sea_linalg::DenseMatrix;

        let p = DiagonalProblem::new(
            DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(),
            DenseMatrix::filled(2, 2, 1.0).unwrap(),
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let mut opts = SeaOptions::with_epsilon(1e-10);
        opts.record_trace = true;
        let mut obs = sea_observe::VecObserver::new();
        let sol = solve_diagonal_observed(&p, &opts, &mut obs).unwrap();

        let in_process = sol.stats.trace.as_ref().unwrap();
        let from_log = trace_from_events(&obs.events);
        // Same phase sequence with identical per-task costs: the event log
        // carries the exact vectors record_trace collected.
        assert_eq!(from_log.phases.len(), in_process.phases.len());
        for (a, b) in from_log.phases.iter().zip(&in_process.phases) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.task_seconds, b.task_seconds);
        }
    }
}
