//! The Splitting Equilibration Algorithm for diagonal problems (paper §3.1).
//!
//! One SEA iteration is a dual block-coordinate ascent sweep:
//!
//! 1. **Row equilibration** — `λᵗ⁺¹ → max_λ ζ(λ, μᵗ)`: all `m` row
//!    subproblems solved independently by exact equilibration (parallel).
//! 2. **Column equilibration** — `μᵗ⁺¹ → max_μ ζ(λᵗ⁺¹, μ)`: all `n` column
//!    subproblems (parallel).
//! 3. **Convergence verification** — the serial phase (the paper's §4.2
//!    identifies it as the parallelization bottleneck).
//!
//! The same driver covers all three problem classes (3.1.1 unknown totals,
//! 3.1.2 SAM, 3.1.3 fixed totals); the class only changes the
//! [`crate::knapsack::TotalMode`] of each subproblem and the
//! default stopping rule.

use crate::components::{
    normalize_multipliers_storage, shard_boundaries, storage_support_components,
};
use crate::dual;
use crate::equilibrate::{
    equilibration_pass, PassCounters, PassInputs, ShardSink, DEFAULT_BLOCK_ROWS,
};
use crate::error::SeaError;
use crate::kernel_simd::{Precision, SimdMode};
use crate::knapsack::{KernelKind, TotalMode};
use crate::parallel::Parallelism;
use crate::problem::{DiagonalProblem, Residuals, TotalSpec};
use crate::storage::Storage;
use crate::supervisor::{SolveControl, StopReason, SupervisedSolution, SupervisorOptions};
use crate::trace::{ExecutionTrace, PhaseKind};
use sea_linalg::{vector, DenseMatrix};
use sea_observe::{
    Event, KernelCounters, NullObserver, Observer, PhaseLabel, SpanKind, TelemetrySample,
};
use std::time::{Duration, Instant};

/// Telemetry cadence: one sample every this many convergence checks.
/// The sample payload (dual value ζ and the active-set census) costs a
/// full O(nnz) sweep each, so emitting it on every check would blow the
/// span-profiling overhead budget; the residual itself is still checked
/// at the configured `check_every`, and the profiler's adaptive stride
/// decimates the stream further on long solves.
const TELEMETRY_EVERY_CHECKS: u64 = 8;

/// Stopping rules. The paper uses [`MaxAbsChange`](Self::MaxAbsChange) for
/// the unknown-totals class (§3.1.1 Step 3) and relative row balance for
/// the SAM and fixed classes (§3.1.2/3.1.3 Step 3); the dual view (eq. 27)
/// justifies [`ConstraintNorm`](Self::ConstraintNorm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceCriterion {
    /// `maxᵢⱼ |xᵢⱼᵗ − xᵢⱼ^(last check)| ≤ ε`.
    MaxAbsChange,
    /// `maxᵢ |Σⱼ xᵢⱼ − sᵢ| / max(|sᵢ|, 10⁻¹²) ≤ ε` (column constraints are
    /// exact after the column pass).
    RelativeRowBalance,
    /// `‖∇ζ(λ,μ)‖₂ ≤ ε`, i.e. the Euclidean norm of the remaining
    /// constraint violations.
    ConstraintNorm,
}

impl ConvergenceCriterion {
    /// Stable wire name for event logs and metrics.
    pub fn name(self) -> &'static str {
        match self {
            ConvergenceCriterion::MaxAbsChange => "max_abs_change",
            ConvergenceCriterion::RelativeRowBalance => "relative_row_balance",
            ConvergenceCriterion::ConstraintNorm => "constraint_norm",
        }
    }
}

/// Options for [`solve_diagonal`].
#[derive(Debug, Clone)]
pub struct SeaOptions {
    /// Stopping tolerance `ε` (meaning depends on the criterion).
    pub epsilon: f64,
    /// Stopping rule; `None` selects the paper's default for the problem
    /// class.
    pub criterion: Option<ConvergenceCriterion>,
    /// Hard iteration cap; the solve reports `converged = false` when hit.
    pub max_iterations: usize,
    /// Verify convergence only every `k` iterations (the paper checks every
    /// other iteration for the spatial-price runs to shrink the serial
    /// phase).
    pub check_every: usize,
    /// Fan-out strategy for the row/column phases.
    pub parallelism: Parallelism,
    /// Which equilibration kernel solves the row/column subproblems:
    /// the sort-based reference or the expected-linear selection kernel
    /// (identical solutions; see [`crate::knapsack::KernelKind`]).
    pub kernel: KernelKind,
    /// SIMD policy for the equilibration kernels, resolved once per solve
    /// against the running CPU. [`SimdMode::Off`] (the default) runs the
    /// scalar oracle; the vectorized paths are bitwise-identical to it.
    pub simd: SimdMode,
    /// Arithmetic precision of the equilibration iterates.
    /// [`Precision::F32Mixed`] runs the λ-search in `f32` until the
    /// residual reaches `ε` or stagnates, then switches every pass to a
    /// full-`f64` polish epoch; convergence is only declared from polish.
    pub precision: Precision,
    /// Record an [`ExecutionTrace`] for the scheduling simulator.
    pub record_trace: bool,
    /// Enable the paper's Modified Algorithm with this bound `R`: when some
    /// `|λᵢ| > R`, multipliers are shifted along support components to stay
    /// bounded (dual value unchanged).
    pub multiplier_bound: Option<f64>,
    /// Warm start: initial column multipliers `μ¹` (length n). The paper's
    /// Step 0 uses `μ¹ = 0`; the general solver warm-starts its inner
    /// diagonal solves with the previous outer iteration's multipliers.
    pub initial_mu: Option<Vec<f64>>,
    /// Record a per-check convergence history (iteration, dual value,
    /// stopping residual) — used by the theory-validation experiments to
    /// confirm monotone dual ascent and the geometric rate (eq. 71, 76).
    /// Costs one ζ evaluation per convergence check.
    pub record_history: bool,
    /// Target shard size (rows/columns per block) for parallel passes;
    /// `None` uses [`DEFAULT_BLOCK_ROWS`]. Shards are aligned to
    /// support-graph component boundaries (a shard never splits a component
    /// smaller than twice the target), purely as a locality hint — results
    /// are bitwise-identical for every shard size.
    pub block_size: Option<usize>,
}

impl Default for SeaOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-8,
            criterion: None,
            max_iterations: 100_000,
            check_every: 1,
            parallelism: Parallelism::Serial,
            kernel: KernelKind::SortScan,
            simd: SimdMode::Off,
            precision: Precision::F64,
            record_trace: false,
            multiplier_bound: None,
            initial_mu: None,
            record_history: false,
            block_size: None,
        }
    }
}

impl SeaOptions {
    /// Options matching the paper's experiment settings for a given
    /// tolerance: variant-default criterion, check every iteration.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }

    fn effective_criterion(&self, spec: &TotalSpec) -> ConvergenceCriterion {
        self.criterion.unwrap_or(match spec {
            TotalSpec::Fixed { .. } => ConvergenceCriterion::RelativeRowBalance,
            TotalSpec::Elastic { .. } => ConvergenceCriterion::MaxAbsChange,
            TotalSpec::Balanced { .. } => ConvergenceCriterion::RelativeRowBalance,
        })
    }
}

/// One entry of the optional convergence history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationSnapshot {
    /// SEA iteration at which the check ran.
    pub iteration: usize,
    /// Dual value `ζ(λ, μ)` after the column pass.
    pub dual_value: f64,
    /// Stopping-criterion residual at the check.
    pub residual: f64,
}

/// Outcome statistics of a solve.
#[derive(Debug, Clone)]
pub struct SolveStats {
    /// Completed SEA iterations (row + column sweeps).
    pub iterations: usize,
    /// Whether the stopping rule fired before the iteration cap.
    pub converged: bool,
    /// Final value of the stopping quantity.
    pub residual: f64,
    /// Final constraint residuals of the returned solution.
    pub residuals: Residuals,
    /// Primal objective at the returned solution.
    pub objective: f64,
    /// Dual value `ζ(λ, μ)` at the returned multipliers.
    pub dual_value: f64,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Phase-by-phase trace (present iff `record_trace`).
    pub trace: Option<ExecutionTrace>,
    /// Per-check convergence history (present iff `record_history`).
    pub history: Option<Vec<IterationSnapshot>>,
}

/// A computed estimate: the matrix, totals, multipliers, and statistics.
#[derive(Debug, Clone)]
pub struct Solution<S: Storage = DenseMatrix> {
    /// The matrix estimate `X` (`m×n`; same storage backend — and, for
    /// sparse backends, the same support pattern — as the problem's prior).
    pub x: S,
    /// Row totals `s` (equals `s⁰` for fixed problems).
    pub s: Vec<f64>,
    /// Column totals `d` (equals `d⁰` fixed, equals `s` balanced).
    pub d: Vec<f64>,
    /// Row multipliers `λ`.
    pub lambda: Vec<f64>,
    /// Column multipliers `μ`.
    pub mu: Vec<f64>,
    /// Solve statistics.
    pub stats: SolveStats,
}

/// Solve a diagonal constrained matrix problem with SEA.
///
/// # Errors
/// * [`SeaError::InfeasibleSubproblem`] if a structural-zero row/column has
///   a positive fixed total.
/// * [`SeaError::NumericalBreakdown`] if the iterates become non-finite.
pub fn solve_diagonal<S: Storage>(
    p: &DiagonalProblem<S>,
    opts: &SeaOptions,
) -> Result<Solution<S>, SeaError> {
    solve_diagonal_observed(p, opts, &mut NullObserver)
}

/// [`solve_diagonal`] with an event sink.
///
/// Every lifecycle transition of the solve (phase boundaries, convergence
/// checks, multiplier-bound activations, kernel work counters) is reported
/// to `obs` as a typed [`Event`]. With [`NullObserver`] the instrumentation
/// compiles down to nothing: `enabled()` is a constant `false`, so no event
/// is ever constructed and the hot loop stays allocation-free.
///
/// # Errors
/// Same contract as [`solve_diagonal`].
pub fn solve_diagonal_observed<S: Storage, O: Observer + Send>(
    p: &DiagonalProblem<S>,
    opts: &SeaOptions,
    obs: &mut O,
) -> Result<Solution<S>, SeaError> {
    opts.parallelism
        .run(move || solve_diagonal_inner(p, opts, obs, &mut SolveControl::passive()))
}

/// [`solve_diagonal_observed`] under a fault-tolerant supervisor.
///
/// The supervisor enforces the budget, watches for cancellation, stagnation
/// and numerical breakdown, writes crash-safe checkpoints, and falls back
/// per-subproblem from quickselect to sort-scan on kernel pathology. The
/// contract is: either `Ok` with a typed [`StopReason`] and a KKT-residual
/// certificate for the returned (possibly partial) iterate, or a typed
/// [`SeaError`] — never a panic or a silently wrong answer.
///
/// # Errors
/// Same validation errors as [`solve_diagonal`], plus
/// [`SeaError::WorkerPanic`] for contained worker panics and
/// [`SeaError::NumericalBreakdown`] only when iterates go non-finite before
/// any convergence check has certified a restorable snapshot.
///
/// # Example
///
/// A budgeted solve: whatever stops it, the outcome names the reason and
/// certifies the returned iterate.
///
/// ```
/// use sea_core::{
///     solve_diagonal_supervised, DiagonalProblem, NullObserver, SeaOptions, SolveBudget,
///     StopReason, SupervisorOptions, TotalSpec, WeightScheme,
/// };
/// use sea_linalg::DenseMatrix;
///
/// let x0 = DenseMatrix::from_rows(&[vec![10.0, 5.0], vec![5.0, 10.0]])?;
/// let gamma = WeightScheme::ChiSquare.entry_weights(&x0)?;
/// let p = DiagonalProblem::new(
///     x0,
///     gamma,
///     TotalSpec::Fixed { s0: vec![18.0, 18.0], d0: vec![18.0, 18.0] },
/// )?;
/// let sup = SupervisorOptions {
///     budget: SolveBudget { max_iterations: Some(500), ..SolveBudget::default() },
///     ..SupervisorOptions::default()
/// };
/// let opts = SeaOptions::with_epsilon(1e-10);
/// let out = solve_diagonal_supervised(&p, &opts, &sup, &mut NullObserver)?;
/// assert_eq!(out.stop, StopReason::Converged);
/// assert!(out.certificate.is_optimal(1e-6));
/// # Ok::<(), sea_core::SeaError>(())
/// ```
pub fn solve_diagonal_supervised<S: Storage, O: Observer + Send>(
    p: &DiagonalProblem<S>,
    opts: &SeaOptions,
    sup: &SupervisorOptions,
    obs: &mut O,
) -> Result<SupervisedSolution<S>, SeaError> {
    opts.parallelism.run(move || {
        let mut ctrl = SolveControl::active(sup);
        let solution = solve_diagonal_inner(p, opts, obs, &mut ctrl)?;
        let stop = if solution.stats.converged {
            StopReason::Converged
        } else {
            ctrl.stop().unwrap_or(StopReason::IterationCap)
        };
        let certificate = crate::verify::verify_solution(p, &solution);
        Ok(SupervisedSolution {
            solution,
            stop,
            certificate,
            kernel_fallbacks: ctrl.fallbacks,
            checkpoint_error: ctrl.take_checkpoint_error(),
        })
    })
}

fn solve_diagonal_inner<S: Storage, O: Observer>(
    p: &DiagonalProblem<S>,
    opts: &SeaOptions,
    obs: &mut O,
    ctrl: &mut SolveControl<'_>,
) -> Result<Solution<S>, SeaError> {
    let start = Instant::now();
    let (m, n) = (p.m(), p.n());
    let check_every = opts.check_every.max(1);
    let criterion = opts.effective_criterion(p.totals());
    // Resolve the SIMD policy once, before the hot loop: `Force` without
    // AVX2 fails here, up front, instead of per subproblem.
    let simd_level = opts.simd.resolve()?;
    // Mixed-precision phase control. `f32_phase` drives the passes; for
    // `F32Mixed` the convergence check flips it off (the f64 polish epoch)
    // once the f32 residual reaches ε or stagnates, and convergence is only
    // ever declared with the flag off. Pure `F32` never polishes — its
    // residual is still measured on the f64-materialized iterates, so it
    // stalls rather than lies on problems f32 cannot resolve.
    let mut f32_phase = opts.precision != Precision::F64;
    let mut prev_check_residual = f64::INFINITY;
    let mut stagnant_checks = 0u32;
    let observing = obs.enabled();
    if observing {
        obs.record(&Event::SolveStart {
            solver: "diagonal",
            rows: m,
            cols: n,
            kernel: opts.kernel.name(),
            parallelism: opts.parallelism.label(),
            criterion: criterion.name(),
        });
    }
    // Span signalling is independent of event observation: a profiler can
    // consume spans with events off (the alloc-free configuration) and an
    // event sink can run without span overhead.
    let spanning = obs.spans_enabled();
    if spanning {
        obs.span_open(SpanKind::Solve, 0, (m + n) as u64);
    }
    // Kernel counters are only harvested when someone is listening (an
    // observer, a span profiler needing per-span attribution, or a
    // supervisor enforcing a work budget); the per-task atomic flush is
    // skipped entirely otherwise.
    let counters = (observing || spanning || ctrl.needs_counters()).then(PassCounters::default);
    // Fallbacks reported so far, to emit per-pass deltas.
    let mut fallbacks_seen = 0u64;

    // Transposed copies once per solve: the column pass then walks
    // contiguous memory (for sparse storage, transposition doubles as the
    // column-access view of the support).
    let x0_t = p.x0().transposed()?;
    let gamma_t = p.gamma().transposed()?;

    // Shard boundaries for parallel passes, computed once per solve from
    // the prior's support-graph components (cheap relative to one pass).
    // Purely a locality hint: rows are independent, so results are
    // bitwise-identical for every sharding.
    let (row_starts, col_starts) = if matches!(opts.parallelism, Parallelism::Serial) {
        (None, None)
    } else {
        let target = opts.block_size.unwrap_or(DEFAULT_BLOCK_ROWS);
        let (row_labels, col_labels) = storage_support_components(p.x0(), f64::NEG_INFINITY);
        (
            Some(shard_boundaries(&row_labels, target)),
            Some(shard_boundaries(&col_labels, target)),
        )
    };

    let mut lambda = vec![0.0; m];
    let mut mu = match &opts.initial_mu {
        None => vec![0.0; n],
        Some(mu0) => {
            if mu0.len() != n {
                return Err(SeaError::Shape {
                    context: "initial_mu",
                    expected: n,
                    actual: mu0.len(),
                });
            }
            mu0.clone()
        }
    };
    let mut s = vec![0.0; m];
    let mut d = vec![0.0; n];
    let mut x = p.x0().zeros_like()?;
    let mut x_t = x0_t.zeros_like()?;
    // For MaxAbsChange: the iterate at the previous check (x⁰ := X⁰).
    let mut x_t_prev = if criterion == ConvergenceCriterion::MaxAbsChange {
        x0_t.clone()
    } else {
        x0_t.zeros_like()?
    };

    let mut trace = opts.record_trace.then(ExecutionTrace::new);
    let mut history: Option<Vec<IterationSnapshot>> = opts.record_history.then(Vec::new);
    let mut row_costs: Vec<f64> = Vec::new();
    let mut col_costs: Vec<f64> = Vec::new();
    // Per-shard timing sink for span profiling of parallel passes. Sized
    // on first use and reused every pass (allocation-free steady state).
    let mut shard_sink =
        (spanning && !matches!(opts.parallelism, Parallelism::Serial)).then(ShardSink::new);
    // Whether an Epoch span is open (breaks exit mid-epoch).
    let mut epoch_open = false;
    // Convergence checks seen, for telemetry payload rate limiting.
    let mut checks_seen = 0u64;
    // Row sums of X (= column sums of Xᵀ), reused every check so the
    // steady-state loop performs no allocation.
    let mut row_sums_buf = vec![0.0; m];

    let mut iterations = 0usize;
    let mut converged = false;
    let mut residual = f64::INFINITY;

    let row_support = p.support().map(|sup| sup.rows.as_slice());
    let col_support = p.support().map(|sup| sup.cols.as_slice());

    for t in 1..=opts.max_iterations {
        iterations = t;
        if spanning {
            obs.span_open(SpanKind::Epoch, t as u64, 0);
            epoch_open = true;
        }

        // ---- Step 1: row equilibration (parallel over rows). -------------
        {
            let inputs = PassInputs {
                prior: p.x0(),
                gamma: p.gamma(),
                support: row_support,
                shift: &mu,
                side: "row",
                kernel: opts.kernel,
                simd: simd_level,
                f32_phase,
                fault: ctrl.task_fault(t, "row"),
            };
            if observing {
                obs.record(&Event::PhaseStart {
                    label: PhaseLabel::RowEquilibration,
                    tasks: m,
                });
            }
            let span_c0 = span_snapshot(spanning, counters.as_ref());
            if spanning {
                obs.span_open(SpanKind::RowPass, t as u64, m as u64);
            }
            let phase_t0 = observing.then(Instant::now);
            let costs = (trace.is_some() || observing).then_some(&mut row_costs);
            match p.totals() {
                TotalSpec::Fixed { s0, .. } => equilibration_pass(
                    &inputs,
                    &|i| TotalMode::Fixed { total: s0[i] },
                    &mut lambda,
                    &mut s,
                    &mut x,
                    opts.parallelism,
                    costs,
                    counters.as_ref(),
                    row_starts.as_deref(),
                    shard_sink.as_mut(),
                )?,
                TotalSpec::Elastic { alpha, s0, .. } => equilibration_pass(
                    &inputs,
                    &|i| TotalMode::Elastic {
                        alpha: alpha[i],
                        prior: s0[i],
                        cross: 0.0,
                    },
                    &mut lambda,
                    &mut s,
                    &mut x,
                    opts.parallelism,
                    costs,
                    counters.as_ref(),
                    row_starts.as_deref(),
                    shard_sink.as_mut(),
                )?,
                TotalSpec::Balanced { alpha, s0 } => {
                    let mu_ref: &[f64] = &mu;
                    equilibration_pass(
                        &inputs,
                        &|i| TotalMode::Elastic {
                            alpha: alpha[i],
                            prior: s0[i],
                            cross: mu_ref[i],
                        },
                        &mut lambda,
                        &mut s,
                        &mut x,
                        opts.parallelism,
                        costs,
                        counters.as_ref(),
                        row_starts.as_deref(),
                        shard_sink.as_mut(),
                    )?
                }
            }
            if spanning {
                close_pass_span(obs, shard_sink.as_ref(), counters.as_ref(), span_c0);
            }
            if let Some(tr) = trace.as_mut() {
                tr.push(PhaseKind::RowEquilibration, row_costs.clone());
            }
            if let Some(t0) = phase_t0 {
                obs.record(&Event::PhaseEnd {
                    label: PhaseLabel::RowEquilibration,
                    tasks: m,
                    seconds: t0.elapsed().as_secs_f64(),
                    task_seconds: row_costs.clone(),
                });
            }
            if observing {
                if let Some(c) = counters.as_ref() {
                    let total = c.fallbacks();
                    if total > fallbacks_seen {
                        obs.record(&Event::FallbackTriggered {
                            iteration: t,
                            phase: PhaseLabel::RowEquilibration,
                            count: total - fallbacks_seen,
                        });
                        fallbacks_seen = total;
                    }
                }
            }
        }

        // ---- Step 2: column equilibration (parallel over columns). -------
        {
            let inputs = PassInputs {
                prior: &x0_t,
                gamma: &gamma_t,
                support: col_support,
                shift: &lambda,
                side: "column",
                kernel: opts.kernel,
                simd: simd_level,
                f32_phase,
                fault: ctrl.task_fault(t, "column"),
            };
            if observing {
                obs.record(&Event::PhaseStart {
                    label: PhaseLabel::ColumnEquilibration,
                    tasks: n,
                });
            }
            let span_c0 = span_snapshot(spanning, counters.as_ref());
            if spanning {
                obs.span_open(SpanKind::ColPass, t as u64, n as u64);
            }
            let phase_t0 = observing.then(Instant::now);
            let costs = (trace.is_some() || observing).then_some(&mut col_costs);
            match p.totals() {
                TotalSpec::Fixed { d0, .. } => equilibration_pass(
                    &inputs,
                    &|j| TotalMode::Fixed { total: d0[j] },
                    &mut mu,
                    &mut d,
                    &mut x_t,
                    opts.parallelism,
                    costs,
                    counters.as_ref(),
                    col_starts.as_deref(),
                    shard_sink.as_mut(),
                )?,
                TotalSpec::Elastic { beta, d0, .. } => equilibration_pass(
                    &inputs,
                    &|j| TotalMode::Elastic {
                        alpha: beta[j],
                        prior: d0[j],
                        cross: 0.0,
                    },
                    &mut mu,
                    &mut d,
                    &mut x_t,
                    opts.parallelism,
                    costs,
                    counters.as_ref(),
                    col_starts.as_deref(),
                    shard_sink.as_mut(),
                )?,
                TotalSpec::Balanced { alpha, s0 } => {
                    let lambda_ref: &[f64] = &lambda;
                    equilibration_pass(
                        &inputs,
                        &|j| TotalMode::Elastic {
                            alpha: alpha[j],
                            prior: s0[j],
                            cross: lambda_ref[j],
                        },
                        &mut mu,
                        &mut d,
                        &mut x_t,
                        opts.parallelism,
                        costs,
                        counters.as_ref(),
                        col_starts.as_deref(),
                        shard_sink.as_mut(),
                    )?
                }
            }
            if spanning {
                close_pass_span(obs, shard_sink.as_ref(), counters.as_ref(), span_c0);
            }
            if let Some(tr) = trace.as_mut() {
                tr.push(PhaseKind::ColumnEquilibration, col_costs.clone());
            }
            if let Some(t0) = phase_t0 {
                obs.record(&Event::PhaseEnd {
                    label: PhaseLabel::ColumnEquilibration,
                    tasks: n,
                    seconds: t0.elapsed().as_secs_f64(),
                    task_seconds: col_costs.clone(),
                });
            }
            if observing {
                if let Some(c) = counters.as_ref() {
                    let total = c.fallbacks();
                    if total > fallbacks_seen {
                        obs.record(&Event::FallbackTriggered {
                            iteration: t,
                            phase: PhaseLabel::ColumnEquilibration,
                            count: total - fallbacks_seen,
                        });
                        fallbacks_seen = total;
                    }
                }
            }
        }

        // For the balanced class the column totals *are* the account totals.
        if matches!(p.totals(), TotalSpec::Balanced { .. }) {
            s.copy_from_slice(&d);
        }

        // Scripted NaN injection (fault harness) lands before the watchdog
        // so the breakdown path is exercised exactly like a real blow-up.
        ctrl.inject_faults(t, &mut lambda);

        // ---- Watchdog: non-finite iterates. ------------------------------
        // Unsupervised solves check multipliers at the convergence check and
        // error out; supervised solves check every iteration (including the
        // full iterate) and restore the last certified snapshot instead.
        let check_now = t % check_every == 0;
        if ctrl.is_active() || check_now {
            let finite = vector::all_finite(&lambda)
                && vector::all_finite(&mu)
                && (!ctrl.is_active() || vector::all_finite(x_t.values()));
            if !finite {
                if ctrl
                    .restore_snapshot(&mut lambda, &mut mu, x_t.values_mut(), &mut s, &mut d)
                    .map(|(it, res)| {
                        iterations = it;
                        residual = res;
                    })
                    .is_some()
                {
                    break;
                }
                return Err(SeaError::NumericalBreakdown { iteration: t });
            }
        }

        // ---- Step 3: convergence verification (serial). ------------------
        if check_now {
            if observing {
                obs.record(&Event::PhaseStart {
                    label: PhaseLabel::ConvergenceCheck,
                    tasks: 1,
                });
            }
            if spanning {
                obs.span_open(SpanKind::Check, t as u64, 1);
            }
            let t0 = Instant::now();
            residual = match criterion {
                ConvergenceCriterion::MaxAbsChange => {
                    let delta = x_t.max_abs_diff(&x_t_prev);
                    x_t_prev.copy_values_from(&x_t);
                    delta
                }
                ConvergenceCriterion::RelativeRowBalance => {
                    // Row sums of X = column sums of Xᵀ.
                    x_t.col_sums_into(&mut row_sums_buf);
                    let target = row_target(p.totals(), &lambda, &s);
                    let mut rel: f64 = 0.0;
                    for i in 0..m {
                        let ti = target(i);
                        rel = rel.max((row_sums_buf[i] - ti).abs() / ti.abs().max(1e-12));
                    }
                    rel
                }
                ConvergenceCriterion::ConstraintNorm => {
                    x_t.col_sums_into(&mut row_sums_buf);
                    let target = row_target(p.totals(), &lambda, &s);
                    let mut sq = 0.0;
                    for i in 0..m {
                        let v = row_sums_buf[i] - target(i);
                        sq += v * v;
                    }
                    sq.sqrt()
                }
            };
            let check_secs = t0.elapsed().as_secs_f64();
            if let Some(tr) = trace.as_mut() {
                tr.push(PhaseKind::ConvergenceCheck, vec![check_secs]);
            }
            // Telemetry's payload (ζ and the active-set census) costs a
            // full O(nnz) sweep each, so the stream is rate limited at
            // the source: one sample every TELEMETRY_EVERY_CHECKS checks
            // keeps the spanning overhead inside the <2% budget, and the
            // profiler's own stride decimates further on long solves.
            let telemetry_now = spanning && checks_seen.is_multiple_of(TELEMETRY_EVERY_CHECKS);
            checks_seen += 1;
            // ζ is only evaluated when something consumes it: the history
            // recorder, an attached observer, or a due telemetry sample.
            let zeta = (history.is_some() || observing || telemetry_now)
                .then(|| dual::dual_value(p, &lambda, &mu));
            if spanning {
                obs.span_close(&KernelCounters::default());
            }
            if telemetry_now {
                let snap = counters
                    .as_ref()
                    .map_or_else(KernelCounters::default, |c| c.snapshot());
                // Active set = positive stored entries of the iterate; the
                // profiler derives churn from consecutive samples.
                let active_set = x_t.values().iter().filter(|v| **v > 0.0).count() as u64;
                obs.telemetry(&TelemetrySample {
                    iteration: t as u64,
                    seconds: start.elapsed().as_secs_f64(),
                    residual,
                    dual_value: zeta.unwrap_or(f64::NAN),
                    kernel_work: snap.work(),
                    active_set,
                });
            }
            if observing {
                obs.record(&Event::PhaseEnd {
                    label: PhaseLabel::ConvergenceCheck,
                    tasks: 1,
                    seconds: check_secs,
                    task_seconds: vec![check_secs],
                });
                obs.record(&Event::ConvergenceCheck {
                    iteration: t,
                    residual,
                    dual_value: zeta,
                    criterion: criterion.name(),
                });
            }
            if let Some(h) = history.as_mut() {
                h.push(IterationSnapshot {
                    iteration: t,
                    dual_value: zeta.unwrap_or(f64::NAN),
                    residual,
                });
            }
            let f32_iterating = f32_phase && opts.precision == Precision::F32Mixed;
            if residual <= opts.epsilon {
                if f32_iterating {
                    // The f32 phase reached tolerance: enter the f64 polish
                    // epoch instead of declaring convergence — the final
                    // iterate (and its KKT certificate) must come from
                    // full-precision passes.
                    f32_phase = false;
                } else {
                    converged = true;
                    break;
                }
            } else if f32_iterating {
                // Stagnation hand-over: three consecutive checks improving
                // the residual by less than 1% mean the f32 search has hit
                // its precision floor; polish in f64 from here.
                if residual > prev_check_residual * 0.99 {
                    stagnant_checks += 1;
                    if stagnant_checks >= 3 {
                        f32_phase = false;
                    }
                } else {
                    stagnant_checks = 0;
                }
            }
            prev_check_residual = residual;
            if ctrl.is_active() {
                // This iterate passed the finite watchdog and was measured:
                // it becomes the breakdown restore point.
                ctrl.capture_snapshot(t, residual, &lambda, &mu, x_t.values(), &s, &d);
                if ctrl.note_residual(residual) {
                    break; // StopReason::Stagnated latched in ctrl.
                }
            }
        }

        // ---- Modified Algorithm: keep dual iterates bounded. -------------
        if let Some(bound) = opts.multiplier_bound {
            // x (row-pass iterate) is a valid support witness: shifting is
            // only applied within its positive components.
            let shifted = normalize_multipliers_storage(&x, &mut lambda, &mut mu, bound);
            if observing && shifted > 0 {
                obs.record(&Event::MultiplierBound {
                    iteration: t,
                    shifted,
                    bound,
                });
            }
        }

        // ---- Supervisor epilogue: checkpoint, then budget/cancellation. --
        if ctrl.is_active() {
            if let Some(path) = ctrl.maybe_checkpoint(t, &lambda, &mu) {
                if observing {
                    obs.record(&Event::CheckpointWritten { iteration: t, path });
                }
            }
            let work = counters.as_ref().map(|c| {
                let snap = c.snapshot();
                snap.breakpoints_scanned + snap.quickselect_pivots + snap.boxed_clamps
            });
            if ctrl.should_stop(t, work).is_some() {
                break;
            }
        }

        if spanning {
            obs.span_close(&KernelCounters::default());
            epoch_open = false;
        }
    }

    if spanning {
        // Breaks exit mid-epoch; close the dangling Epoch, then the Solve.
        if epoch_open {
            obs.span_close(&KernelCounters::default());
        }
        obs.span_close(&KernelCounters::default());
    }

    // ---- Assemble the solution from the final column pass. ---------------
    let x_final = x_t.transposed()?;
    let (s_final, d_final) = match p.totals() {
        TotalSpec::Fixed { s0, d0 } => (s0.clone(), d0.clone()),
        TotalSpec::Elastic { alpha, s0, .. } => {
            // s from the final λ (eq. 23b); d from the final column pass.
            let s: Vec<f64> = (0..m)
                .map(|i| s0[i] - lambda[i] / (2.0 * alpha[i]))
                .collect();
            (s, d.clone())
        }
        TotalSpec::Balanced { .. } => (s.clone(), s.clone()),
    };

    let residuals = p.residuals(&x_final, &s_final, &d_final);
    let objective = p.objective(&x_final, &s_final, &d_final);
    let dual_value = dual::dual_value(p, &lambda, &mu);

    ctrl.fallbacks = counters.as_ref().map_or(0, |c| c.fallbacks());

    if observing {
        if ctrl.is_active() && !converged {
            obs.record(&Event::SupervisorStop {
                iteration: iterations,
                reason: ctrl
                    .stop()
                    .map_or(StopReason::IterationCap.name(), StopReason::name),
            });
        }
        if let Some(c) = counters.as_ref() {
            let snap = c.snapshot();
            if !snap.is_empty() {
                obs.record(&Event::KernelCounters { counters: snap });
            }
        }
        obs.record(&Event::SolveEnd {
            iterations,
            converged,
            residual,
            objective,
            dual_value: Some(dual_value),
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    Ok(Solution {
        x: x_final,
        s: s_final,
        d: d_final,
        lambda,
        mu,
        stats: SolveStats {
            iterations,
            converged,
            residual,
            residuals,
            objective,
            dual_value,
            elapsed: start.elapsed(),
            trace,
            history,
        },
    })
}

/// Counter snapshot taken at a pass-span boundary (zero when counters are
/// off — span signalling forces them on, so this is just defensive).
fn span_snapshot(spanning: bool, counters: Option<&PassCounters>) -> KernelCounters {
    if spanning {
        counters.map_or_else(KernelCounters::default, PassCounters::snapshot)
    } else {
        KernelCounters::default()
    }
}

/// Close an equilibration-pass span: replay per-shard timings as Shard
/// leaves (parallel passes), then close the pass. When shard leaves were
/// emitted they carry the pass's whole kernel-work attribution (their
/// per-shard counters sum to the pass delta exactly), so the pass closes
/// with zero *self* counters; serial passes close with the full delta.
fn close_pass_span<O: Observer>(
    obs: &mut O,
    sink: Option<&ShardSink>,
    counters: Option<&PassCounters>,
    pass_begin: KernelCounters,
) {
    let timings = sink.map_or(&[][..], ShardSink::timings);
    for (si, tm) in timings.iter().enumerate() {
        obs.span_leaf(
            SpanKind::Shard,
            si as u64,
            tm.start_ns,
            tm.end_ns,
            tm.tasks,
            &tm.counters,
            "",
        );
    }
    let self_counters = if timings.is_empty() {
        counters
            .map_or_else(KernelCounters::default, PassCounters::snapshot)
            .delta_from(pass_begin)
    } else {
        KernelCounters::default()
    };
    obs.span_close(&self_counters);
}

/// Row-total target accessor for the convergence check.
fn row_target<'a>(
    spec: &'a TotalSpec,
    _lambda: &'a [f64],
    s: &'a [f64],
) -> impl Fn(usize) -> f64 + 'a {
    move |i: usize| match spec {
        TotalSpec::Fixed { s0, .. } => s0[i],
        // For elastic/balanced classes the row pass wrote s(λ) into `s`
        // (eq. 23b / 40b); for balanced `s` was synced to the column pass.
        TotalSpec::Elastic { .. } | TotalSpec::Balanced { .. } => s[i],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ZeroPolicy;
    use crate::weights::WeightScheme;

    fn fixed_problem() -> DiagonalProblem {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap()
    }

    #[test]
    fn fixed_problem_converges_to_feasible_point() {
        let p = fixed_problem();
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        assert!(sol.stats.converged, "did not converge: {:?}", sol.stats);
        assert!(sol.stats.residuals.row_inf < 1e-8);
        assert!(sol.stats.residuals.col_inf < 1e-10);
        assert!(sol.x.as_slice().iter().all(|&v| v >= 0.0));
        // Weak duality sandwich at the optimum.
        assert!(sol.stats.dual_value <= sol.stats.objective + 1e-8);
        assert!(
            (sol.stats.dual_value - sol.stats.objective).abs() < 1e-6,
            "duality gap too large: {} vs {}",
            sol.stats.dual_value,
            sol.stats.objective
        );
    }

    #[test]
    fn fixed_solution_satisfies_kkt() {
        let p = fixed_problem();
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        // Stationarity: 2γ(x−x0) − λᵢ − μⱼ = 0 on the support, ≥ 0 off it.
        for i in 0..2 {
            for j in 0..2 {
                let grad = 2.0 * p.gamma().get(i, j) * (sol.x.get(i, j) - p.x0().get(i, j))
                    - sol.lambda[i]
                    - sol.mu[j];
                if sol.x.get(i, j) > 1e-9 {
                    assert!(grad.abs() < 1e-6, "grad({i},{j}) = {grad}");
                } else {
                    assert!(grad > -1e-6);
                }
            }
        }
    }

    #[test]
    fn elastic_problem_balances_push_and_pull() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Elastic {
                alpha: vec![1.0; 2],
                s0: vec![4.0, 4.0],
                beta: vec![1.0; 2],
                d0: vec![4.0, 4.0],
            },
        )
        .unwrap();
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        assert!(sol.stats.converged);
        // Symmetric problem: x should stay symmetric, totals between the
        // prior margins (2) and the targets (4).
        let sums = sol.x.row_sums();
        assert!((sums[0] - sums[1]).abs() < 1e-8);
        assert!(sums[0] > 2.0 && sums[0] < 4.0);
        // Row constraint holds against estimated totals.
        assert!((sums[0] - sol.s[0]).abs() < 1e-8);
        assert!(sol.stats.residuals.row_inf < 1e-7);
    }

    #[test]
    fn balanced_problem_balances_accounts() {
        let x0 = DenseMatrix::from_rows(&[
            vec![0.0, 5.0, 1.0],
            vec![2.0, 0.0, 3.0],
            vec![4.0, 1.0, 0.0],
        ])
        .unwrap();
        let gamma = WeightScheme::LeastSquares.entry_weights(&x0).unwrap();
        let s0 = vec![6.0, 5.0, 5.0];
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Balanced {
                alpha: vec![1.0; 3],
                s0,
            },
        )
        .unwrap();
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        assert!(sol.stats.converged);
        let rows = sol.x.row_sums();
        let cols = sol.x.col_sums();
        for i in 0..3 {
            assert!(
                (rows[i] - cols[i]).abs() < 1e-6,
                "account {i} unbalanced: row {} vs col {}",
                rows[i],
                cols[i]
            );
            assert!((rows[i] - sol.s[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn structural_zeros_survive_the_solve() {
        let x0 = DenseMatrix::from_rows(&[vec![0.0, 5.0], vec![3.0, 2.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = DiagonalProblem::with_zero_policy(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![6.0, 6.0],
                d0: vec![4.0, 8.0],
            },
            ZeroPolicy::Structural,
        )
        .unwrap();
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        assert!(sol.stats.converged);
        assert_eq!(sol.x.get(0, 0), 0.0);
        assert!(sol.stats.residuals.row_inf < 1e-7);
    }

    #[test]
    fn parallel_matches_serial() {
        let p = fixed_problem();
        let serial = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        let mut opts = SeaOptions::with_epsilon(1e-10);
        opts.parallelism = Parallelism::RayonThreads(2);
        let par = solve_diagonal(&p, &opts).unwrap();
        assert_eq!(serial.stats.iterations, par.stats.iterations);
        assert!(serial.x.max_abs_diff(&par.x) < 1e-12);
    }

    #[test]
    fn trace_records_phases() {
        let p = fixed_problem();
        let mut opts = SeaOptions::with_epsilon(1e-8);
        opts.record_trace = true;
        let sol = solve_diagonal(&p, &opts).unwrap();
        let trace = sol.stats.trace.as_ref().unwrap();
        let iters = sol.stats.iterations;
        assert_eq!(trace.count(PhaseKind::RowEquilibration), iters);
        assert_eq!(trace.count(PhaseKind::ColumnEquilibration), iters);
        assert_eq!(trace.count(PhaseKind::ConvergenceCheck), iters);
        // Row phases have one task per row.
        let row_phase = trace
            .phases
            .iter()
            .find(|ph| ph.kind == PhaseKind::RowEquilibration)
            .unwrap();
        assert_eq!(row_phase.task_seconds.len(), 2);
    }

    #[test]
    fn check_every_reduces_serial_phases() {
        let p = fixed_problem();
        let mut opts = SeaOptions::with_epsilon(1e-10);
        opts.check_every = 2;
        opts.record_trace = true;
        let sol = solve_diagonal(&p, &opts).unwrap();
        let trace = sol.stats.trace.as_ref().unwrap();
        assert!(trace.count(PhaseKind::ConvergenceCheck) <= sol.stats.iterations / 2 + 1);
        assert!(sol.stats.converged);
    }

    #[test]
    fn iteration_cap_reports_nonconvergence() {
        // Unequal weights: one sweep is not exact (with equal weights the
        // 2x2 fixed problem happens to solve in a single iteration).
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        gamma.set(0, 0, 9.0);
        gamma.set(1, 1, 0.25);
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let mut opts = SeaOptions::with_epsilon(1e-16);
        opts.max_iterations = 1;
        let sol = solve_diagonal(&p, &opts).unwrap();
        assert!(!sol.stats.converged);
        assert_eq!(sol.stats.iterations, 1);
        // Even without convergence the column constraints hold exactly.
        assert!(sol.stats.residuals.col_inf < 1e-9);
    }

    #[test]
    fn iterations_within_theoretical_bound() {
        let p = fixed_problem();
        let eps = 1e-4;
        let mut opts = SeaOptions::with_epsilon(eps);
        opts.criterion = Some(ConvergenceCriterion::ConstraintNorm);
        let sol = solve_diagonal(&p, &opts).unwrap();
        assert!(sol.stats.converged);
        let bound = crate::theory::iteration_bound(&p, eps);
        assert!(
            (sol.stats.iterations as f64) <= bound,
            "iterations {} exceed bound {}",
            sol.stats.iterations,
            bound
        );
    }

    #[test]
    fn modified_algorithm_does_not_change_solution() {
        let p = fixed_problem();
        let plain = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        let mut opts = SeaOptions::with_epsilon(1e-10);
        opts.multiplier_bound = Some(1e3);
        let modified = solve_diagonal(&p, &opts).unwrap();
        assert!(plain.x.max_abs_diff(&modified.x) < 1e-8);
    }

    #[test]
    fn history_records_monotone_dual_ascent() {
        // The paper's eq. 71: ζ(λ^{t+2}, μ^{t+1}) ≥ ζ(λ^{t+1}, μ^{t+1}) ≥ …
        // — dual values never decrease across iterations.
        let spe_like = DiagonalProblem::new(
            DenseMatrix::from_rows(&[
                vec![1.0, 6.0, 2.0],
                vec![5.0, 1.0, 3.0],
                vec![2.0, 2.0, 7.0],
            ])
            .unwrap(),
            DenseMatrix::filled(3, 3, 1.0).unwrap(),
            TotalSpec::Elastic {
                alpha: vec![0.5; 3],
                s0: vec![20.0, 15.0, 18.0],
                beta: vec![0.5; 3],
                d0: vec![18.0, 17.0, 18.0],
            },
        )
        .unwrap();
        let mut opts = SeaOptions::with_epsilon(1e-10);
        opts.record_history = true;
        let sol = solve_diagonal(&spe_like, &opts).unwrap();
        let history = sol.stats.history.as_ref().unwrap();
        assert!(history.len() > 2, "needs several checks to be meaningful");
        for w in history.windows(2) {
            assert!(
                w[1].dual_value >= w[0].dual_value - 1e-9 * w[0].dual_value.abs().max(1.0),
                "dual ascent violated: {} then {}",
                w[0].dual_value,
                w[1].dual_value
            );
        }
        // The dual converges to the primal objective from below.
        let last = history.last().unwrap();
        assert!(last.dual_value <= sol.stats.objective + 1e-8);
    }

    #[test]
    fn warm_start_reproduces_same_solution() {
        let p = fixed_problem();
        let cold = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        // Restarting from the converged multipliers converges immediately
        // to the same point.
        let mut opts = SeaOptions::with_epsilon(1e-10);
        opts.initial_mu = Some(cold.mu.clone());
        let warm = solve_diagonal(&p, &opts).unwrap();
        assert!(warm.stats.converged);
        assert!(warm.stats.iterations <= cold.stats.iterations);
        assert!(warm.x.max_abs_diff(&cold.x) < 1e-8);
        // Wrong length is rejected.
        opts.initial_mu = Some(vec![0.0; 5]);
        assert!(matches!(
            solve_diagonal(&p, &opts),
            Err(SeaError::Shape {
                context: "initial_mu",
                ..
            })
        ));
    }

    #[test]
    fn observer_sees_full_event_lifecycle() {
        let p = fixed_problem();
        let mut obs = sea_observe::VecObserver::new();
        let sol = solve_diagonal_observed(&p, &SeaOptions::with_epsilon(1e-10), &mut obs).unwrap();
        let events = &obs.events;
        assert!(matches!(
            events.first(),
            Some(Event::SolveStart {
                solver: "diagonal",
                rows: 2,
                cols: 2,
                ..
            })
        ));
        match events.last() {
            Some(Event::SolveEnd {
                iterations,
                converged,
                ..
            }) => {
                assert_eq!(*iterations, sol.stats.iterations);
                assert!(*converged);
            }
            other => panic!("expected SolveEnd, got {other:?}"),
        }
        // Each iteration contributes row + column + check phase pairs.
        let row_starts = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::PhaseStart {
                        label: PhaseLabel::RowEquilibration,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(row_starts, sol.stats.iterations);
        let checks = events
            .iter()
            .filter(|e| matches!(e, Event::ConvergenceCheck { .. }))
            .count();
        assert_eq!(checks, sol.stats.iterations);
        // Kernel counters were harvested: one subproblem per row and column
        // per iteration.
        let counters = events.iter().find_map(|e| match e {
            Event::KernelCounters { counters } => Some(*counters),
            _ => None,
        });
        let snap = counters.expect("kernel counters event missing");
        assert_eq!(snap.subproblems, (4 * sol.stats.iterations) as u64);
        // The dual value is reported at every check.
        for e in events {
            if let Event::ConvergenceCheck { dual_value, .. } = e {
                assert!(dual_value.is_some());
            }
        }
    }

    #[test]
    fn observed_solve_matches_unobserved() {
        let p = fixed_problem();
        let plain = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        let mut obs = sea_observe::VecObserver::new();
        let observed =
            solve_diagonal_observed(&p, &SeaOptions::with_epsilon(1e-10), &mut obs).unwrap();
        assert_eq!(plain.stats.iterations, observed.stats.iterations);
        assert!(plain.x.max_abs_diff(&observed.x) < 1e-15);
    }

    #[test]
    fn criterion_names_are_stable() {
        assert_eq!(ConvergenceCriterion::MaxAbsChange.name(), "max_abs_change");
        assert_eq!(
            ConvergenceCriterion::RelativeRowBalance.name(),
            "relative_row_balance"
        );
        assert_eq!(
            ConvergenceCriterion::ConstraintNorm.name(),
            "constraint_norm"
        );
    }

    #[test]
    fn chi_square_weights_reproduce_biproportional_flavor() {
        // With chi-square weights and doubled margins, entries roughly
        // double (the RAS-like behaviour the weights are chosen for).
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let gamma = WeightScheme::ChiSquare.entry_weights(&x0).unwrap();
        let s0: Vec<f64> = x0.row_sums().iter().map(|v| 2.0 * v).collect();
        let d0: Vec<f64> = x0.col_sums().iter().map(|v| 2.0 * v).collect();
        let p = DiagonalProblem::new(x0.clone(), gamma, TotalSpec::Fixed { s0, d0 }).unwrap();
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let ratio = sol.x.get(i, j) / x0.get(i, j);
                assert!((ratio - 2.0).abs() < 1e-6, "ratio({i},{j}) = {ratio}");
            }
        }
    }
}
