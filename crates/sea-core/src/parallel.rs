//! Parallel execution control.
//!
//! SEA's row and column equilibration phases are embarrassingly parallel
//! (each subproblem is independent and solved in closed form); the paper
//! allocates them to distinct processors via Parallel FORTRAN. Here the
//! fan-out uses rayon, either on the global pool or on a dedicated pool of
//! a requested width (the speedup experiments sweep 1, 2, 4, 6 workers).

/// How the solver should fan out its independent subproblems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Plain sequential loops — the serial implementation of §4.1.
    #[default]
    Serial,
    /// Rayon on the global thread pool.
    Rayon,
    /// Rayon on a dedicated pool of exactly this many threads (the
    /// "N CPUs" of the speedup tables).
    RayonThreads(usize),
}

impl Parallelism {
    /// True for any rayon variant.
    pub fn is_parallel(self) -> bool {
        !matches!(self, Parallelism::Serial)
    }

    /// Stable label for event logs and metrics (`"serial"`, `"rayon"`,
    /// `"rayon:4"`).
    pub fn label(self) -> String {
        match self {
            Parallelism::Serial => "serial".to_string(),
            Parallelism::Rayon => "rayon".to_string(),
            Parallelism::RayonThreads(k) => format!("rayon:{k}"),
        }
    }

    /// Run `f` in the appropriate execution context. For
    /// [`Parallelism::RayonThreads`], builds a dedicated pool and installs
    /// it for the duration of `f` (so any nested rayon iterators use it).
    // Allowed: pool construction only fails on unsatisfiable resource
    // limits; there is no meaningful recovery short of aborting the solve.
    #[allow(clippy::expect_used)]
    pub fn run<R: Send>(self, f: impl FnOnce() -> R + Send) -> R {
        match self {
            Parallelism::Serial | Parallelism::Rayon => f(),
            Parallelism::RayonThreads(k) => {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(k.max(1))
                    .build()
                    .expect("failed to build rayon pool");
                pool.install(f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn serial_runs_inline() {
        assert!(!Parallelism::Serial.is_parallel());
        assert_eq!(Parallelism::Serial.run(|| 2 + 2), 4);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Parallelism::Serial.label(), "serial");
        assert_eq!(Parallelism::Rayon.label(), "rayon");
        assert_eq!(Parallelism::RayonThreads(6).label(), "rayon:6");
    }

    #[test]
    fn dedicated_pool_has_requested_width() {
        assert!(Parallelism::RayonThreads(3).is_parallel());
        let width = Parallelism::RayonThreads(3).run(rayon::current_num_threads);
        assert_eq!(width, 3);
    }

    #[test]
    fn rayon_variant_executes_parallel_iterators() {
        let sum: i64 = Parallelism::Rayon.run(|| (0..1000i64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn zero_thread_request_is_clamped_to_one() {
        let width = Parallelism::RayonThreads(0).run(rayon::current_num_threads);
        assert_eq!(width, 1);
    }
}
