//! Fault-tolerant solve supervision: budgets, cancellation, stagnation and
//! breakdown watchdogs, crash-safe checkpoints, and a deterministic
//! fault-injection plan for testing all of it.
//!
//! The paper's pitch is *large-scale* equilibration — long solves on
//! mn ≈ 10⁶ problems — where a single non-finite iterate, a panicked
//! worker, or an operator Ctrl-C must not lose the run. The supervisor
//! wraps the diagonal/general/bounded drivers and guarantees one
//! invariant: a supervised solve returns either `Ok` with an honest
//! KKT-residual certificate and a typed [`StopReason`], or a typed
//! [`SeaError`](crate::SeaError) — never a panic, abort, or silent wrong
//! answer.
//!
//! Iterative scaling is known to stagnate or converge only in the limit
//! (Aas; Nathanson, *Matrix scaling limits in finitely many iterations*),
//! so "return the best certified iterate" is a first-class outcome here,
//! not a failure mode.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a supervised solve stopped.
///
/// `Converged` is the only reason that implies the stopping criterion was
/// met; every other reason means the returned solution is the best iterate
/// available at the stop, stamped with its KKT certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The convergence criterion fired.
    Converged,
    /// The iteration cap (options or budget) was reached first.
    IterationCap,
    /// The wall-clock deadline expired.
    DeadlineExceeded,
    /// The kernel-work budget was exhausted.
    WorkCapExceeded,
    /// The [`CancelToken`] was triggered (e.g. SIGINT in sea-cli).
    Cancelled,
    /// The residual stopped improving per the stagnation policy.
    Stagnated,
    /// Iterates went non-finite; the last certified snapshot was restored.
    Breakdown,
}

impl StopReason {
    /// All reasons, in a fixed order (used by exit-code maps and tests).
    pub const ALL: [StopReason; 7] = [
        StopReason::Converged,
        StopReason::IterationCap,
        StopReason::DeadlineExceeded,
        StopReason::WorkCapExceeded,
        StopReason::Cancelled,
        StopReason::Stagnated,
        StopReason::Breakdown,
    ];

    /// Stable wire name (`snake_case`), used by observe events.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::IterationCap => "iteration_cap",
            StopReason::DeadlineExceeded => "deadline_exceeded",
            StopReason::WorkCapExceeded => "work_cap_exceeded",
            StopReason::Cancelled => "cancelled",
            StopReason::Stagnated => "stagnated",
            StopReason::Breakdown => "breakdown",
        }
    }

    /// Inverse of [`StopReason::name`].
    pub fn parse(s: &str) -> Option<StopReason> {
        StopReason::ALL.into_iter().find(|r| r.name() == s)
    }
}

/// A shareable cancellation flag.
///
/// Clones observe the same flag. [`CancelToken::from_static`] bridges a
/// `static AtomicBool` — the only thing an async-signal-safe SIGINT
/// handler may touch — into the solver without the handler ever seeing an
/// `Arc`.
#[derive(Debug, Clone)]
pub struct CancelToken(TokenInner);

#[derive(Debug, Clone)]
enum TokenInner {
    Shared(Arc<AtomicBool>),
    Static(&'static AtomicBool),
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken(TokenInner::Shared(Arc::new(AtomicBool::new(false))))
    }

    /// Wrap a static flag (for signal handlers).
    pub fn from_static(flag: &'static AtomicBool) -> Self {
        CancelToken(TokenInner::Static(flag))
    }

    /// Request cancellation; every clone observes it.
    pub fn cancel(&self) {
        match &self.0 {
            TokenInner::Shared(f) => f.store(true, Ordering::SeqCst),
            TokenInner::Static(f) => f.store(true, Ordering::SeqCst),
        }
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        match &self.0 {
            TokenInner::Shared(f) => f.load(Ordering::SeqCst),
            TokenInner::Static(f) => f.load(Ordering::SeqCst),
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// Resource limits for one supervised solve. All limits are optional and
/// checked once per completed iteration (the iterate is always a valid
/// post-column-pass point when a limit fires).
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    /// Wall-clock deadline, measured from solve start.
    pub deadline: Option<Duration>,
    /// Extra iteration cap below the options' `max_iterations`.
    pub max_iterations: Option<usize>,
    /// Cap on cumulative kernel work, measured in breakpoint scans plus
    /// quickselect partition rounds plus boxed clamps (the quantities the
    /// paper's per-iteration cost model counts).
    pub max_kernel_work: Option<u64>,
}

/// When to declare the residual stagnant.
///
/// The solve stops with [`StopReason::Stagnated`] after `window`
/// consecutive convergence checks in which the residual improved by less
/// than `min_rel_improvement` relative to the best residual seen.
#[derive(Debug, Clone, Copy)]
pub struct StagnationPolicy {
    /// Consecutive non-improving checks before stopping.
    pub window: usize,
    /// Minimum relative improvement that resets the window.
    pub min_rel_improvement: f64,
}

impl Default for StagnationPolicy {
    fn default() -> Self {
        StagnationPolicy {
            window: 16,
            min_rel_improvement: 1e-9,
        }
    }
}

/// Crash-safe checkpointing: write a [`Checkpoint`] snapshot every `every`
/// iterations via tmp-then-rename, so a crash mid-write never corrupts the
/// previous snapshot.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Destination path (the tmp file is `<path>.tmp`).
    pub path: PathBuf,
    /// Snapshot cadence in iterations (0 is treated as 1).
    pub every: usize,
}

/// One scripted fault of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Overwrite `lambda[index]` with NaN after the column pass — the
    /// breakdown watchdog must catch it the same iteration.
    NanLambda {
        /// Multiplier index to poison.
        index: usize,
    },
    /// Treat the kernel result of one subproblem as pathological, forcing
    /// the per-subproblem sort-scan fallback (meaningful with the
    /// quickselect kernel; a no-op under sort-scan).
    KernelNan {
        /// `"row"` or `"column"`.
        side: &'static str,
        /// Subproblem index.
        index: usize,
    },
    /// Panic inside one equilibration worker — containment must convert
    /// it into [`SeaError::WorkerPanic`](crate::SeaError::WorkerPanic).
    WorkerPanic {
        /// `"row"` or `"column"`.
        side: &'static str,
        /// Subproblem index.
        index: usize,
    },
    /// Behave as if the wall-clock deadline expired at this iteration.
    DeadlineNow,
    /// Behave as if the cancel token fired at this iteration.
    CancelNow,
}

/// A deterministic fault schedule: each entry fires at one scripted
/// iteration (1-based). Drives the fault-injection test harness; empty in
/// production.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<(usize, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `fault` at `iteration` (builder style).
    #[must_use]
    pub fn at(mut self, iteration: usize, fault: FaultKind) -> Self {
        self.faults.push((iteration, fault));
        self
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn at_iteration(&self, t: usize) -> impl Iterator<Item = &FaultKind> {
        self.faults
            .iter()
            .filter(move |(ft, _)| *ft == t)
            .map(|(_, f)| f)
    }
}

/// Configuration of one supervised solve.
#[derive(Debug, Clone, Default)]
pub struct SupervisorOptions {
    /// Resource limits.
    pub budget: SolveBudget,
    /// Cooperative cancellation flag (checked once per iteration).
    pub cancel: Option<CancelToken>,
    /// Stagnation watchdog; `None` disables it.
    pub stagnation: Option<StagnationPolicy>,
    /// Crash-safe checkpointing; `None` disables it.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Iteration offset for checkpoint stamping when resuming a run (the
    /// loaded checkpoint's `iteration`); budgets and events stay local to
    /// this process's iterations.
    pub start_iteration: usize,
    /// Scripted faults for the deterministic test harness.
    pub faults: FaultPlan,
}

/// A supervised diagonal solve outcome: the (possibly partial) solution,
/// why it stopped, and its KKT-residual certificate.
#[derive(Debug, Clone)]
pub struct SupervisedSolution<S: crate::storage::Storage = sea_linalg::DenseMatrix> {
    /// The solution; partial (best iterate at the stop) unless
    /// `stop == Converged`.
    pub solution: crate::solver::Solution<S>,
    /// Why the solve stopped.
    pub stop: StopReason,
    /// KKT residuals of the returned iterate — the honesty stamp for
    /// partial solutions.
    pub certificate: crate::verify::KktReport,
    /// Subproblems that fell back from quickselect to sort-scan.
    pub kernel_fallbacks: u64,
    /// First checkpoint-write failure, if any (checkpointing is disabled
    /// for the rest of the solve; the solve itself is never aborted by a
    /// failing snapshot).
    pub checkpoint_error: Option<String>,
}

/// A supervised bounded solve outcome.
#[derive(Debug, Clone)]
pub struct SupervisedBoundedSolution<S: crate::storage::Storage = sea_linalg::DenseMatrix> {
    /// The (possibly partial) bounded solution.
    pub solution: crate::interval::BoundedSolution<S>,
    /// Why the solve stopped.
    pub stop: StopReason,
}

/// A supervised general solve outcome.
#[derive(Debug, Clone)]
pub struct SupervisedGeneralSolution<S: crate::storage::Storage = sea_linalg::DenseMatrix> {
    /// The (possibly partial) general solution.
    pub solution: crate::general::GeneralSolution<S>,
    /// Why the solve stopped (outer-iteration granularity).
    pub stop: StopReason,
}

/// A crash-safe solver state snapshot: the column multipliers plus the
/// iteration they belong to — sufficient to resume a diagonal solve
/// bitwise-identically, because the row pass recomputes `λ` from `μ`.
///
/// The on-disk format is a small line-oriented text file whose floats are
/// hex-encoded IEEE-754 bit patterns, so save→load round-trips are exact:
///
/// ```text
/// SEA-CHECKPOINT v1
/// solver diagonal
/// iteration 42
/// lambda 2 3ff0000000000000 4000000000000000
/// mu 3 0000000000000000 bff0000000000000 7ff0000000000000
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Driver name (`"diagonal"`).
    pub solver: String,
    /// Iteration the snapshot captures (cumulative across resumes).
    pub iteration: usize,
    /// Row multipliers at that iteration (informational; resume only
    /// needs `mu`).
    pub lambda: Vec<f64>,
    /// Column multipliers at that iteration — the resume state.
    pub mu: Vec<f64>,
}

impl Checkpoint {
    /// Serialize to the v1 text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "SEA-CHECKPOINT v1");
        let _ = writeln!(out, "solver {}", self.solver);
        let _ = writeln!(out, "iteration {}", self.iteration);
        for (name, vals) in [("lambda", &self.lambda), ("mu", &self.mu)] {
            let _ = write!(out, "{name} {}", vals.len());
            for v in vals {
                let _ = write!(out, " {:016x}", v.to_bits());
            }
            out.push('\n');
        }
        out
    }

    /// Write crash-safely: the snapshot goes to `<path>.tmp`, is synced,
    /// and then renamed over `path`, so a crash mid-write leaves the
    /// previous snapshot intact.
    ///
    /// # Errors
    /// Any I/O failure creating, writing, syncing, or renaming.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = {
            let mut os = path.as_os_str().to_owned();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(self.render().as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    }

    /// Parse the v1 text format.
    ///
    /// # Errors
    /// `InvalidData` on any malformed header, count, or hex word.
    pub fn parse(text: &str) -> std::io::Result<Checkpoint> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut lines = text.lines();
        if lines.next() != Some("SEA-CHECKPOINT v1") {
            return Err(bad("not a SEA-CHECKPOINT v1 file"));
        }
        let solver = lines
            .next()
            .and_then(|l| l.strip_prefix("solver "))
            .ok_or_else(|| bad("missing solver line"))?
            .to_string();
        let iteration = lines
            .next()
            .and_then(|l| l.strip_prefix("iteration "))
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| bad("missing or malformed iteration line"))?;
        let mut vec_line = |name: &str| -> std::io::Result<Vec<f64>> {
            let line = lines
                .next()
                .and_then(|l| l.strip_prefix(name))
                .and_then(|l| l.strip_prefix(' '))
                .ok_or_else(|| bad("missing multiplier line"))?;
            let mut words = line.split_ascii_whitespace();
            let count: usize = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| bad("malformed multiplier count"))?;
            let vals: Vec<f64> = words
                .map(|w| u64::from_str_radix(w, 16).map(f64::from_bits))
                .collect::<Result<_, _>>()
                .map_err(|_| bad("malformed hex multiplier"))?;
            if vals.len() != count {
                return Err(bad("multiplier count mismatch"));
            }
            Ok(vals)
        };
        let lambda = vec_line("lambda")?;
        let mu = vec_line("mu")?;
        Ok(Checkpoint {
            solver,
            iteration,
            lambda,
            mu,
        })
    }

    /// Read and parse a checkpoint file.
    ///
    /// # Errors
    /// I/O failures and the same parse errors as [`Checkpoint::parse`].
    pub fn load(path: &Path) -> std::io::Result<Checkpoint> {
        Checkpoint::parse(&std::fs::read_to_string(path)?)
    }
}

/// A scripted fault for one equilibration pass (internal plumbing between
/// the supervisor and [`crate::equilibrate::PassInputs`]).
#[derive(Debug, Clone, Copy)]
pub struct TaskFault {
    /// Subproblem index the fault targets.
    pub index: usize,
    /// `true` panics the worker; `false` forces the kernel fallback.
    pub panic: bool,
}

/// Last-known-good state captured at each successful convergence check,
/// restored on numerical breakdown. Buffers are allocated once on first
/// capture and reused (supervision itself never allocates per iteration
/// after warm-up).
#[derive(Debug, Default)]
struct SnapshotBufs {
    valid: bool,
    iteration: usize,
    residual: f64,
    lambda: Vec<f64>,
    mu: Vec<f64>,
    x_t: Vec<f64>,
    s: Vec<f64>,
    d: Vec<f64>,
}

/// Per-solve supervision state threaded through the driver loops. The
/// passive control (used by unsupervised entry points) is all `None`s and
/// compiles down to a handful of branch checks — the steady-state loop
/// stays allocation-free.
#[derive(Debug)]
pub(crate) struct SolveControl<'a> {
    sup: Option<&'a SupervisorOptions>,
    start: Instant,
    stop: Option<StopReason>,
    snap: SnapshotBufs,
    best_residual: f64,
    stagnant_checks: usize,
    checkpoint_enabled: bool,
    checkpoint_error: Option<String>,
    /// Total quickselect→sort-scan fallbacks, harvested at solve end.
    pub(crate) fallbacks: u64,
}

impl<'a> SolveControl<'a> {
    /// Control for an unsupervised solve: every hook is a no-op.
    pub(crate) fn passive() -> Self {
        Self::build(None)
    }

    /// Control for a supervised solve.
    pub(crate) fn active(sup: &'a SupervisorOptions) -> Self {
        Self::build(Some(sup))
    }

    fn build(sup: Option<&'a SupervisorOptions>) -> Self {
        SolveControl {
            sup,
            start: Instant::now(),
            stop: None,
            snap: SnapshotBufs::default(),
            best_residual: f64::INFINITY,
            stagnant_checks: 0,
            checkpoint_enabled: sup.is_some_and(|s| s.checkpoint.is_some()),
            checkpoint_error: None,
            fallbacks: 0,
        }
    }

    pub(crate) fn is_active(&self) -> bool {
        self.sup.is_some()
    }

    /// Supervised solves always harvest pass counters (work budget and
    /// fallback accounting need them).
    pub(crate) fn needs_counters(&self) -> bool {
        self.is_active()
    }

    /// Why the supervisor stopped the loop, if it did.
    pub(crate) fn stop(&self) -> Option<StopReason> {
        self.stop
    }

    /// Scripted worker fault for this iteration and side, if any.
    pub(crate) fn task_fault(&self, t: usize, side: &'static str) -> Option<TaskFault> {
        let sup = self.sup?;
        sup.faults.at_iteration(t).find_map(|f| match f {
            FaultKind::WorkerPanic { side: s, index } if *s == side => Some(TaskFault {
                index: *index,
                panic: true,
            }),
            FaultKind::KernelNan { side: s, index } if *s == side => Some(TaskFault {
                index: *index,
                panic: false,
            }),
            _ => None,
        })
    }

    /// Apply any scripted NaN injection for iteration `t` to `lambda`.
    pub(crate) fn inject_faults(&self, t: usize, lambda: &mut [f64]) {
        let Some(sup) = self.sup else { return };
        for f in sup.faults.at_iteration(t) {
            if let FaultKind::NanLambda { index } = f {
                if let Some(slot) = lambda.get_mut(*index) {
                    *slot = f64::NAN;
                }
            }
        }
    }

    /// Record the iterate at a successful convergence check as the
    /// last-known-good restore point.
    // One call site per driver; bundling these into a struct would only
    // add ceremony between the solve loop and the watchdog.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture_snapshot(
        &mut self,
        t: usize,
        residual: f64,
        lambda: &[f64],
        mu: &[f64],
        x_t: &[f64],
        s: &[f64],
        d: &[f64],
    ) {
        if !self.is_active() || !residual.is_finite() {
            return;
        }
        let snap = &mut self.snap;
        snap.iteration = t;
        snap.residual = residual;
        snap.lambda.clear();
        snap.lambda.extend_from_slice(lambda);
        snap.mu.clear();
        snap.mu.extend_from_slice(mu);
        snap.x_t.clear();
        snap.x_t.extend_from_slice(x_t);
        snap.s.clear();
        snap.s.extend_from_slice(s);
        snap.d.clear();
        snap.d.extend_from_slice(d);
        snap.valid = true;
    }

    /// Restore the last-known-good iterate after a breakdown. Returns the
    /// snapshot's `(iteration, residual)` when one was available, `None`
    /// when breakdown happened before any check succeeded.
    pub(crate) fn restore_snapshot(
        &mut self,
        lambda: &mut [f64],
        mu: &mut [f64],
        x_t: &mut [f64],
        s: &mut [f64],
        d: &mut [f64],
    ) -> Option<(usize, f64)> {
        if !self.snap.valid {
            return None;
        }
        let snap = &self.snap;
        lambda.copy_from_slice(&snap.lambda);
        mu.copy_from_slice(&snap.mu);
        x_t.copy_from_slice(&snap.x_t);
        s.copy_from_slice(&snap.s);
        d.copy_from_slice(&snap.d);
        self.stop = Some(StopReason::Breakdown);
        Some((snap.iteration, snap.residual))
    }

    /// Feed the stagnation watchdog one residual; `true` means stop with
    /// [`StopReason::Stagnated`].
    pub(crate) fn note_residual(&mut self, residual: f64) -> bool {
        let Some(policy) = self.sup.and_then(|s| s.stagnation) else {
            return false;
        };
        let improved = residual
            < self.best_residual
                - policy.min_rel_improvement * self.best_residual.abs().max(1e-300);
        if residual < self.best_residual {
            self.best_residual = residual;
        }
        if improved || !self.best_residual.is_finite() {
            self.stagnant_checks = 0;
            return false;
        }
        self.stagnant_checks += 1;
        if self.stagnant_checks >= policy.window.max(1) {
            self.stop = Some(StopReason::Stagnated);
            return true;
        }
        false
    }

    /// Write a checkpoint if one is due at iteration `t`. Returns the
    /// destination path (for the observe event) when a snapshot was
    /// written. A write failure latches into `checkpoint_error` and
    /// disables further attempts — a failing snapshot never aborts the
    /// solve.
    pub(crate) fn maybe_checkpoint(
        &mut self,
        t: usize,
        lambda: &[f64],
        mu: &[f64],
    ) -> Option<String> {
        if !self.checkpoint_enabled {
            return None;
        }
        let sup = self.sup?;
        let policy = sup.checkpoint.as_ref()?;
        if !t.is_multiple_of(policy.every.max(1)) {
            return None;
        }
        let ck = Checkpoint {
            solver: "diagonal".to_string(),
            iteration: sup.start_iteration + t,
            lambda: lambda.to_vec(),
            mu: mu.to_vec(),
        };
        match ck.save(&policy.path) {
            Ok(()) => Some(policy.path.display().to_string()),
            Err(e) => {
                self.checkpoint_enabled = false;
                self.checkpoint_error = Some(format!(
                    "checkpoint write to {} failed: {e}",
                    policy.path.display()
                ));
                None
            }
        }
    }

    /// The first checkpoint-write failure, if any.
    pub(crate) fn take_checkpoint_error(&mut self) -> Option<String> {
        self.checkpoint_error.take()
    }

    /// Budget / cancellation check, run once per completed iteration.
    /// `work` is the cumulative kernel work when counters are harvested.
    pub(crate) fn should_stop(&mut self, t: usize, work: Option<u64>) -> Option<StopReason> {
        let sup = self.sup?;
        let mut reason = None;
        for f in sup.faults.at_iteration(t) {
            match f {
                FaultKind::DeadlineNow => reason = Some(StopReason::DeadlineExceeded),
                FaultKind::CancelNow => reason = Some(StopReason::Cancelled),
                _ => {}
            }
        }
        if reason.is_none() {
            if sup.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                reason = Some(StopReason::Cancelled);
            } else if sup
                .budget
                .deadline
                .is_some_and(|d| self.start.elapsed() >= d)
            {
                reason = Some(StopReason::DeadlineExceeded);
            } else if sup
                .budget
                .max_kernel_work
                .zip(work)
                .is_some_and(|(cap, w)| w >= cap)
            {
                reason = Some(StopReason::WorkCapExceeded);
            } else if sup.budget.max_iterations.is_some_and(|cap| t >= cap) {
                reason = Some(StopReason::IterationCap);
            }
        }
        if reason.is_some() {
            self.stop = reason;
        }
        reason
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_reason_names_round_trip() {
        for r in StopReason::ALL {
            assert_eq!(StopReason::parse(r.name()), Some(r));
        }
        assert_eq!(StopReason::parse("nope"), None);
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn static_cancel_token_reads_the_flag() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let t = CancelToken::from_static(&FLAG);
        assert!(!t.is_cancelled());
        FLAG.store(true, Ordering::SeqCst);
        assert!(t.is_cancelled());
        FLAG.store(false, Ordering::SeqCst);
    }

    #[test]
    fn checkpoint_round_trips_bitwise() {
        let ck = Checkpoint {
            solver: "diagonal".to_string(),
            iteration: 17,
            lambda: vec![1.0, -0.0, f64::NAN, f64::INFINITY, 1e-308],
            mu: vec![std::f64::consts::PI, f64::NEG_INFINITY],
        };
        let back = Checkpoint::parse(&ck.render()).unwrap();
        assert_eq!(back.solver, ck.solver);
        assert_eq!(back.iteration, ck.iteration);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.lambda), bits(&ck.lambda));
        assert_eq!(bits(&back.mu), bits(&ck.mu));
    }

    #[test]
    fn checkpoint_save_is_tmp_then_rename() {
        let dir = std::env::temp_dir().join(format!("sea-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ck = Checkpoint {
            solver: "diagonal".to_string(),
            iteration: 3,
            lambda: vec![1.5],
            mu: vec![2.5],
        };
        ck.save(&path).unwrap();
        assert!(!dir.join("run.ckpt.tmp").exists(), "tmp file left behind");
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_parse_rejects_malformed_input() {
        assert!(Checkpoint::parse("").is_err());
        assert!(Checkpoint::parse("SEA-CHECKPOINT v2\n").is_err());
        assert!(Checkpoint::parse("SEA-CHECKPOINT v1\nsolver diagonal\niteration x\n").is_err());
        assert!(Checkpoint::parse(
            "SEA-CHECKPOINT v1\nsolver diagonal\niteration 1\nlambda 2 0000000000000000\nmu 0\n"
        )
        .is_err());
        assert!(Checkpoint::parse(
            "SEA-CHECKPOINT v1\nsolver diagonal\niteration 1\nlambda 1 zzzz\nmu 0\n"
        )
        .is_err());
    }

    #[test]
    fn fault_plan_schedules_by_iteration() {
        let plan = FaultPlan::new()
            .at(2, FaultKind::DeadlineNow)
            .at(3, FaultKind::NanLambda { index: 0 });
        assert!(!plan.is_empty());
        assert_eq!(plan.at_iteration(2).count(), 1);
        assert_eq!(plan.at_iteration(3).count(), 1);
        assert_eq!(plan.at_iteration(1).count(), 0);
    }

    #[test]
    fn passive_control_never_stops() {
        let mut ctrl = SolveControl::passive();
        assert!(!ctrl.is_active());
        assert_eq!(ctrl.should_stop(1, None), None);
        assert!(!ctrl.note_residual(1.0));
        assert!(ctrl.task_fault(1, "row").is_none());
        assert!(ctrl.maybe_checkpoint(1, &[], &[]).is_none());
    }

    #[test]
    fn budget_checks_fire_in_priority_order() {
        let sup = SupervisorOptions {
            budget: SolveBudget {
                deadline: None,
                max_iterations: Some(5),
                max_kernel_work: Some(100),
            },
            ..Default::default()
        };
        let mut ctrl = SolveControl::active(&sup);
        assert_eq!(ctrl.should_stop(4, Some(10)), None);
        assert_eq!(
            ctrl.should_stop(4, Some(100)),
            Some(StopReason::WorkCapExceeded)
        );
        let mut ctrl = SolveControl::active(&sup);
        assert_eq!(
            ctrl.should_stop(5, Some(10)),
            Some(StopReason::IterationCap)
        );
    }

    #[test]
    fn cancellation_beats_other_budgets() {
        let token = CancelToken::new();
        token.cancel();
        let sup = SupervisorOptions {
            budget: SolveBudget {
                max_iterations: Some(1),
                ..Default::default()
            },
            cancel: Some(token),
            ..Default::default()
        };
        let mut ctrl = SolveControl::active(&sup);
        assert_eq!(ctrl.should_stop(1, None), Some(StopReason::Cancelled));
    }

    #[test]
    fn stagnation_window_counts_consecutive_flat_checks() {
        let sup = SupervisorOptions {
            stagnation: Some(StagnationPolicy {
                window: 3,
                min_rel_improvement: 1e-3,
            }),
            ..Default::default()
        };
        let mut ctrl = SolveControl::active(&sup);
        assert!(!ctrl.note_residual(1.0));
        assert!(!ctrl.note_residual(0.5)); // big improvement resets
        assert!(!ctrl.note_residual(0.4999999));
        assert!(!ctrl.note_residual(0.4999998));
        assert!(ctrl.note_residual(0.4999997)); // third flat check
        assert_eq!(ctrl.stop(), Some(StopReason::Stagnated));
    }
}
