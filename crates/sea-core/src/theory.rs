//! The paper's theoretical quantities: curvature bounds, iteration bounds,
//! and operation-count models (§3.1, eq. 58–64 and the complexity
//! discussion).
//!
//! These are *a priori* bounds computed from problem data alone — the paper
//! stresses that its convergence proof "specifically uses the parameters of
//! the problem without any other assumptions". They are deliberately loose
//! (worst-case) but finite, and the solver tests check the measured
//! iteration counts never exceed them.

use crate::problem::{DiagonalProblem, TotalSpec};

/// Curvature bounds `m_l ≤ |∂θ/∂τ| ≤ M_l` of the dual line search
/// (eq. 58–59), for problem class `l ∈ {1,2,3}` selected by the problem's
/// [`TotalSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvatureBounds {
    /// Lower curvature bound `m_l`.
    pub lower: f64,
    /// Upper curvature bound `M_l`.
    pub upper: f64,
}

impl CurvatureBounds {
    /// Compute `m_l` and `M_l` from the weight data.
    pub fn compute(p: &DiagonalProblem) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        let mut absorb = |w: f64| {
            let v = 1.0 / (2.0 * w);
            lo = lo.min(v);
            hi = hi.max(v);
        };
        match p.support() {
            None => {
                for &g in p.gamma().as_slice() {
                    absorb(g);
                }
            }
            Some(sup) => {
                for (i, row) in sup.rows.iter().enumerate() {
                    let gr = p.gamma().row(i);
                    for &j in row {
                        absorb(gr[j as usize]);
                    }
                }
            }
        }
        match p.totals() {
            TotalSpec::Fixed { .. } => {}
            TotalSpec::Elastic { alpha, beta, .. } => {
                for &a in alpha {
                    absorb(a);
                }
                for &b in beta {
                    absorb(b);
                }
            }
            TotalSpec::Balanced { alpha, .. } => {
                for &a in alpha {
                    absorb(a);
                }
            }
        }
        CurvatureBounds {
            lower: lo,
            upper: hi,
        }
    }

    /// Guaranteed per-iteration dual improvement while `‖∇ζ‖ > ε`
    /// (eq. 63): `δᵗ ≥ (m_l / 2M_l²) ε²`.
    pub fn improvement_per_step(&self, epsilon: f64) -> f64 {
        self.lower / (2.0 * self.upper * self.upper) * epsilon * epsilon
    }
}

/// Worst-case iteration bound (eq. 64):
/// `T = (ζ_max − ζ(λ⁰, μ⁰)) / (m_l/2M_l²) × 1/ε²`, using the fact that the
/// negated quadratic terms of every `ζ_l` are nonpositive so `ζ_max` is
/// bounded by the constant terms.
///
/// Returns `f64` because the bound can be astronomically large for tight
/// tolerances — it is a certificate of finiteness, not a runtime estimate.
pub fn iteration_bound(p: &DiagonalProblem, epsilon: f64) -> f64 {
    let bounds = CurvatureBounds::compute(p);

    // ζ_max upper bound: constant terms (quadratic contributions are ≤ 0
    // for the elastic/balanced classes; for the fixed class the linear
    // terms are bounded using the boundedness cube argument of the
    // Modified Algorithm — we use the crude but finite surrogate below).
    let mut zeta_max = 0.0;
    let x0 = p.x0();
    let gamma = p.gamma();
    for (x, g) in x0.as_slice().iter().zip(gamma.as_slice()) {
        zeta_max += g * x * x;
    }
    match p.totals() {
        TotalSpec::Fixed { s0, d0 } => {
            // At the optimum, ζ₃ equals the primal optimum which is at most
            // the objective of any feasible point; the proportional-fill
            // point gives a data-only bound.
            let total: f64 = s0.iter().sum();
            let mut obj = 0.0;
            if total > 0.0 {
                for i in 0..p.m() {
                    for j in 0..p.n() {
                        let fill = s0[i] * d0[j] / total;
                        let dev = fill - x0.get(i, j);
                        obj += gamma.get(i, j) * dev * dev;
                    }
                }
            }
            zeta_max = obj;
        }
        TotalSpec::Elastic {
            alpha,
            s0,
            beta,
            d0,
        } => {
            for (a, s) in alpha.iter().zip(s0) {
                zeta_max += a * s * s;
            }
            for (b, d) in beta.iter().zip(d0) {
                zeta_max += b * d * d;
            }
        }
        TotalSpec::Balanced { alpha, s0 } => {
            for (a, s) in alpha.iter().zip(s0) {
                zeta_max += a * s * s;
            }
        }
    }

    // ζ(0, 0): evaluate directly.
    let zeta0 = crate::dual::dual_value(p, &vec![0.0; p.m()], &vec![0.0; p.n()]);
    let gap = (zeta_max - zeta0).max(0.0);
    gap / bounds.improvement_per_step(epsilon)
}

/// Geometric-rate iteration estimate (eq. 77):
/// `T̄ = ln(ε̄/δ⁰) / ln(1 − A/4M̄)`. Exposed so experiments can report the
/// paper's "additive in ε̄" property: dividing `ε̄` by 10 adds a constant
/// number of iterations.
pub fn geometric_iteration_estimate(delta0: f64, epsilon_bar: f64, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate < 1.0, "rate must be in (0,1)");
    if delta0 <= epsilon_bar {
        return 0.0;
    }
    (epsilon_bar / delta0).ln() / rate.ln()
}

/// Operation-count model of one full SEA iteration on an `m×n` problem with
/// `p` processors (paper: each exact equilibration costs `7n + n ln n + 2n`;
/// all `m + n` subproblems divide over the processors; the convergence
/// check is serial and `O(m·n)`).
pub fn operation_model(m: usize, n: usize, processors: usize) -> f64 {
    let row_work: f64 = m as f64 * crate::knapsack::operation_count(n);
    let col_work: f64 = n as f64 * crate::knapsack::operation_count(m);
    let serial_check = (m * n) as f64;
    (row_work + col_work) / processors.max(1) as f64 + serial_check
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TotalSpec;
    use sea_linalg::DenseMatrix;

    fn problem() -> DiagonalProblem {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        gamma.set(0, 0, 0.25);
        gamma.set(1, 1, 4.0);
        DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Elastic {
                alpha: vec![1.0, 1.0],
                s0: vec![3.0, 7.0],
                beta: vec![1.0, 1.0],
                d0: vec![4.0, 6.0],
            },
        )
        .unwrap()
    }

    #[test]
    fn curvature_bounds_span_weights() {
        let b = CurvatureBounds::compute(&problem());
        // 1/(2γ) ranges over {2, 0.5, 0.125} plus 1/(2α)=1/(2β)=0.5.
        assert_eq!(b.lower, 0.125);
        assert_eq!(b.upper, 2.0);
        assert!(b.improvement_per_step(0.1) > 0.0);
    }

    #[test]
    fn iteration_bound_is_finite_and_positive() {
        let t = iteration_bound(&problem(), 1e-2);
        assert!(t.is_finite());
        assert!(t >= 0.0);
        // Tightening ε must not shrink the bound.
        assert!(iteration_bound(&problem(), 1e-3) >= t);
    }

    #[test]
    fn iteration_bound_fixed_class() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let t = iteration_bound(&p, 1e-2);
        assert!(t.is_finite() && t >= 0.0);
    }

    #[test]
    fn geometric_estimate_is_additive_in_log_epsilon() {
        let rate = 0.25;
        let t1 = geometric_iteration_estimate(1.0, 1e-3, rate);
        let t2 = geometric_iteration_estimate(1.0, 1e-4, rate);
        let t3 = geometric_iteration_estimate(1.0, 1e-5, rate);
        // Decreasing ε̄ tenfold adds a constant number of iterations.
        assert!(((t2 - t1) - (t3 - t2)).abs() < 1e-9);
        assert_eq!(geometric_iteration_estimate(1e-6, 1e-3, rate), 0.0);
    }

    #[test]
    fn operation_model_scales_with_processors() {
        let serial = operation_model(1000, 1000, 1);
        let six = operation_model(1000, 1000, 6);
        assert!(six < serial);
        // Perfect scaling is impossible because of the serial check.
        assert!(six > serial / 6.0);
    }
}
