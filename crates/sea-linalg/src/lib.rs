//! Dense linear-algebra and sorting substrate for the SEA constrained-matrix
//! workspace.
//!
//! The Nagurney–Eydeland splitting equilibration algorithm works on dense
//! `m × n` prior matrices and, for the *general* problem class, on dense
//! symmetric weight matrices of order `m·n`. This crate provides exactly the
//! kernels those solvers need, nothing more:
//!
//! * [`DenseMatrix`] — row-major dense `f64` matrix with parallel mat-vec,
//!   used for priors `X⁰`, per-entry weights `Γ`, and iterates `X`.
//! * [`CsrMatrix`] — compressed sparse row matrix with an `Arc`-shared
//!   pattern, used by the sparse storage backend of `sea-core` so that
//!   per-row/per-column subproblems run over the support only.
//! * [`SymMatrix`] — symmetric dense matrix (full storage) with a symmetric
//!   mat-vec, used for the `A`, `B`, and `G` weight matrices of the general
//!   quadratic objective, plus generators for strictly diagonally dominant
//!   instances as used in the paper's §5.1.1 experiments.
//! * [`simd`] — runtime-dispatched elementwise SIMD primitives (portable
//!   lanes plus an explicit AVX2 path) used by the vectorized equilibration
//!   kernels; bit-identical to the scalar loops by construction.
//! * [`sort`] — the two sorting routines the paper's FORTRAN implementation
//!   used for exact equilibration (HEAPSORT for long arrays, STRAIGHT
//!   INSERTION for short ones), exposed as argsort kernels.
//! * [`vector`] — small BLAS-1 style helpers (norms, axpy, dot).
//! * [`stats`] — summary statistics used by generators and reports.

// Numeric-kernel idioms: indexed loops over multiple parallel arrays are
// clearer than zipped iterator chains in the equilibration math, and
// `!(w > 0.0)` deliberately treats NaN as invalid (a positive-weight check
// that `w <= 0.0` would pass NaN through).
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod csr;
pub mod dense;
pub mod error;
pub mod simd;
pub mod sort;
pub mod stats;
pub mod sym;
pub mod vector;

pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use simd::SimdLevel;
pub use sym::SymMatrix;
