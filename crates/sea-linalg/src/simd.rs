//! Runtime-dispatched SIMD primitives for the equilibration kernels.
//!
//! Every routine here is **elementwise**: lane `j` of the output depends only
//! on lane `j` of the inputs, through the *same sequence of IEEE-754
//! operations* the scalar kernels perform (no FMA contraction, no
//! reassociation). Per-lane SIMD arithmetic is bit-identical to scalar
//! arithmetic for identical operation sequences, so the vectorized kernels in
//! `sea-core` reproduce the scalar oracle *bitwise* — iterates, multipliers,
//! and work counters. Reductions (sums, slope folds) deliberately stay in
//! scalar index order at the call sites; this module only fills arrays,
//! gathers, and scales.
//!
//! Three levels are provided, selected once per solve:
//!
//! * [`SimdLevel::Scalar`] — plain loops, the reference behaviour.
//! * [`SimdLevel::Lanes`] — portable 4-wide chunked loops the compiler can
//!   autovectorize on any target; always available.
//! * [`SimdLevel::Avx2`] — explicit AVX2 intrinsics (256-bit, 4 × f64) with
//!   a `vgatherpd` CSR gather; used only when the CPU reports AVX2.
//!
//! The NaN conventions of the scalar kernels are preserved exactly: the
//! nonnegative projection `max(v, 0)` maps NaN (and `-0.0`) to `+0.0`
//! (matching `if v > 0.0 { v } else { 0.0 }`), while the boxed clamp is
//! implemented with compare+blend so a NaN response stays NaN (matching
//! `f64::clamp`).

/// Number of f64 lanes processed per step by the `Lanes` and `Avx2` paths.
pub const LANES: usize = 4;

/// Instruction-set level actually used by a solve, resolved once from the
/// user-facing policy (`off` / `auto` / `force`) before the hot loop starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdLevel {
    /// Plain scalar loops (the differential oracle's own code path).
    #[default]
    Scalar,
    /// Portable 4-wide chunked loops; available on every target.
    Lanes,
    /// Explicit AVX2 intrinsics; requires runtime CPU support.
    Avx2,
}

impl SimdLevel {
    /// Best level available on this CPU: [`SimdLevel::Avx2`] when the CPU
    /// reports AVX2, otherwise the portable [`SimdLevel::Lanes`] path.
    pub fn detect() -> SimdLevel {
        if avx2_available() {
            SimdLevel::Avx2
        } else {
            SimdLevel::Lanes
        }
    }

    /// Stable lowercase name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Lanes => "lanes",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the running CPU supports the explicit AVX2 path.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Plain (nonnegative) kernel fills.
// ---------------------------------------------------------------------------

/// Breakpoints of the plain kernel: `out[j] = -2·gamma[j]·q[j] - shift[j]`.
///
/// # Panics
/// Panics if the slices disagree in length.
pub fn breakpoints_plain(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    out: &mut [f64],
) {
    let n = out.len();
    assert!(q.len() == n && gamma.len() == n && shift.len() == n);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::breakpoints_plain(q, gamma, shift, out) },
        _ => {
            for j in 0..n {
                out[j] = -2.0 * gamma[j] * q[j] - shift[j];
            }
        }
    }
}

/// Event coefficients of the plain selection kernel, split into parallel
/// arrays: `v[j] = -2·γ·q - shift`, `db[j] = 1/(2·γ)`, `da[j] = q + shift·db`.
///
/// # Panics
/// Panics if the slices disagree in length.
pub fn event_coeffs_plain(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    v: &mut [f64],
    da: &mut [f64],
    db: &mut [f64],
) {
    let n = q.len();
    assert!(gamma.len() == n && shift.len() == n && v.len() == n && da.len() == n && db.len() == n);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::event_coeffs_plain(q, gamma, shift, v, da, db) },
        _ => {
            for j in 0..n {
                let inv2g = 1.0 / (2.0 * gamma[j]);
                v[j] = -2.0 * gamma[j] * q[j] - shift[j];
                da[j] = q[j] + shift[j] * inv2g;
                db[j] = inv2g;
            }
        }
    }
}

/// Materialize the plain solution `x[j] = max(q[j] + (shift[j]+λ)/(2γ[j]), 0)`
/// and return `(sum, active)` accumulated in scalar index order (so the sum
/// is bitwise identical to the scalar kernel's own accumulation).
///
/// # Panics
/// Panics if the slices disagree in length.
pub fn materialize_plain(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lambda: f64,
    x_out: &mut [f64],
) -> (f64, usize) {
    let n = x_out.len();
    assert!(q.len() == n && gamma.len() == n && shift.len() == n);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            return unsafe { avx2::materialize_plain(q, gamma, shift, lambda, x_out) }
        }
        SimdLevel::Lanes => {
            let mut j = 0;
            while j + LANES <= n {
                for k in 0..LANES {
                    let v = q[j + k] + (shift[j + k] + lambda) / (2.0 * gamma[j + k]);
                    x_out[j + k] = if v > 0.0 { v } else { 0.0 };
                }
                j += LANES;
            }
            while j < n {
                let v = q[j] + (shift[j] + lambda) / (2.0 * gamma[j]);
                x_out[j] = if v > 0.0 { v } else { 0.0 };
                j += 1;
            }
        }
        SimdLevel::Scalar => {
            for j in 0..n {
                let v = q[j] + (shift[j] + lambda) / (2.0 * gamma[j]);
                x_out[j] = if v > 0.0 { v } else { 0.0 };
            }
        }
    }
    // Scalar-order reduction: identical values folded in identical order.
    let mut sum = 0.0;
    let mut active = 0usize;
    for &v in x_out.iter() {
        if v > 0.0 {
            active += 1;
        }
        sum += v;
    }
    (sum, active)
}

// ---------------------------------------------------------------------------
// Boxed kernel fills.
// ---------------------------------------------------------------------------

/// Boxed breakpoints: `out_lo[j] = 2γ(lo-q) - shift`, `out_hi[j] = 2γ(hi-q) - shift`.
///
/// # Panics
/// Panics if the slices disagree in length.
#[allow(clippy::too_many_arguments)]
pub fn breakpoints_boxed(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    out_lo: &mut [f64],
    out_hi: &mut [f64],
) {
    let n = q.len();
    assert!(
        gamma.len() == n
            && shift.len() == n
            && lo.len() == n
            && hi.len() == n
            && out_lo.len() == n
            && out_hi.len() == n
    );
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe {
            avx2::breakpoints_boxed(q, gamma, shift, lo, hi, out_lo, out_hi)
        },
        _ => {
            for j in 0..n {
                out_lo[j] = 2.0 * gamma[j] * (lo[j] - q[j]) - shift[j];
                out_hi[j] = 2.0 * gamma[j] * (hi[j] - q[j]) - shift[j];
            }
        }
    }
}

/// Slope/intercept coefficients of the boxed events, split into parallel
/// arrays: crossing the lower event adds `(da_lo, db)`, crossing the upper
/// event adds `(da_hi, −db)`, with `da_lo = q + shift·db − lo`,
/// `da_hi = hi − (q + shift·db)`, `db = 1/(2γ)`.
///
/// # Panics
/// Panics if the slices disagree in length.
#[allow(clippy::too_many_arguments)]
pub fn event_coeffs_boxed(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    da_lo: &mut [f64],
    da_hi: &mut [f64],
    db: &mut [f64],
) {
    let n = q.len();
    assert!(
        gamma.len() == n
            && shift.len() == n
            && lo.len() == n
            && hi.len() == n
            && da_lo.len() == n
            && da_hi.len() == n
            && db.len() == n
    );
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe {
            avx2::event_coeffs_boxed(q, gamma, shift, lo, hi, da_lo, da_hi, db)
        },
        _ => {
            for j in 0..n {
                let inv2g = 1.0 / (2.0 * gamma[j]);
                let interior = q[j] + shift[j] * inv2g;
                da_lo[j] = interior - lo[j];
                da_hi[j] = hi[j] - interior;
                db[j] = inv2g;
            }
        }
    }
}

/// Materialize the boxed solution `x[j] = clamp(q + (shift+λ)/(2γ), lo, hi)`
/// and return the interior (`lo < x < hi`) count, accumulated in scalar index
/// order. NaN responses stay NaN, exactly as `f64::clamp` leaves them.
///
/// # Panics
/// Panics if the slices disagree in length, or (like `f64::clamp`) if some
/// `lo[j] > hi[j]` on the scalar paths.
#[allow(clippy::too_many_arguments)]
pub fn materialize_boxed(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    lambda: f64,
    x_out: &mut [f64],
) -> usize {
    let n = x_out.len();
    assert!(q.len() == n && gamma.len() == n && shift.len() == n && lo.len() == n && hi.len() == n);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            return unsafe { avx2::materialize_boxed(q, gamma, shift, lo, hi, lambda, x_out) }
        }
        _ => {
            for j in 0..n {
                let raw = q[j] + (shift[j] + lambda) / (2.0 * gamma[j]);
                x_out[j] = raw.clamp(lo[j], hi[j]);
            }
        }
    }
    let mut active = 0usize;
    for j in 0..n {
        if x_out[j] > lo[j] && x_out[j] < hi[j] {
            active += 1;
        }
    }
    active
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

/// In-place scale `x[j] *= scale` (the constraint-restoring rescale of the
/// plain kernel). Elementwise, hence bitwise identical to the scalar loop.
pub fn scale_in_place(level: SimdLevel, x: &mut [f64], scale: f64) {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::scale_in_place(x, scale) },
        _ => {
            for v in x.iter_mut() {
                *v *= scale;
            }
        }
    }
}

/// Gather `out[k] = src[idx[k]]` (the CSR shift gather of a sparse pass);
/// uses `vgatherpd` on the AVX2 path. Pure loads — trivially bitwise.
///
/// # Panics
/// Panics if `out.len() != idx.len()` or any index is out of bounds.
pub fn gather(level: SimdLevel, src: &[f64], idx: &[u32], out: &mut [f64]) {
    assert_eq!(idx.len(), out.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            if let Some(&mx) = idx.iter().max() {
                assert!((mx as usize) < src.len(), "gather index out of bounds");
            }
            unsafe { avx2::gather(src, idx, out) }
        }
        _ => {
            for (o, &i) in out.iter_mut().zip(idx) {
                *o = src[i as usize];
            }
        }
    }
}

/// Narrow an f64 slice to f32 (round-to-nearest-even), for the
/// mixed-precision kernels' working copies.
///
/// # Panics
/// Panics if the slices disagree in length.
pub fn narrow_to_f32(level: SimdLevel, src: &[f64], out: &mut [f32]) {
    assert_eq!(src.len(), out.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::narrow_to_f32(src, out) },
        _ => {
            for (o, &s) in out.iter_mut().zip(src) {
                *o = s as f32;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// f32 fills for the mixed-precision λ-search.
// ---------------------------------------------------------------------------

/// Number of f32 lanes processed per step by the `Lanes` and `Avx2` paths:
/// a 256-bit register holds eight f32 values, twice the f64 lane count.
pub const F32_LANES: usize = 8;

/// f32 breakpoints of the plain kernel over inputs already narrowed by
/// [`narrow_to_f32`]: `out[j] = -2·gamma[j]·q[j] - shift[j]`, every
/// operation performed in f32.
///
/// # Panics
/// Panics if the slices disagree in length.
pub fn breakpoints_plain_f32(
    level: SimdLevel,
    q: &[f32],
    gamma: &[f32],
    shift: &[f32],
    out: &mut [f32],
) {
    let n = out.len();
    assert!(q.len() == n && gamma.len() == n && shift.len() == n);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::breakpoints_plain_f32(q, gamma, shift, out) },
        _ => {
            for j in 0..n {
                out[j] = -2.0 * gamma[j] * q[j] - shift[j];
            }
        }
    }
}

/// f32 event coefficients shared by the plain and boxed mixed-precision
/// sweeps: `db[j] = 1/(2·gamma[j])`, `da[j] = q[j] + shift[j]·db[j]`.
/// Hoisting the divisions out of the sequential sweep lets them run eight
/// lanes wide (`vdivps`), where the sweep itself must stay in scalar event
/// order.
///
/// # Panics
/// Panics if the slices disagree in length.
pub fn event_coeffs_plain_f32(
    level: SimdLevel,
    q: &[f32],
    gamma: &[f32],
    shift: &[f32],
    da: &mut [f32],
    db: &mut [f32],
) {
    let n = q.len();
    assert!(gamma.len() == n && shift.len() == n && da.len() == n && db.len() == n);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::event_coeffs_plain_f32(q, gamma, shift, da, db) },
        _ => {
            for j in 0..n {
                let inv2g = 1.0 / (2.0 * gamma[j]);
                da[j] = q[j] + shift[j] * inv2g;
                db[j] = inv2g;
            }
        }
    }
}

/// f32 breakpoints of the boxed kernel, lower and upper event arrays:
/// `out_lo[j] = 2·gamma[j]·(lo[j] - q[j]) - shift[j]`,
/// `out_hi[j] = 2·gamma[j]·(hi[j] - q[j]) - shift[j]`.
///
/// # Panics
/// Panics if the slices disagree in length.
#[allow(clippy::too_many_arguments)]
pub fn breakpoints_boxed_f32(
    level: SimdLevel,
    q: &[f32],
    gamma: &[f32],
    shift: &[f32],
    lo: &[f32],
    hi: &[f32],
    out_lo: &mut [f32],
    out_hi: &mut [f32],
) {
    let n = out_lo.len();
    assert!(
        q.len() == n
            && gamma.len() == n
            && shift.len() == n
            && lo.len() == n
            && hi.len() == n
            && out_hi.len() == n
    );
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe {
            avx2::breakpoints_boxed_f32(q, gamma, shift, lo, hi, out_lo, out_hi)
        },
        _ => {
            for j in 0..n {
                out_lo[j] = 2.0 * gamma[j] * (lo[j] - q[j]) - shift[j];
                out_hi[j] = 2.0 * gamma[j] * (hi[j] - q[j]) - shift[j];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Explicit 256-bit implementations. Every function here is only invoked
    //! after a successful runtime AVX2 check; lanes perform exactly the same
    //! IEEE operation sequence as the scalar loops (no FMA).

    use super::{F32_LANES, LANES};
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn breakpoints_plain(q: &[f64], g: &[f64], sh: &[f64], out: &mut [f64]) {
        let n = out.len();
        let neg2 = _mm256_set1_pd(-2.0);
        let mut j = 0;
        while j + LANES <= n {
            unsafe {
                let gq = _mm256_mul_pd(
                    _mm256_mul_pd(neg2, _mm256_loadu_pd(g.as_ptr().add(j))),
                    _mm256_loadu_pd(q.as_ptr().add(j)),
                );
                let b = _mm256_sub_pd(gq, _mm256_loadu_pd(sh.as_ptr().add(j)));
                _mm256_storeu_pd(out.as_mut_ptr().add(j), b);
            }
            j += LANES;
        }
        while j < n {
            out[j] = -2.0 * g[j] * q[j] - sh[j];
            j += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn event_coeffs_plain(
        q: &[f64],
        g: &[f64],
        sh: &[f64],
        v: &mut [f64],
        da: &mut [f64],
        db: &mut [f64],
    ) {
        let n = q.len();
        let one = _mm256_set1_pd(1.0);
        let two = _mm256_set1_pd(2.0);
        let neg2 = _mm256_set1_pd(-2.0);
        let mut j = 0;
        while j + LANES <= n {
            unsafe {
                let gv = _mm256_loadu_pd(g.as_ptr().add(j));
                let qv = _mm256_loadu_pd(q.as_ptr().add(j));
                let sv = _mm256_loadu_pd(sh.as_ptr().add(j));
                let inv2g = _mm256_div_pd(one, _mm256_mul_pd(two, gv));
                let bp = _mm256_sub_pd(_mm256_mul_pd(_mm256_mul_pd(neg2, gv), qv), sv);
                _mm256_storeu_pd(v.as_mut_ptr().add(j), bp);
                _mm256_storeu_pd(
                    da.as_mut_ptr().add(j),
                    _mm256_add_pd(qv, _mm256_mul_pd(sv, inv2g)),
                );
                _mm256_storeu_pd(db.as_mut_ptr().add(j), inv2g);
            }
            j += LANES;
        }
        while j < n {
            let inv2g = 1.0 / (2.0 * g[j]);
            v[j] = -2.0 * g[j] * q[j] - sh[j];
            da[j] = q[j] + sh[j] * inv2g;
            db[j] = inv2g;
            j += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn materialize_plain(
        q: &[f64],
        g: &[f64],
        sh: &[f64],
        lambda: f64,
        x_out: &mut [f64],
    ) -> (f64, usize) {
        let n = x_out.len();
        let lam = _mm256_set1_pd(lambda);
        let two = _mm256_set1_pd(2.0);
        let zero = _mm256_setzero_pd();
        let mut j = 0;
        while j + LANES <= n {
            unsafe {
                let num = _mm256_add_pd(_mm256_loadu_pd(sh.as_ptr().add(j)), lam);
                let den = _mm256_mul_pd(two, _mm256_loadu_pd(g.as_ptr().add(j)));
                let v = _mm256_add_pd(_mm256_loadu_pd(q.as_ptr().add(j)), _mm256_div_pd(num, den));
                // max(v, 0) with `0` as the second operand: NaN and -0.0 both
                // resolve to +0.0, matching `if v > 0.0 { v } else { 0.0 }`.
                _mm256_storeu_pd(x_out.as_mut_ptr().add(j), _mm256_max_pd(v, zero));
            }
            j += LANES;
        }
        while j < n {
            let v = q[j] + (sh[j] + lambda) / (2.0 * g[j]);
            x_out[j] = if v > 0.0 { v } else { 0.0 };
            j += 1;
        }
        let mut sum = 0.0;
        let mut active = 0usize;
        for &v in x_out.iter() {
            if v > 0.0 {
                active += 1;
            }
            sum += v;
        }
        (sum, active)
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn breakpoints_boxed(
        q: &[f64],
        g: &[f64],
        sh: &[f64],
        lo: &[f64],
        hi: &[f64],
        out_lo: &mut [f64],
        out_hi: &mut [f64],
    ) {
        let n = q.len();
        let two = _mm256_set1_pd(2.0);
        let mut j = 0;
        while j + LANES <= n {
            unsafe {
                let g2 = _mm256_mul_pd(two, _mm256_loadu_pd(g.as_ptr().add(j)));
                let qv = _mm256_loadu_pd(q.as_ptr().add(j));
                let sv = _mm256_loadu_pd(sh.as_ptr().add(j));
                let el = _mm256_sub_pd(
                    _mm256_mul_pd(g2, _mm256_sub_pd(_mm256_loadu_pd(lo.as_ptr().add(j)), qv)),
                    sv,
                );
                let eh = _mm256_sub_pd(
                    _mm256_mul_pd(g2, _mm256_sub_pd(_mm256_loadu_pd(hi.as_ptr().add(j)), qv)),
                    sv,
                );
                _mm256_storeu_pd(out_lo.as_mut_ptr().add(j), el);
                _mm256_storeu_pd(out_hi.as_mut_ptr().add(j), eh);
            }
            j += LANES;
        }
        while j < n {
            out_lo[j] = 2.0 * g[j] * (lo[j] - q[j]) - sh[j];
            out_hi[j] = 2.0 * g[j] * (hi[j] - q[j]) - sh[j];
            j += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn event_coeffs_boxed(
        q: &[f64],
        g: &[f64],
        sh: &[f64],
        lo: &[f64],
        hi: &[f64],
        da_lo: &mut [f64],
        da_hi: &mut [f64],
        db: &mut [f64],
    ) {
        let n = q.len();
        let one = _mm256_set1_pd(1.0);
        let two = _mm256_set1_pd(2.0);
        let mut j = 0;
        while j + LANES <= n {
            unsafe {
                let gv = _mm256_loadu_pd(g.as_ptr().add(j));
                let qv = _mm256_loadu_pd(q.as_ptr().add(j));
                let sv = _mm256_loadu_pd(sh.as_ptr().add(j));
                let inv2g = _mm256_div_pd(one, _mm256_mul_pd(two, gv));
                let interior = _mm256_add_pd(qv, _mm256_mul_pd(sv, inv2g));
                _mm256_storeu_pd(
                    da_lo.as_mut_ptr().add(j),
                    _mm256_sub_pd(interior, _mm256_loadu_pd(lo.as_ptr().add(j))),
                );
                _mm256_storeu_pd(
                    da_hi.as_mut_ptr().add(j),
                    _mm256_sub_pd(_mm256_loadu_pd(hi.as_ptr().add(j)), interior),
                );
                _mm256_storeu_pd(db.as_mut_ptr().add(j), inv2g);
            }
            j += LANES;
        }
        while j < n {
            let inv2g = 1.0 / (2.0 * g[j]);
            let interior = q[j] + sh[j] * inv2g;
            da_lo[j] = interior - lo[j];
            da_hi[j] = hi[j] - interior;
            db[j] = inv2g;
            j += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn materialize_boxed(
        q: &[f64],
        g: &[f64],
        sh: &[f64],
        lo: &[f64],
        hi: &[f64],
        lambda: f64,
        x_out: &mut [f64],
    ) -> usize {
        let n = x_out.len();
        let lam = _mm256_set1_pd(lambda);
        let two = _mm256_set1_pd(2.0);
        let mut j = 0;
        while j + LANES <= n {
            unsafe {
                let num = _mm256_add_pd(_mm256_loadu_pd(sh.as_ptr().add(j)), lam);
                let den = _mm256_mul_pd(two, _mm256_loadu_pd(g.as_ptr().add(j)));
                let raw =
                    _mm256_add_pd(_mm256_loadu_pd(q.as_ptr().add(j)), _mm256_div_pd(num, den));
                let lov = _mm256_loadu_pd(lo.as_ptr().add(j));
                let hiv = _mm256_loadu_pd(hi.as_ptr().add(j));
                // clamp via compare+blend, NOT min/max chains: a NaN `raw`
                // must stay NaN exactly as `f64::clamp` leaves it (ordered
                // compares are false on NaN, so neither blend replaces it).
                let gt_hi = _mm256_cmp_pd::<_CMP_GT_OQ>(raw, hiv);
                let r1 = _mm256_blendv_pd(raw, hiv, gt_hi);
                let lt_lo = _mm256_cmp_pd::<_CMP_LT_OQ>(r1, lov);
                let r2 = _mm256_blendv_pd(r1, lov, lt_lo);
                _mm256_storeu_pd(x_out.as_mut_ptr().add(j), r2);
            }
            j += LANES;
        }
        while j < n {
            let raw = q[j] + (sh[j] + lambda) / (2.0 * g[j]);
            x_out[j] = raw.clamp(lo[j], hi[j]);
            j += 1;
        }
        let mut active = 0usize;
        for k in 0..n {
            if x_out[k] > lo[k] && x_out[k] < hi[k] {
                active += 1;
            }
        }
        active
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_in_place(x: &mut [f64], scale: f64) {
        let n = x.len();
        let s = _mm256_set1_pd(scale);
        let mut j = 0;
        while j + LANES <= n {
            unsafe {
                let v = _mm256_mul_pd(_mm256_loadu_pd(x.as_ptr().add(j)), s);
                _mm256_storeu_pd(x.as_mut_ptr().add(j), v);
            }
            j += LANES;
        }
        while j < n {
            x[j] *= scale;
            j += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime, and every index
    /// must be in bounds for `src` (checked by the safe wrapper).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather(src: &[f64], idx: &[u32], out: &mut [f64]) {
        let n = out.len();
        let mut j = 0;
        while j + LANES <= n {
            unsafe {
                let ix = _mm_loadu_si128(idx.as_ptr().add(j) as *const __m128i);
                let v = _mm256_i32gather_pd::<8>(src.as_ptr(), ix);
                _mm256_storeu_pd(out.as_mut_ptr().add(j), v);
            }
            j += LANES;
        }
        while j < n {
            out[j] = src[idx[j] as usize];
            j += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn narrow_to_f32(src: &[f64], out: &mut [f32]) {
        let n = src.len();
        let mut j = 0;
        while j + LANES <= n {
            unsafe {
                let v = _mm256_cvtpd_ps(_mm256_loadu_pd(src.as_ptr().add(j)));
                _mm_storeu_ps(out.as_mut_ptr().add(j), v);
            }
            j += LANES;
        }
        while j < n {
            out[j] = src[j] as f32;
            j += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn breakpoints_plain_f32(q: &[f32], g: &[f32], sh: &[f32], out: &mut [f32]) {
        let n = out.len();
        let neg2 = _mm256_set1_ps(-2.0);
        let mut j = 0;
        while j + F32_LANES <= n {
            unsafe {
                let gq = _mm256_mul_ps(
                    _mm256_mul_ps(neg2, _mm256_loadu_ps(g.as_ptr().add(j))),
                    _mm256_loadu_ps(q.as_ptr().add(j)),
                );
                let b = _mm256_sub_ps(gq, _mm256_loadu_ps(sh.as_ptr().add(j)));
                _mm256_storeu_ps(out.as_mut_ptr().add(j), b);
            }
            j += F32_LANES;
        }
        while j < n {
            out[j] = -2.0 * g[j] * q[j] - sh[j];
            j += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn event_coeffs_plain_f32(
        q: &[f32],
        g: &[f32],
        sh: &[f32],
        da: &mut [f32],
        db: &mut [f32],
    ) {
        let n = q.len();
        let one = _mm256_set1_ps(1.0);
        let two = _mm256_set1_ps(2.0);
        let mut j = 0;
        while j + F32_LANES <= n {
            unsafe {
                let gv = _mm256_loadu_ps(g.as_ptr().add(j));
                let qv = _mm256_loadu_ps(q.as_ptr().add(j));
                let sv = _mm256_loadu_ps(sh.as_ptr().add(j));
                let inv2g = _mm256_div_ps(one, _mm256_mul_ps(two, gv));
                _mm256_storeu_ps(
                    da.as_mut_ptr().add(j),
                    _mm256_add_ps(qv, _mm256_mul_ps(sv, inv2g)),
                );
                _mm256_storeu_ps(db.as_mut_ptr().add(j), inv2g);
            }
            j += F32_LANES;
        }
        while j < n {
            let inv2g = 1.0 / (2.0 * g[j]);
            da[j] = q[j] + sh[j] * inv2g;
            db[j] = inv2g;
            j += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn breakpoints_boxed_f32(
        q: &[f32],
        g: &[f32],
        sh: &[f32],
        lo: &[f32],
        hi: &[f32],
        out_lo: &mut [f32],
        out_hi: &mut [f32],
    ) {
        let n = out_lo.len();
        let two = _mm256_set1_ps(2.0);
        let mut j = 0;
        while j + F32_LANES <= n {
            unsafe {
                let gv = _mm256_loadu_ps(g.as_ptr().add(j));
                let qv = _mm256_loadu_ps(q.as_ptr().add(j));
                let sv = _mm256_loadu_ps(sh.as_ptr().add(j));
                let g2 = _mm256_mul_ps(two, gv);
                let blo = _mm256_sub_ps(
                    _mm256_mul_ps(g2, _mm256_sub_ps(_mm256_loadu_ps(lo.as_ptr().add(j)), qv)),
                    sv,
                );
                let bhi = _mm256_sub_ps(
                    _mm256_mul_ps(g2, _mm256_sub_ps(_mm256_loadu_ps(hi.as_ptr().add(j)), qv)),
                    sv,
                );
                _mm256_storeu_ps(out_lo.as_mut_ptr().add(j), blo);
                _mm256_storeu_ps(out_hi.as_mut_ptr().add(j), bhi);
            }
            j += F32_LANES;
        }
        while j < n {
            out_lo[j] = 2.0 * g[j] * (lo[j] - q[j]) - sh[j];
            out_hi[j] = 2.0 * g[j] * (hi[j] - q[j]) - sh[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)]
    fn inputs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let q: Vec<f64> = (0..n)
            .map(|j| ((j * 37 % 101) as f64) / 7.0 - 4.0)
            .collect();
        let g: Vec<f64> = (0..n)
            .map(|j| 0.03 + ((j * 13 % 89) as f64) / 11.0)
            .collect();
        let sh: Vec<f64> = (0..n).map(|j| ((j * 7 % 61) as f64) / 9.0 - 2.5).collect();
        let lo: Vec<f64> = (0..n).map(|j| ((j * 3 % 17) as f64) / 10.0 - 0.4).collect();
        let hi: Vec<f64> = lo.iter().map(|&l| l + 2.5).collect();
        (q, g, sh, lo, hi)
    }

    fn levels() -> Vec<SimdLevel> {
        let mut out = vec![SimdLevel::Lanes];
        if avx2_available() {
            out.push(SimdLevel::Avx2);
        }
        out
    }

    #[test]
    fn elementwise_fills_are_bitwise_identical_to_scalar() {
        // Edge lane counts included: 0, 1, LANES-1, LANES, LANES+1, long.
        for n in [0usize, 1, LANES - 1, LANES, LANES + 1, 37, 256] {
            let (q, g, sh, lo, hi) = inputs(n);
            let mut refbp = vec![0.0; n];
            breakpoints_plain(SimdLevel::Scalar, &q, &g, &sh, &mut refbp);
            for level in levels() {
                let mut bp = vec![1.0; n];
                breakpoints_plain(level, &q, &g, &sh, &mut bp);
                assert!(bp
                    .iter()
                    .zip(&refbp)
                    .all(|(a, b)| a.to_bits() == b.to_bits()));

                let (mut v0, mut da0, mut db0) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
                event_coeffs_plain(SimdLevel::Scalar, &q, &g, &sh, &mut v0, &mut da0, &mut db0);
                let (mut v1, mut da1, mut db1) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
                event_coeffs_plain(level, &q, &g, &sh, &mut v1, &mut da1, &mut db1);
                assert!(v0.iter().zip(&v1).all(|(a, b)| a.to_bits() == b.to_bits()));
                assert!(da0
                    .iter()
                    .zip(&da1)
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
                assert!(db0
                    .iter()
                    .zip(&db1)
                    .all(|(a, b)| a.to_bits() == b.to_bits()));

                let lambda = 0.7321;
                let mut x0 = vec![0.0; n];
                let (s0, a0) = materialize_plain(SimdLevel::Scalar, &q, &g, &sh, lambda, &mut x0);
                let mut x1 = vec![0.0; n];
                let (s1, a1) = materialize_plain(level, &q, &g, &sh, lambda, &mut x1);
                assert_eq!(s0.to_bits(), s1.to_bits());
                assert_eq!(a0, a1);
                assert!(x0.iter().zip(&x1).all(|(a, b)| a.to_bits() == b.to_bits()));

                let mut b0 = vec![0.0; n];
                let n0 =
                    materialize_boxed(SimdLevel::Scalar, &q, &g, &sh, &lo, &hi, lambda, &mut b0);
                let mut b1 = vec![0.0; n];
                let n1 = materialize_boxed(level, &q, &g, &sh, &lo, &hi, lambda, &mut b1);
                assert_eq!(n0, n1);
                assert!(b0.iter().zip(&b1).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        }
    }

    #[test]
    fn f32_fills_are_bitwise_identical_to_scalar() {
        // Edge lane counts for the 8-wide f32 paths: 0, 1, F32_LANES-1,
        // F32_LANES, F32_LANES+1, long.
        for n in [0usize, 1, F32_LANES - 1, F32_LANES, F32_LANES + 1, 37, 256] {
            let (q64, g64, sh64, lo64, hi64) = inputs(n);
            let narrow = |v: &[f64]| v.iter().map(|&x| x as f32).collect::<Vec<f32>>();
            let (q, g, sh, lo, hi) = (
                narrow(&q64),
                narrow(&g64),
                narrow(&sh64),
                narrow(&lo64),
                narrow(&hi64),
            );
            let bits =
                |a: &[f32], b: &[f32]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());

            let mut ref_bp = vec![0.0f32; n];
            breakpoints_plain_f32(SimdLevel::Scalar, &q, &g, &sh, &mut ref_bp);
            let (mut ref_da, mut ref_db) = (vec![0.0f32; n], vec![0.0f32; n]);
            event_coeffs_plain_f32(SimdLevel::Scalar, &q, &g, &sh, &mut ref_da, &mut ref_db);
            let (mut ref_lo, mut ref_hi) = (vec![0.0f32; n], vec![0.0f32; n]);
            breakpoints_boxed_f32(
                SimdLevel::Scalar,
                &q,
                &g,
                &sh,
                &lo,
                &hi,
                &mut ref_lo,
                &mut ref_hi,
            );

            for level in levels() {
                let mut bp = vec![1.0f32; n];
                breakpoints_plain_f32(level, &q, &g, &sh, &mut bp);
                assert!(bits(&bp, &ref_bp), "breakpoints_plain_f32 {level} n={n}");

                let (mut da, mut db) = (vec![1.0f32; n], vec![1.0f32; n]);
                event_coeffs_plain_f32(level, &q, &g, &sh, &mut da, &mut db);
                assert!(
                    bits(&da, &ref_da),
                    "event_coeffs_plain_f32 da {level} n={n}"
                );
                assert!(
                    bits(&db, &ref_db),
                    "event_coeffs_plain_f32 db {level} n={n}"
                );

                let (mut blo, mut bhi) = (vec![1.0f32; n], vec![1.0f32; n]);
                breakpoints_boxed_f32(level, &q, &g, &sh, &lo, &hi, &mut blo, &mut bhi);
                assert!(
                    bits(&blo, &ref_lo),
                    "breakpoints_boxed_f32 lo {level} n={n}"
                );
                assert!(
                    bits(&bhi, &ref_hi),
                    "breakpoints_boxed_f32 hi {level} n={n}"
                );
            }
        }
    }

    #[test]
    fn nan_semantics_match_scalar() {
        // gamma = 0 produces ±inf or NaN responses; the projections must
        // treat them exactly as the scalar kernels do. black_box keeps the
        // optimizer from const-folding the scalar 0/0 (LLVM folds to +qNaN
        // where the x86 divider produces -qNaN, a payload-only divergence).
        let q = std::hint::black_box([1.0, -1.0, 0.0, 2.0, -3.0]);
        let g = std::hint::black_box([0.0, 0.0, 0.0, 1.0, 1.0]);
        let sh = [0.0, 0.0, 0.0, 0.0, 0.0];
        let lo = [0.0; 5];
        let hi = [1.0; 5];
        for level in levels() {
            let mut x0 = vec![0.0; 5];
            let (s0, a0) = materialize_plain(SimdLevel::Scalar, &q, &g, &sh, 0.0, &mut x0);
            let mut x1 = vec![0.0; 5];
            let (s1, a1) = materialize_plain(level, &q, &g, &sh, 0.0, &mut x1);
            assert_eq!(a0, a1);
            assert_eq!(s0.to_bits(), s1.to_bits());
            assert!(x0.iter().zip(&x1).all(|(a, b)| a.to_bits() == b.to_bits()));

            let mut b0 = vec![0.0; 5];
            let c0 = materialize_boxed(SimdLevel::Scalar, &q, &g, &sh, &lo, &hi, 0.0, &mut b0);
            let mut b1 = vec![0.0; 5];
            let c1 = materialize_boxed(level, &q, &g, &sh, &lo, &hi, 0.0, &mut b1);
            assert_eq!(c0, c1);
            assert!(b0.iter().zip(&b1).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn gather_and_scale_match_scalar() {
        let src: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let idx: Vec<u32> = (0..57).map(|i| (i * 13 % 100) as u32).collect();
        for level in levels() {
            let mut out = vec![0.0; idx.len()];
            gather(level, &src, &idx, &mut out);
            for (k, &i) in idx.iter().enumerate() {
                assert_eq!(out[k].to_bits(), src[i as usize].to_bits());
            }
            let mut x: Vec<f64> = (0..13).map(|i| i as f64 / 3.0).collect();
            let mut xr = x.clone();
            scale_in_place(level, &mut x, 1.0 / 3.0);
            scale_in_place(SimdLevel::Scalar, &mut xr, 1.0 / 3.0);
            assert!(x.iter().zip(&xr).all(|(a, b)| a.to_bits() == b.to_bits()));

            let mut f = vec![0.0f32; src.len()];
            narrow_to_f32(level, &src, &mut f);
            for (a, &s) in f.iter().zip(&src) {
                assert_eq!(a.to_bits(), (s as f32).to_bits());
            }
        }
    }
}
