//! BLAS-1 style vector helpers used throughout the SEA solvers.
//!
//! All functions are plain safe Rust over slices; the hot equilibration
//! loops in `sea-core` inline these.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← y + alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// One-norm `‖x‖₁`.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm `‖x‖∞` (0.0 for an empty slice).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Sum of the elements.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Largest absolute componentwise difference `‖x − y‖∞`.
#[inline]
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

/// Scale in place: `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Componentwise positive part `(x)₊`, in place.
#[inline]
pub fn positive_part(x: &mut [f64]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// True if every component is finite (no NaN/±∞).
#[inline]
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// True if every component is strictly positive.
#[inline]
pub fn all_positive(x: &[f64]) -> bool {
    x.iter().all(|v| *v > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        let y = [1.0, 2.0];
        assert_eq!(dot(&x, &y), 11.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&[-6.0, 2.0]), 6.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn sum_and_diff() {
        assert_eq!(sum(&[1.0, 2.0, 3.5]), 6.5);
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 4.5]), 1.0);
    }

    #[test]
    fn scale_and_positive_part() {
        let mut x = [1.0, -2.0];
        scale(3.0, &mut x);
        assert_eq!(x, [3.0, -6.0]);
        positive_part(&mut x);
        assert_eq!(x, [3.0, 0.0]);
    }

    #[test]
    fn finiteness_and_positivity() {
        assert!(all_finite(&[0.0, 1.0, -3.0]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(all_positive(&[0.1, 2.0]));
        assert!(!all_positive(&[0.0, 2.0]));
    }
}
