//! Compressed sparse row (CSR) `f64` matrices.
//!
//! [`CsrMatrix`] is the sparse counterpart of [`DenseMatrix`] for the SEA
//! solvers: real IO tables, SAMs, and migration matrices are overwhelmingly
//! sparse, and the per-row/per-column equilibration subproblems only touch
//! the support. The layout is classic three-array CSR with one twist: the
//! *pattern* (`row_ptr` + `col_idx`) lives behind `Arc`s so that a prior, its
//! weight table, and every solver iterate share a single copy of the
//! structure — `same_pattern` is then a pointer comparison and building an
//! iterate is just allocating a value buffer.
//!
//! Column indices are `u32` (a matrix with 2³² columns has no business in a
//! dense-or-sparse CMP solver), and within each row they are strictly
//! increasing — the same column order the dense row pass sees, which is what
//! makes dense-vs-sparse solves bitwise comparable on a shared support.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use std::ops::Range;
use std::sync::Arc;

/// Compressed sparse row matrix of `f64` with an `Arc`-shared pattern.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Arc<Vec<usize>>,
    col_idx: Arc<Vec<u32>>,
    vals: Vec<f64>,
}

/// Largest dimension representable by the `u32` index arrays.
const MAX_DIM: usize = u32::MAX as usize;

impl CsrMatrix {
    /// Build from raw CSR arrays, validating the structure.
    ///
    /// Requirements: `row_ptr` has `rows + 1` monotone entries starting at 0
    /// and ending at `col_idx.len()`; `col_idx` is strictly increasing within
    /// each row with every index `< cols`; `vals` is parallel to `col_idx`.
    ///
    /// # Errors
    /// [`LinalgError::Empty`] for zero dimensions, [`LinalgError::NotSquare`]
    /// never, [`LinalgError::DimensionMismatch`] for dimension overflow or
    /// array-length mismatches, [`LinalgError::InvalidSparsity`] for a
    /// malformed pattern.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty {
                context: "CsrMatrix::from_parts",
            });
        }
        if rows > MAX_DIM || cols > MAX_DIM {
            return Err(LinalgError::DimensionMismatch {
                context: "CsrMatrix::from_parts (dimension exceeds u32 range)",
                expected: MAX_DIM,
                actual: rows.max(cols),
            });
        }
        if row_ptr.len() != rows + 1 {
            return Err(LinalgError::DimensionMismatch {
                context: "CsrMatrix::from_parts (row_ptr length)",
                expected: rows + 1,
                actual: row_ptr.len(),
            });
        }
        if vals.len() != col_idx.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "CsrMatrix::from_parts (vals length)",
                expected: col_idx.len(),
                actual: vals.len(),
            });
        }
        if row_ptr[0] != 0 || row_ptr[rows] != col_idx.len() {
            return Err(LinalgError::InvalidSparsity {
                context: "CsrMatrix::from_parts (row_ptr endpoints)",
                row: 0,
            });
        }
        for i in 0..rows {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            if lo > hi || hi > col_idx.len() {
                return Err(LinalgError::InvalidSparsity {
                    context: "CsrMatrix::from_parts (row_ptr monotonicity)",
                    row: i,
                });
            }
            let mut prev: Option<u32> = None;
            for &c in &col_idx[lo..hi] {
                if (c as usize) >= cols || prev.is_some_and(|p| p >= c) {
                    return Err(LinalgError::InvalidSparsity {
                        context: "CsrMatrix::from_parts (column indices)",
                        row: i,
                    });
                }
                prev = Some(c);
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr: Arc::new(row_ptr),
            col_idx: Arc::new(col_idx),
            vals,
        })
    }

    /// Build from `(row, col, value)` triplets. Triplets may arrive in any
    /// order; duplicates are rejected (an equilibration support has one slot
    /// per cell, so silently summing duplicates would hide generator bugs).
    ///
    /// # Errors
    /// Same classes as [`CsrMatrix::from_parts`]; a duplicate or out-of-range
    /// triplet surfaces as [`LinalgError::InvalidSparsity`].
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty {
                context: "CsrMatrix::from_triplets",
            });
        }
        if rows > MAX_DIM || cols > MAX_DIM {
            return Err(LinalgError::DimensionMismatch {
                context: "CsrMatrix::from_triplets (dimension exceeds u32 range)",
                expected: MAX_DIM,
                actual: rows.max(cols),
            });
        }
        for &(i, j, _) in triplets {
            if i >= rows || j >= cols {
                return Err(LinalgError::InvalidSparsity {
                    context: "CsrMatrix::from_triplets (index out of range)",
                    row: i,
                });
            }
        }
        // Counting sort by row, then an insertion-order-independent sort by
        // column within each row.
        let mut row_ptr = vec![0usize; rows + 1];
        for &(i, _, _) in triplets {
            row_ptr[i + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = triplets.len();
        let mut col_idx = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut next = row_ptr.clone();
        for &(i, j, v) in triplets {
            let slot = next[i];
            next[i] += 1;
            col_idx[slot] = j as u32;
            vals[slot] = v;
        }
        for i in 0..rows {
            let range = row_ptr[i]..row_ptr[i + 1];
            let seg_cols = &mut col_idx[range.clone()];
            let seg_vals = &mut vals[range];
            // Sort the (col, val) pairs of this row by column.
            let mut order: Vec<usize> = (0..seg_cols.len()).collect();
            order.sort_by_key(|&k| seg_cols[k]);
            let sorted_cols: Vec<u32> = order.iter().map(|&k| seg_cols[k]).collect();
            let sorted_vals: Vec<f64> = order.iter().map(|&k| seg_vals[k]).collect();
            for k in 1..sorted_cols.len() {
                if sorted_cols[k - 1] == sorted_cols[k] {
                    return Err(LinalgError::InvalidSparsity {
                        context: "CsrMatrix::from_triplets (duplicate entry)",
                        row: i,
                    });
                }
            }
            seg_cols.copy_from_slice(&sorted_cols);
            seg_vals.copy_from_slice(&sorted_vals);
        }
        Ok(Self {
            rows,
            cols,
            row_ptr: Arc::new(row_ptr),
            col_idx: Arc::new(col_idx),
            vals,
        })
    }

    /// Build a CSR matrix holding **every** entry of `dense`, zeros included
    /// (a "full pattern"). This is the faithful sparse image of a dense
    /// problem: every dense cell stays a variable, which is what makes a
    /// dense solve and its CSR re-construction bitwise comparable.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when a dimension exceeds `u32`.
    pub fn from_dense_full(dense: &DenseMatrix) -> Result<Self, LinalgError> {
        let (m, n) = (dense.rows(), dense.cols());
        if m > MAX_DIM || n > MAX_DIM {
            return Err(LinalgError::DimensionMismatch {
                context: "CsrMatrix::from_dense_full (dimension exceeds u32 range)",
                expected: MAX_DIM,
                actual: m.max(n),
            });
        }
        let mut row_ptr = Vec::with_capacity(m + 1);
        row_ptr.push(0usize);
        for i in 1..=m {
            row_ptr.push(i * n);
        }
        let mut col_idx = Vec::with_capacity(m * n);
        for _ in 0..m {
            col_idx.extend((0..n as u32).collect::<Vec<u32>>());
        }
        Ok(Self {
            rows: m,
            cols: n,
            row_ptr: Arc::new(row_ptr),
            col_idx: Arc::new(col_idx),
            vals: dense.as_slice().to_vec(),
        })
    }

    /// Build a CSR matrix from the nonzero entries of `dense`, dropping exact
    /// zeros. The resulting pattern matches the *structural* support the
    /// dense solvers derive under `ZeroPolicy::Structural`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when a dimension exceeds `u32`,
    /// [`LinalgError::InvalidSparsity`] never.
    pub fn from_dense_pruned(dense: &DenseMatrix) -> Result<Self, LinalgError> {
        let (m, n) = (dense.rows(), dense.cols());
        if m > MAX_DIM || n > MAX_DIM {
            return Err(LinalgError::DimensionMismatch {
                context: "CsrMatrix::from_dense_pruned (dimension exceeds u32 range)",
                expected: MAX_DIM,
                actual: m.max(n),
            });
        }
        let mut row_ptr = Vec::with_capacity(m + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0usize);
        for i in 0..m {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Self {
            rows: m,
            cols: n,
            row_ptr: Arc::new(row_ptr),
            col_idx: Arc::new(col_idx),
            vals,
        })
    }

    /// Materialize as a dense matrix (structural zeros become stored zeros).
    ///
    /// # Errors
    /// [`LinalgError::Allocation`] when `rows × cols` does not fit in memory.
    pub fn to_dense(&self) -> Result<DenseMatrix, LinalgError> {
        let mut out = DenseMatrix::try_zeros(self.rows, self.cols)?;
        for i in 0..self.rows {
            let row = out.row_mut(i);
            for (c, v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                row[*c as usize] = *v;
            }
        }
        Ok(out)
    }

    /// Number of rows `m`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `n`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (nnz of the pattern, stored zeros included).
    #[inline]
    pub fn stored(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of cells stored.
    pub fn density(&self) -> f64 {
        self.vals.len() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// The row-pointer array (`rows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array, parallel to [`CsrMatrix::vals`].
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// All stored values, row-major over the pattern.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable view of all stored values.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Range of row `i` within the value/index arrays.
    #[inline]
    pub fn row_range(&self, i: usize) -> Range<usize> {
        self.row_ptr[i]..self.row_ptr[i + 1]
    }

    /// Column indices of row `i`, strictly increasing.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.col_idx[self.row_range(i)]
    }

    /// Stored values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[f64] {
        let r = self.row_range(i);
        &self.vals[r]
    }

    /// Mutable stored values of row `i`.
    #[inline]
    pub fn row_vals_mut(&mut self, i: usize) -> &mut [f64] {
        let r = self.row_range(i);
        &mut self.vals[r]
    }

    /// Stored value at `(i, j)`, or `0.0` when the cell is structural.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let cols = self.row_cols(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => self.vals[self.row_ptr[i] + k],
            Err(_) => 0.0,
        }
    }

    /// A matrix with the *same shared pattern* and all stored values zero.
    pub fn zeros_like(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            row_ptr: Arc::clone(&self.row_ptr),
            col_idx: Arc::clone(&self.col_idx),
            vals: vec![0.0; self.vals.len()],
        }
    }

    /// A matrix with the same shared pattern and the given values.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `vals` is not parallel to the
    /// pattern.
    pub fn with_values(&self, vals: Vec<f64>) -> Result<Self, LinalgError> {
        if vals.len() != self.vals.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "CsrMatrix::with_values",
                expected: self.vals.len(),
                actual: vals.len(),
            });
        }
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            row_ptr: Arc::clone(&self.row_ptr),
            col_idx: Arc::clone(&self.col_idx),
            vals,
        })
    }

    /// `true` when both matrices share one pattern — a pointer comparison
    /// when the `Arc`s are shared, a structural comparison otherwise.
    pub fn same_pattern(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && (Arc::ptr_eq(&self.row_ptr, &other.row_ptr) || *self.row_ptr == *other.row_ptr)
            && (Arc::ptr_eq(&self.col_idx, &other.col_idx) || *self.col_idx == *other.col_idx)
    }

    /// Explicit transpose via counting sort: O(nnz + rows + cols), and within
    /// each transposed row the entries are ordered by original row index —
    /// exactly the order the dense column pass walks, which keeps the sparse
    /// column pass bitwise aligned with the dense one.
    pub fn transposed(&self) -> Self {
        let (m, n) = (self.rows, self.cols);
        let nnz = self.vals.len();
        let mut t_ptr = vec![0usize; n + 1];
        for &c in self.col_idx.iter() {
            t_ptr[c as usize + 1] += 1;
        }
        for j in 0..n {
            t_ptr[j + 1] += t_ptr[j];
        }
        let mut t_idx = vec![0u32; nnz];
        let mut t_vals = vec![0.0f64; nnz];
        let mut next = t_ptr.clone();
        for i in 0..m {
            for k in self.row_range(i) {
                let c = self.col_idx[k] as usize;
                let slot = next[c];
                next[c] += 1;
                t_idx[slot] = i as u32;
                t_vals[slot] = self.vals[k];
            }
        }
        Self {
            rows: n,
            cols: m,
            row_ptr: Arc::new(t_ptr),
            col_idx: Arc::new(t_idx),
            vals: t_vals,
        }
    }

    /// Per-row sums of stored values into `out` (length `rows`).
    pub fn row_sums_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rows);
        for i in 0..self.rows {
            out[i] = self.row_vals(i).iter().sum();
        }
    }

    /// Per-column sums of stored values into `out` (length `cols`).
    pub fn col_sums_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.cols);
        out.fill(0.0);
        for (c, v) in self.col_idx.iter().zip(&self.vals) {
            out[*c as usize] += *v;
        }
    }

    /// Largest absolute difference of stored values against a same-pattern
    /// matrix.
    ///
    /// # Panics
    /// Debug-asserts the patterns match; on mismatched value lengths the zip
    /// silently truncates in release (callers hold the same-pattern
    /// invariant).
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        debug_assert!(self.same_pattern(other));
        self.vals
            .iter()
            .zip(&other.vals)
            .fold(0.0f64, |acc, (a, b)| acc.max((a - b).abs()))
    }
}

impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.same_pattern(other) && self.vals == other.vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
            .unwrap()
    }

    #[test]
    fn triplets_round_trip_through_dense() {
        let a = small();
        assert_eq!(a.stored(), 4);
        let d = a.to_dense().unwrap();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(d.get(2, 1), 4.0);
        let b = CsrMatrix::from_dense_pruned(&d).unwrap();
        assert!(a.same_pattern(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn unsorted_triplets_are_normalized() {
        let a = CsrMatrix::from_triplets(2, 3, &[(1, 2, 5.0), (0, 1, 1.0), (1, 0, 3.0)]).unwrap();
        assert_eq!(a.row_cols(1), &[0, 2]);
        assert_eq!(a.row_vals(1), &[3.0, 5.0]);
    }

    #[test]
    fn duplicates_and_out_of_range_are_rejected() {
        let dup = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]);
        assert!(matches!(dup, Err(LinalgError::InvalidSparsity { .. })));
        let oob = CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]);
        assert!(matches!(oob, Err(LinalgError::InvalidSparsity { .. })));
    }

    #[test]
    fn from_parts_validates_structure() {
        let bad_ptr = CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(
            bad_ptr,
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let unsorted = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(matches!(unsorted, Err(LinalgError::InvalidSparsity { .. })));
        let ok = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]);
        assert!(ok.is_ok());
    }

    #[test]
    fn transpose_is_involutive_and_row_ordered() {
        let a = small();
        let t = a.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.get(2, 0), 2.0);
        // Transposed rows are ordered by original row index.
        assert_eq!(t.row_cols(0), &[0, 2]);
        let back = t.transposed();
        assert_eq!(back, a);
    }

    #[test]
    fn zeros_like_shares_the_pattern() {
        let a = small();
        let z = a.zeros_like();
        assert!(a.same_pattern(&z));
        assert!(z.vals().iter().all(|&v| v == 0.0));
        assert!(Arc::ptr_eq(&a.row_ptr, &z.row_ptr));
    }

    #[test]
    fn sums_cover_only_the_support() {
        let a = small();
        let mut rs = vec![0.0; 3];
        let mut cs = vec![0.0; 3];
        a.row_sums_into(&mut rs);
        a.col_sums_into(&mut cs);
        assert_eq!(rs, vec![3.0, 0.0, 7.0]);
        assert_eq!(cs, vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn full_pattern_matches_dense_layout() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let full = CsrMatrix::from_dense_full(&d).unwrap();
        assert_eq!(full.stored(), 4);
        assert_eq!(full.vals(), d.as_slice());
        let pruned = CsrMatrix::from_dense_pruned(&d).unwrap();
        assert_eq!(pruned.stored(), 2);
    }

    #[test]
    fn get_reads_structural_zeros() {
        let a = small();
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.max_abs_diff(&a.zeros_like()), 4.0);
    }
}
