//! Sorting kernels used by exact equilibration.
//!
//! The paper is explicit about its sorting technology (§4.1.1, §5.1.1):
//! exact equilibration requires sorting the breakpoint array of each
//! row/column subproblem, and the FORTRAN implementation used **HEAPSORT**
//! when arrays were "substantially larger than one hundred elements" and
//! **STRAIGHT INSERTION SORT** for the short arrays (10–120 elements) of the
//! general-problem experiments. We reproduce both and dispatch on length in
//! [`argsort`], so the reproduction's operation profile matches the paper's
//! `7n + n ln n + 2n` per-subproblem count.
//!
//! All routines here sort an *index permutation* by a key slice (argsort),
//! because equilibration must keep breakpoints aligned with their
//! coefficient arrays.

/// Length at or below which straight insertion sort is used, per the paper's
/// "substantially larger than one hundred elements" guidance.
pub const INSERTION_THRESHOLD: usize = 120;

/// Sort `idx` ascending by `key[i]` using straight insertion sort.
///
/// O(k²) worst case but with a tiny constant; the method of choice in the
/// paper for the short (10–120 element) arrays of the general experiments.
///
/// # Panics
/// Panics if any index in `idx` is out of bounds for `key`.
pub fn insertion_argsort(idx: &mut [u32], key: &[f64]) {
    insertion_argsort_by(idx, key);
}

/// Key-type-generic body of [`insertion_argsort`]; monomorphizes to exactly
/// the historical `f64` code, and additionally serves the `f32` keys of the
/// mixed-precision kernels.
fn insertion_argsort_by<K: PartialOrd + Copy>(idx: &mut [u32], key: &[K]) {
    for i in 1..idx.len() {
        let cur = idx[i];
        let cur_key = key[cur as usize];
        let mut j = i;
        while j > 0 && key[idx[j - 1] as usize] > cur_key {
            idx[j] = idx[j - 1];
            j -= 1;
        }
        idx[j] = cur;
    }
}

/// Sort `idx` ascending by `key[i]` using heapsort (in-place, no
/// allocation), as the paper's implementation did for long arrays.
///
/// # Panics
/// Panics if any index in `idx` is out of bounds for `key`.
pub fn heap_argsort(idx: &mut [u32], key: &[f64]) {
    heap_argsort_by(idx, key);
}

/// Key-type-generic body of [`heap_argsort`].
fn heap_argsort_by<K: PartialOrd + Copy>(idx: &mut [u32], key: &[K]) {
    let n = idx.len();
    if n < 2 {
        return;
    }
    // Build a max-heap.
    for start in (0..n / 2).rev() {
        sift_down(idx, key, start, n);
    }
    // Repeatedly pop the max to the end.
    for end in (1..n).rev() {
        idx.swap(0, end);
        sift_down(idx, key, 0, end);
    }
}

#[inline]
fn sift_down<K: PartialOrd + Copy>(idx: &mut [u32], key: &[K], mut root: usize, end: usize) {
    loop {
        let mut child = 2 * root + 1;
        if child >= end {
            return;
        }
        if child + 1 < end && key[idx[child] as usize] < key[idx[child + 1] as usize] {
            child += 1;
        }
        if key[idx[root] as usize] >= key[idx[child] as usize] {
            return;
        }
        idx.swap(root, child);
        root = child;
    }
}

/// Sort `idx` ascending by `key[i]`, dispatching on length exactly as the
/// paper's implementation did: straight insertion up to
/// [`INSERTION_THRESHOLD`] elements, heapsort beyond.
#[inline]
pub fn argsort(idx: &mut [u32], key: &[f64]) {
    if idx.len() <= INSERTION_THRESHOLD {
        insertion_argsort_by(idx, key);
    } else {
        heap_argsort_by(idx, key);
    }
}

/// [`argsort`] over single-precision keys, for the mixed-precision
/// equilibration kernels' f32 breakpoint arrays. Same length dispatch, same
/// ordering semantics.
///
/// # Panics
/// Panics if any index in `idx` is out of bounds for `key`.
#[inline]
pub fn argsort_f32(idx: &mut [u32], key: &[f32]) {
    if idx.len() <= INSERTION_THRESHOLD {
        insertion_argsort_by(idx, key);
    } else {
        heap_argsort_by(idx, key);
    }
}

/// Fill `idx` with `0..idx.len()` (the identity permutation), the standard
/// precursor to an argsort call.
#[inline]
pub fn identity_permutation(idx: &mut [u32]) {
    for (i, v) in idx.iter_mut().enumerate() {
        *v = i as u32;
    }
}

/// Verify that `idx` orders `key` ascending (used in tests and debug
/// assertions).
pub fn is_sorted_by_key(idx: &[u32], key: &[f64]) -> bool {
    idx.windows(2)
        .all(|w| key[w[0] as usize] <= key[w[1] as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fresh_idx(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn insertion_sorts_small_array() {
        let key = [3.0, 1.0, 2.0, -5.0];
        let mut idx = fresh_idx(4);
        insertion_argsort(&mut idx, &key);
        assert_eq!(idx, vec![3, 1, 2, 0]);
    }

    #[test]
    fn heap_sorts_small_array() {
        let key = [3.0, 1.0, 2.0, -5.0];
        let mut idx = fresh_idx(4);
        heap_argsort(&mut idx, &key);
        assert_eq!(idx, vec![3, 1, 2, 0]);
    }

    #[test]
    fn empty_and_singleton_are_noops() {
        let key: [f64; 0] = [];
        let mut idx: Vec<u32> = vec![];
        heap_argsort(&mut idx, &key);
        insertion_argsort(&mut idx, &key);
        assert!(idx.is_empty());

        let key = [42.0];
        let mut idx = fresh_idx(1);
        argsort(&mut idx, &key);
        assert_eq!(idx, vec![0]);
    }

    #[test]
    fn handles_duplicates() {
        let key = [2.0, 2.0, 1.0, 2.0, 1.0];
        let mut idx = fresh_idx(5);
        argsort(&mut idx, &key);
        assert!(is_sorted_by_key(&idx, &key));
        // A permutation: all indices present exactly once.
        let mut seen = idx.clone();
        seen.sort_unstable();
        assert_eq!(seen, fresh_idx(5));
    }

    #[test]
    fn dispatch_threshold_routes_long_arrays_through_heapsort() {
        // Above the threshold the result must still be sorted.
        let n = INSERTION_THRESHOLD + 37;
        let key: Vec<f64> = (0..n).map(|i| ((i * 7919) % 104729) as f64).collect();
        let mut idx = fresh_idx(n);
        argsort(&mut idx, &key);
        assert!(is_sorted_by_key(&idx, &key));
    }

    proptest! {
        #[test]
        fn heap_argsort_matches_std_sort(key in proptest::collection::vec(-1e6f64..1e6, 0..300)) {
            let mut idx = fresh_idx(key.len());
            heap_argsort(&mut idx, &key);
            let mut expect = fresh_idx(key.len());
            expect.sort_by(|&a, &b| key[a as usize].partial_cmp(&key[b as usize]).unwrap());
            // Compare resulting key orderings (ties may permute indices).
            let got: Vec<f64> = idx.iter().map(|&i| key[i as usize]).collect();
            let want: Vec<f64> = expect.iter().map(|&i| key[i as usize]).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn insertion_argsort_matches_std_sort(key in proptest::collection::vec(-1e6f64..1e6, 0..120)) {
            let mut idx = fresh_idx(key.len());
            insertion_argsort(&mut idx, &key);
            prop_assert!(is_sorted_by_key(&idx, &key));
            let mut seen: Vec<u32> = idx.clone();
            seen.sort_unstable();
            prop_assert_eq!(seen, fresh_idx(key.len()));
        }
    }
}
