//! Symmetric dense matrices for the general quadratic objective.
//!
//! The general constrained matrix problem weights the entry deviations with
//! an `mn × mn` matrix `G` and the total deviations with `A` (`m × m`) and
//! `B` (`n × n`), all assumed strictly positive definite (paper §2). The
//! §5.1.1 experiments generate `G` symmetric and *strictly diagonally
//! dominant* with diagonal in `[500, 800]` and negative off-diagonal entries
//! allowed — [`SymMatrix`] stores such matrices in full row-major form (the
//! projection step needs whole-row access for mat-vec) and offers the checks
//! and accessors the diagonalization outer loop needs.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;

/// Symmetric dense matrix (full storage), the `A`/`B`/`G` weight matrices of
/// the general problem.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    inner: DenseMatrix,
}

impl SymMatrix {
    /// Wrap a square matrix after verifying symmetry to within `tol`
    /// relative to the magnitude of the entries.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::NotSymmetric`].
    pub fn from_dense(m: DenseMatrix, tol: f64) -> Result<Self, LinalgError> {
        if m.rows() != m.cols() {
            return Err(LinalgError::NotSquare {
                rows: m.rows(),
                cols: m.cols(),
            });
        }
        for i in 0..m.rows() {
            for j in (i + 1)..m.cols() {
                let a = m.get(i, j);
                let b = m.get(j, i);
                let scale = 1.0_f64.max(a.abs()).max(b.abs());
                if (a - b).abs() > tol * scale {
                    return Err(LinalgError::NotSymmetric { i, j });
                }
            }
        }
        Ok(Self { inner: m })
    }

    /// Wrap without checking (caller guarantees symmetry; generators use
    /// this).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for rectangular input.
    pub fn from_dense_unchecked(m: DenseMatrix) -> Result<Self, LinalgError> {
        if m.rows() != m.cols() {
            return Err(LinalgError::NotSquare {
                rows: m.rows(),
                cols: m.cols(),
            });
        }
        Ok(Self { inner: m })
    }

    /// Diagonal matrix with the given diagonal.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] for an empty diagonal.
    pub fn from_diagonal(diag: &[f64]) -> Result<Self, LinalgError> {
        let n = diag.len();
        let mut m = DenseMatrix::zeros(n, n)?;
        for (i, &v) in diag.iter().enumerate() {
            m.set(i, i, v);
        }
        Ok(Self { inner: m })
    }

    /// Order of the matrix.
    #[inline]
    pub fn order(&self) -> usize {
        self.inner.rows()
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.inner.get(i, j)
    }

    /// Borrow the full-storage representation.
    #[inline]
    pub fn as_dense(&self) -> &DenseMatrix {
        &self.inner
    }

    /// Copy of the diagonal, `diag(M)` — the fixed matrix of the projection
    /// step (eq. 79 uses `Ã = diag(A)`, `G̃ = diag(G)`, `B̃ = diag(B)`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.order()).map(|i| self.inner.get(i, i)).collect()
    }

    /// `y = M·x`, serial.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        self.inner.matvec(x, y)
    }

    /// `y = M·x`, rayon-parallel over rows.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn matvec_parallel(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        self.inner.matvec_parallel(x, y)
    }

    /// Quadratic form `xᵀMx`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn quadratic_form(&self, x: &[f64]) -> Result<f64, LinalgError> {
        let mut y = vec![0.0; x.len()];
        self.matvec(x, &mut y)?;
        Ok(crate::vector::dot(x, &y))
    }

    /// True if strictly diagonally dominant: `|mᵢᵢ| > Σ_{j≠i} |mᵢⱼ|` for all
    /// `i`. This is the sufficient condition the paper's generator enforces
    /// for positive definiteness of `G`.
    pub fn is_strictly_diagonally_dominant(&self) -> bool {
        let n = self.order();
        for i in 0..n {
            let row = self.inner.row(i);
            let off: f64 = row
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, v)| v.abs())
                .sum();
            if row[i].abs() <= off {
                return false;
            }
        }
        true
    }

    /// True if every diagonal entry is strictly positive (necessary for
    /// positive definiteness, and required by the diagonalization step).
    pub fn has_positive_diagonal(&self) -> bool {
        (0..self.order()).all(|i| self.inner.get(i, i) > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym3() -> SymMatrix {
        let d = DenseMatrix::from_rows(&[
            vec![4.0, -1.0, 0.5],
            vec![-1.0, 5.0, -0.25],
            vec![0.5, -0.25, 6.0],
        ])
        .unwrap();
        SymMatrix::from_dense(d, 1e-12).unwrap()
    }

    #[test]
    fn symmetry_check_accepts_and_rejects() {
        let _ = sym3();
        let bad = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]).unwrap();
        assert!(matches!(
            SymMatrix::from_dense(bad, 1e-12),
            Err(LinalgError::NotSymmetric { i: 0, j: 1 })
        ));
        let rect = DenseMatrix::zeros(2, 3).unwrap();
        assert!(matches!(
            SymMatrix::from_dense(rect, 1e-12),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn unchecked_constructor_still_requires_square() {
        let rect = DenseMatrix::zeros(2, 3).unwrap();
        assert!(matches!(
            SymMatrix::from_dense_unchecked(rect),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn diagonal_extraction() {
        let m = sym3();
        assert_eq!(m.diagonal(), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_diagonal_builds_diag() {
        let m = SymMatrix::from_diagonal(&[1.0, 2.0]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn quadratic_form_positive_for_dd_matrix() {
        let m = sym3();
        assert!(m.is_strictly_diagonally_dominant());
        assert!(m.has_positive_diagonal());
        let q = m.quadratic_form(&[1.0, -2.0, 0.5]).unwrap();
        assert!(q > 0.0);
    }

    #[test]
    fn dominance_check_detects_failure() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        let m = SymMatrix::from_dense(d, 1e-12).unwrap();
        assert!(!m.is_strictly_diagonally_dominant());
    }

    #[test]
    fn matvec_consistency() {
        let m = sym3();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        m.matvec(&x, &mut y1).unwrap();
        m.matvec_parallel(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
        assert!((y1[0] - (4.0 - 2.0 + 1.5)).abs() < 1e-12);
    }
}
