//! Summary statistics for generators, validators, and reports.

/// Summary of a sample: count, min, max, mean, and (population) standard
/// deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation (`0.0` when empty).
    pub min: f64,
    /// Largest observation (`0.0` when empty).
    pub max: f64,
    /// Arithmetic mean (`0.0` when empty).
    pub mean: f64,
    /// Population standard deviation (`0.0` when empty).
    pub std_dev: f64,
}

/// Compute a [`Summary`] of the sample.
pub fn summarize(xs: &[f64]) -> Summary {
    if xs.is_empty() {
        return Summary {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let count = xs.len();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    let mean = sum / count as f64;
    let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
    Summary {
        count,
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    }
}

/// Arithmetic mean (`0.0` when empty).
pub fn mean(xs: &[f64]) -> f64 {
    summarize(xs).mean
}

/// Geometric mean of strictly positive samples; returns `None` when the
/// sample is empty or contains a non-positive value. Used to aggregate
/// CPU-time ratios across problem sizes.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - (1.25_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn mean_shortcut() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
