//! Error type for dimension and validity failures in the linalg substrate.

use std::fmt;

/// Errors raised by matrix and vector constructors/operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// A constructor was given data whose length does not match the
    /// requested dimensions.
    DimensionMismatch {
        /// What was being constructed or applied.
        context: &'static str,
        /// Expected element count or dimension.
        expected: usize,
        /// Actual element count or dimension.
        actual: usize,
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// A matrix expected to be symmetric was not, within tolerance.
    NotSymmetric {
        /// Row index of the first asymmetric pair found.
        i: usize,
        /// Column index of the first asymmetric pair found.
        j: usize,
    },
    /// An empty matrix or vector was supplied where a nonempty one is
    /// required.
    Empty {
        /// What was being constructed or applied.
        context: &'static str,
    },
    /// A fallible allocation was refused by the allocator. Raised by
    /// [`crate::DenseMatrix::try_zeros`] so callers can report "this
    /// instance does not fit densely" instead of aborting the process.
    Allocation {
        /// What was being constructed.
        context: &'static str,
        /// Bytes requested when the allocator refused.
        bytes: usize,
    },
    /// Sparse (CSR) structure data was inconsistent: unsorted or duplicate
    /// column indices, an out-of-range index, or a malformed row pointer.
    InvalidSparsity {
        /// What was being constructed or applied.
        context: &'static str,
        /// Row in which the inconsistency was found.
        row: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotSymmetric { i, j } => {
                write!(f, "matrix is not symmetric at entry ({i},{j})")
            }
            LinalgError::Empty { context } => write!(f, "{context} must be nonempty"),
            LinalgError::Allocation { context, bytes } => {
                write!(f, "allocation of {bytes} bytes refused in {context}")
            }
            LinalgError::InvalidSparsity { context, row } => {
                write!(f, "invalid sparse structure in {context} at row {row}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = LinalgError::DimensionMismatch {
            context: "DenseMatrix::from_vec",
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains("expected 6"));
        assert!(e.to_string().contains("got 5"));

        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));

        let e = LinalgError::NotSymmetric { i: 1, j: 2 };
        assert!(e.to_string().contains("(1,2)"));

        let e = LinalgError::Empty { context: "vector" };
        assert!(e.to_string().contains("nonempty"));
    }
}
