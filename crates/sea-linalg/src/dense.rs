//! Row-major dense `f64` matrices.
//!
//! [`DenseMatrix`] is the workhorse container of the workspace: priors `X⁰`,
//! per-entry weight tables `Γ`, and solver iterates all live here. The row
//! equilibration pass of SEA walks rows (contiguous); the column pass walks
//! columns, so [`DenseMatrix::transposed`] exists to build a cache-friendly
//! transposed copy once per solve instead of striding on every iteration.

use crate::error::LinalgError;
use rayon::prelude::*;

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty {
                context: "DenseMatrix::zeros",
            });
        }
        Ok(Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Zero matrix of the given shape, with a *fallible* allocation.
    ///
    /// Unlike [`DenseMatrix::zeros`], an allocator refusal surfaces as
    /// [`LinalgError::Allocation`] instead of aborting the process, so
    /// large-instance tooling can prove "this does not fit densely" and
    /// keep running. Overflowing `rows * cols` is reported the same way.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] for zero dimensions and
    /// [`LinalgError::Allocation`] when the buffer cannot be allocated.
    pub fn try_zeros(rows: usize, cols: usize) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty {
                context: "DenseMatrix::try_zeros",
            });
        }
        let len = rows.checked_mul(cols).ok_or(LinalgError::Allocation {
            context: "DenseMatrix::try_zeros",
            bytes: usize::MAX,
        })?;
        let mut data = Vec::new();
        data.try_reserve_exact(len)
            .map_err(|_| LinalgError::Allocation {
                context: "DenseMatrix::try_zeros",
                bytes: len * std::mem::size_of::<f64>(),
            })?;
        data.resize(len, 0.0);
        Ok(Self { rows, cols, data })
    }

    /// Constant-filled matrix.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Result<Self, LinalgError> {
        let mut m = Self::zeros(rows, cols)?;
        m.data.fill(value);
        Ok(m)
    }

    /// Build from a row-major data vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows*cols`
    /// and [`LinalgError::Empty`] for zero dimensions.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty {
                context: "DenseMatrix::from_vec",
            });
        }
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: "DenseMatrix::from_vec",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Build from nested row slices (mostly for tests and small examples).
    ///
    /// # Errors
    /// Returns an error for empty input or ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty {
                context: "DenseMatrix::from_rows",
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    context: "DenseMatrix::from_rows",
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows `m`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `n`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries `m·n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: zero-dimension matrices cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Set entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole backing store, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole backing store, mutable, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the backing store.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Parallel iterator over row slices.
    pub fn par_row_iter(&self) -> impl IndexedParallelIterator<Item = &[f64]> {
        self.data.par_chunks_exact(self.cols)
    }

    /// Parallel iterator over mutable row slices.
    pub fn par_row_iter_mut(&mut self) -> impl IndexedParallelIterator<Item = &mut [f64]> {
        self.data.par_chunks_exact_mut(self.cols)
    }

    /// Copy column `j` into `out`.
    ///
    /// # Panics
    /// Panics in debug builds if `out.len() != rows`.
    pub fn copy_column_into(&self, j: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rows);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * self.cols + j];
        }
    }

    /// Freshly allocated transposed copy (column pass cache locality).
    pub fn transposed(&self) -> DenseMatrix {
        let mut t = vec![0.0; self.data.len()];
        // Blocked transpose for cache friendliness on big matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    let row = &self.data[i * self.cols..];
                    for j in jb..(jb + B).min(self.cols) {
                        t[j * self.rows + i] = row[j];
                    }
                }
            }
        }
        DenseMatrix {
            rows: self.cols,
            cols: self.rows,
            data: t,
        }
    }

    /// Row sums `sᵢ = Σⱼ xᵢⱼ`.
    pub fn row_sums(&self) -> Vec<f64> {
        self.row_iter().map(|r| r.iter().sum()).collect()
    }

    /// Column sums `dⱼ = Σᵢ xᵢⱼ`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.col_sums_into(&mut out);
        out
    }

    /// Column sums written into a caller-provided buffer (allocation-free;
    /// the solver's convergence check runs this every iteration).
    ///
    /// # Panics
    /// If `out.len() != self.cols()`.
    pub fn col_sums_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.cols, "col_sums_into buffer length");
        out.fill(0.0);
        for r in self.row_iter() {
            for (o, v) in out.iter_mut().zip(r) {
                *o += v;
            }
        }
    }

    /// Sum of every entry.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Number of nonzero entries.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of nonzero entries in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.count_nonzero() as f64 / self.len() as f64
    }

    /// Largest absolute entry difference against `other`.
    ///
    /// # Panics
    /// Panics in debug builds on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        debug_assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        crate::vector::max_abs_diff(&self.data, &other.data)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vector::norm2(&self.data)
    }

    /// Matrix–vector product `y = self · x` (serial).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "DenseMatrix::matvec (x)",
                expected: self.cols,
                actual: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "DenseMatrix::matvec (y)",
                expected: self.rows,
                actual: y.len(),
            });
        }
        for (yi, row) in y.iter_mut().zip(self.row_iter()) {
            *yi = crate::vector::dot(row, x);
        }
        Ok(())
    }

    /// Matrix–vector product with rayon parallelism over rows.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn matvec_parallel(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "DenseMatrix::matvec_parallel (x)",
                expected: self.cols,
                actual: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "DenseMatrix::matvec_parallel (y)",
                expected: self.rows,
                actual: y.len(),
            });
        }
        y.par_iter_mut()
            .zip(self.par_row_iter())
            .for_each(|(yi, row)| *yi = crate::vector::dot(row, x));
        Ok(())
    }

    /// Apply a function to every entry in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.len(), 6);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            DenseMatrix::zeros(0, 3),
            Err(LinalgError::Empty { .. })
        ));
        assert!(matches!(
            DenseMatrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn sums_and_stats() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![6.0, 15.0]);
        assert_eq!(m.col_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(m.total(), 21.0);
        assert_eq!(m.count_nonzero(), 6);
        assert!((m.density() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn transpose_blocked_large() {
        // Exercise the blocked path with a non-multiple-of-block shape.
        let rows = 67;
        let cols = 45;
        let data: Vec<f64> = (0..rows * cols).map(|k| k as f64).collect();
        let m = DenseMatrix::from_vec(rows, cols, data).unwrap();
        let t = m.transposed();
        for i in 0..rows {
            for j in 0..cols {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn matvec_serial_and_parallel_agree() {
        let m = sample();
        let x = [1.0, 0.5, -1.0];
        let mut y1 = [0.0; 2];
        let mut y2 = [0.0; 2];
        m.matvec(&x, &mut y1).unwrap();
        m.matvec_parallel(&x, &mut y2).unwrap();
        assert_eq!(y1, [-1.0, 0.5]);
        assert_eq!(y1, y2);
    }

    #[test]
    fn matvec_shape_errors() {
        let m = sample();
        let mut y = [0.0; 2];
        assert!(m.matvec(&[1.0, 2.0], &mut y).is_err());
        let mut bad_y = [0.0; 3];
        assert!(m.matvec(&[1.0, 2.0, 3.0], &mut bad_y).is_err());
        assert!(m.matvec_parallel(&[1.0], &mut y).is_err());
    }

    #[test]
    fn copy_column() {
        let m = sample();
        let mut c = [0.0; 2];
        m.copy_column_into(1, &mut c);
        assert_eq!(c, [2.0, 5.0]);
    }

    #[test]
    fn map_inplace_applies() {
        let mut m = sample();
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m.get(1, 1), 10.0);
    }
}
