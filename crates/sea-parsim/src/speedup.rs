//! Speedup and efficiency tables (the paper's `S_N = T₁/T_N`,
//! `E_N = T₁/(T_N·N)`).

use crate::machine::MachineModel;
use crate::schedule::{serial_time, simulate, SimPhase};

/// One row of a speedup table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupRow {
    /// Number of processors `N`.
    pub processors: usize,
    /// Simulated elapsed time `T_N` (seconds).
    pub time: f64,
    /// Speedup `S_N = T₁ / T_N`.
    pub speedup: f64,
    /// Efficiency `E_N = S_N / N`, in `[0, 1]` up to overhead noise.
    pub efficiency: f64,
}

/// Simulate the trace at each processor count and compute speedups against
/// the serial execution `T₁` (sum of all task costs, no parallel
/// overheads — the paper's serial-implementation baseline).
///
/// `overheads` supplies the dispatch/fork-join costs of the parallel
/// machine; pass [`MachineModel::ideal`]'s zeros for pure Amdahl curves.
///
/// ```
/// use sea_parsim::{speedup_table, SimPhase};
///
/// // 1.0s of perfectly parallel work plus a 0.25s serial phase.
/// let phases = vec![
///     SimPhase::parallel(vec![0.25; 4]),
///     SimPhase::serial(vec![0.25]),
/// ];
/// let rows = speedup_table(&phases, &[1, 4], 0.0, 0.0);
/// assert_eq!(rows[0].speedup, 1.0);
/// // Amdahl with serial fraction 1/5: S_4 = 1 / (0.2 + 0.8/4) = 2.5.
/// assert!((rows[1].speedup - 2.5).abs() < 1e-9);
/// ```
pub fn speedup_table(
    phases: &[SimPhase],
    processor_counts: &[usize],
    dispatch_overhead: f64,
    fork_join_overhead: f64,
) -> Vec<SpeedupRow> {
    let t1 = serial_time(phases);
    processor_counts
        .iter()
        .map(|&p| {
            let machine = MachineModel::with_overheads(p, dispatch_overhead, fork_join_overhead);
            let tn = if p <= 1 {
                t1
            } else {
                simulate(phases, &machine)
            };
            let speedup = if tn > 0.0 { t1 / tn } else { 1.0 };
            SpeedupRow {
                processors: p,
                time: tn,
                speedup,
                efficiency: speedup / p as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace(serial_work: f64, parallel_tasks: usize, task_cost: f64) -> Vec<SimPhase> {
        vec![
            SimPhase::parallel(vec![task_cost; parallel_tasks]),
            SimPhase::serial(vec![serial_work]),
        ]
    }

    #[test]
    fn speedups_bounded_by_processor_count_and_amdahl() {
        let phases = trace(1.0, 1000, 0.01);
        let rows = speedup_table(&phases, &[1, 2, 4, 6], 0.0, 0.0);
        assert_eq!(rows[0].speedup, 1.0);
        let t1 = 1.0 + 10.0;
        for r in &rows {
            assert!(r.speedup <= r.processors as f64 + 1e-9);
            // Amdahl: serial fraction f = 1/11.
            let f = 1.0 / t1;
            assert!(r.speedup <= 1.0 / (f + (1.0 - f) / r.processors as f64) + 1e-9);
            assert!(r.efficiency <= 1.0 + 1e-9);
        }
        // More processors → more speedup here (plenty of tasks).
        assert!(rows[3].speedup > rows[1].speedup);
    }

    #[test]
    fn larger_serial_fraction_lowers_efficiency() {
        let small_serial = speedup_table(&trace(0.1, 100, 0.1), &[4], 0.0, 0.0);
        let big_serial = speedup_table(&trace(5.0, 100, 0.1), &[4], 0.0, 0.0);
        assert!(small_serial[0].efficiency > big_serial[0].efficiency);
    }

    #[test]
    fn overheads_lower_measured_speedup() {
        let phases = trace(0.0, 64, 1e-4);
        let ideal = speedup_table(&phases, &[4], 0.0, 0.0);
        let lossy = speedup_table(&phases, &[4], 1e-5, 1e-4);
        assert!(lossy[0].speedup < ideal[0].speedup);
    }

    proptest! {
        #[test]
        fn efficiency_in_unit_interval_without_overheads(
            tasks in proptest::collection::vec(1e-6f64..1.0, 1..50),
            serial in 0.0f64..1.0,
            p in 1usize..8,
        ) {
            let phases = vec![
                SimPhase::parallel(tasks),
                SimPhase::serial(vec![serial]),
            ];
            let rows = speedup_table(&phases, &[p], 0.0, 0.0);
            prop_assert!(rows[0].speedup >= 1.0 - 1e-9);
            prop_assert!(rows[0].efficiency <= 1.0 + 1e-9);
        }
    }
}
