//! # sea-parsim — deterministic multiprocessor scheduling simulator
//!
//! Reproduces the paper's parallel speedup experiments (§4.2 Table 6/Fig. 5
//! and §5.2 Table 9/Fig. 7) without requiring a multiprocessor: the solvers
//! emit per-task execution traces (one task per row/column equilibration
//! subproblem, plus serial convergence-verification phases) and this crate
//! replays them on a simulated machine of `N` identical processors.
//!
//! The model captures exactly the effects the paper discusses:
//!
//! * parallel phases are scheduled by **LPT list scheduling** (longest
//!   processing time first — the natural model for Parallel FORTRAN task
//!   dispatch over identical CPUs);
//! * each dispatched task pays a fixed **dispatch overhead** and each
//!   parallel phase a **fork/join overhead** (task-allocation costs);
//! * **serial phases** (convergence verification) run on one processor
//!   regardless of `N` — the Amdahl term the paper blames for the
//!   sub-linear speedups of the larger problems.
//!
//! `T₁` is the plain serial execution (sum of all task costs, no
//! overheads), matching the paper's definition of speedup against the
//! *serial implementation*.

pub mod machine;
pub mod schedule;
pub mod speedup;

pub use machine::MachineModel;
pub use schedule::{lpt_makespan, simulate, SimPhase};
pub use speedup::{speedup_table, SpeedupRow};
