//! LPT list scheduling and trace replay.

use crate::machine::MachineModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One phase of a solve, as seen by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPhase {
    /// Whether the phase's tasks may run concurrently.
    pub parallel: bool,
    /// Whether the phase is memory-bandwidth-bound (dense mat-vec):
    /// parallelism is then capped by the machine's memory system.
    pub memory_bound: bool,
    /// Per-task costs in seconds.
    pub tasks: Vec<f64>,
}

impl SimPhase {
    /// A compute-bound parallel phase.
    pub fn parallel(tasks: Vec<f64>) -> Self {
        Self {
            parallel: true,
            memory_bound: false,
            tasks,
        }
    }

    /// A memory-bound parallel phase (dense mat-vec style).
    pub fn parallel_memory_bound(tasks: Vec<f64>) -> Self {
        Self {
            parallel: true,
            memory_bound: true,
            tasks,
        }
    }

    /// A serial phase.
    pub fn serial(tasks: Vec<f64>) -> Self {
        Self {
            parallel: false,
            memory_bound: false,
            tasks,
        }
    }

    /// Total work in the phase.
    pub fn work(&self) -> f64 {
        self.tasks.iter().sum()
    }
}

/// Makespan of scheduling `tasks` on `processors` identical machines with
/// LPT (longest processing time first, greedy to the least-loaded
/// processor).
///
/// Total f64 ordering on nonnegative costs; NaN costs are treated as zero.
pub fn lpt_makespan(tasks: &[f64], processors: usize) -> f64 {
    let p = processors.max(1);
    if tasks.is_empty() {
        return 0.0;
    }
    if p == 1 {
        return tasks.iter().filter(|t| t.is_finite()).sum();
    }
    let mut sorted: Vec<f64> = tasks
        .iter()
        .map(|&t| if t.is_finite() && t > 0.0 { t } else { 0.0 })
        .collect();
    sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
    // Min-heap of processor loads keyed by bit pattern of the load (all
    // loads are nonnegative finite, so the ordering is correct).
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> =
        (0..p as u64).map(|i| Reverse((0u64, i))).collect();
    for t in sorted {
        let Reverse((bits, id)) = heap.pop().expect("nonempty heap");
        let load = f64::from_bits(bits) + t;
        heap.push(Reverse((load.to_bits(), id)));
    }
    heap.into_iter()
        .map(|Reverse((bits, _))| f64::from_bits(bits))
        .fold(0.0_f64, f64::max)
}

/// Replay the phases on the machine: parallel phases are LPT-scheduled with
/// per-task dispatch overhead plus a fork/join overhead; serial phases run
/// back to back on one processor. Returns the simulated elapsed seconds.
pub fn simulate(phases: &[SimPhase], machine: &MachineModel) -> f64 {
    let mut elapsed = 0.0;
    for phase in phases {
        if phase.parallel && machine.processors > 1 {
            let p_eff = if phase.memory_bound {
                machine.processors.min(machine.memory_parallelism)
            } else {
                machine.processors
            };
            if p_eff > 1 {
                // Dispatch overhead attaches to each task.
                let with_overhead: Vec<f64> = phase
                    .tasks
                    .iter()
                    .map(|&t| t + machine.dispatch_overhead)
                    .collect();
                elapsed += lpt_makespan(&with_overhead, p_eff) + machine.fork_join_overhead;
            } else {
                elapsed += phase.work();
            }
        } else {
            elapsed += phase.work();
        }
    }
    elapsed
}

/// Plain serial execution time: every task back to back, no overheads —
/// the paper's `T₁`.
pub fn serial_time(phases: &[SimPhase]) -> f64 {
    phases.iter().map(SimPhase::work).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn makespan_trivial_cases() {
        assert_eq!(lpt_makespan(&[], 4), 0.0);
        assert_eq!(lpt_makespan(&[3.0], 4), 3.0);
        assert_eq!(lpt_makespan(&[1.0, 2.0, 3.0], 1), 6.0);
    }

    #[test]
    fn makespan_balances_equal_tasks() {
        // 6 unit tasks on 3 processors = 2.
        let tasks = vec![1.0; 6];
        assert!((lpt_makespan(&tasks, 3) - 2.0).abs() < 1e-12);
        // 7 unit tasks on 3 processors = 3.
        let tasks = vec![1.0; 7];
        assert!((lpt_makespan(&tasks, 3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_dominated_by_longest_task() {
        let tasks = [10.0, 0.1, 0.1, 0.1];
        assert!((lpt_makespan(&tasks, 4) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn simulate_respects_serial_phases() {
        let phases = [
            SimPhase::parallel(vec![1.0; 4]),
            SimPhase::serial(vec![2.0]),
        ];
        let t1 = serial_time(&phases);
        assert_eq!(t1, 6.0);
        let t4 = simulate(&phases, &MachineModel::ideal(4));
        assert!((t4 - 3.0).abs() < 1e-12);
        // Amdahl bound: speedup ≤ 1/f with serial fraction f = 1/3.
        assert!(t1 / t4 <= 3.0 + 1e-12);
    }

    #[test]
    fn overheads_reduce_efficiency() {
        let phases = [SimPhase::parallel(vec![1e-3; 100])];
        let ideal = simulate(&phases, &MachineModel::ideal(4));
        let real = simulate(&phases, &MachineModel::new(4));
        assert!(real > ideal);
    }

    #[test]
    fn single_processor_machine_ignores_overheads() {
        let phases = [SimPhase::parallel(vec![1.0; 8])];
        let t = simulate(&phases, &MachineModel::new(1));
        assert_eq!(t, 8.0);
    }

    proptest! {
        #[test]
        fn makespan_within_classical_bounds(
            tasks in proptest::collection::vec(0.0f64..100.0, 1..60),
            p in 1usize..8,
        ) {
            let ms = lpt_makespan(&tasks, p);
            let total: f64 = tasks.iter().sum();
            let longest = tasks.iter().cloned().fold(0.0_f64, f64::max);
            let lower = (total / p as f64).max(longest);
            prop_assert!(ms >= lower - 1e-9);
            prop_assert!(ms <= total + 1e-9);
            // Graham's list-scheduling guarantee:
            // makespan ≤ total/p + (1 − 1/p)·longest.
            let graham = total / p as f64 + (1.0 - 1.0 / p as f64) * longest;
            prop_assert!(ms <= graham + 1e-9);
        }

        #[test]
        fn makespan_monotone_in_processors(
            tasks in proptest::collection::vec(0.0f64..100.0, 1..60),
            p in 1usize..7,
        ) {
            // More processors never increases the *lower bound driven*
            // makespan by more than numerical noise; check weak
            // monotonicity of our scheduler.
            let a = lpt_makespan(&tasks, p);
            let b = lpt_makespan(&tasks, p + 1);
            prop_assert!(b <= a + 1e-9);
        }
    }
}
