//! The simulated machine: identical processors with task-dispatch and
//! fork/join overheads.

/// A shared-memory machine of `processors` identical CPUs, in the spirit of
/// the IBM 3090-600E the paper ran on (up to 6 CPUs, Parallel FORTRAN task
/// allocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Number of identical processors (`N` in the speedup tables).
    pub processors: usize,
    /// Fixed cost, in seconds, of dispatching one task to a processor.
    pub dispatch_overhead: f64,
    /// Fixed cost, in seconds, of forking and joining one parallel phase.
    pub fork_join_overhead: f64,
    /// Effective parallelism cap for **memory-bound** phases (dense
    /// mat-vecs): on a shared-memory machine the memory system saturates
    /// before the CPUs do, so such phases scale only to
    /// `min(processors, memory_parallelism)`. The 3090's interleaved
    /// memory sustained roughly three concurrent streams.
    pub memory_parallelism: usize,
}

impl MachineModel {
    /// Default per-task dispatch overhead (seconds): a modern
    /// work-stealing-pool dequeue (~200 ns). The simulated machine is "N
    /// copies of the processor the tasks were measured on", so modern
    /// overheads are the consistent choice; the paper's Parallel FORTRAN
    /// dispatch was far costlier in absolute terms but its tasks were
    /// milliseconds, giving a similar overhead-to-task ratio.
    pub const DEFAULT_DISPATCH_OVERHEAD: f64 = 2e-7;
    /// Default per-phase fork/join overhead (seconds).
    pub const DEFAULT_FORK_JOIN_OVERHEAD: f64 = 5e-6;
    /// Default memory-parallelism cap (the 3090-style three-stream memory
    /// system; see `memory_parallelism`).
    pub const DEFAULT_MEMORY_PARALLELISM: usize = 3;

    /// Machine with `processors` CPUs and default overheads.
    pub fn new(processors: usize) -> Self {
        Self {
            processors: processors.max(1),
            dispatch_overhead: Self::DEFAULT_DISPATCH_OVERHEAD,
            fork_join_overhead: Self::DEFAULT_FORK_JOIN_OVERHEAD,
            memory_parallelism: Self::DEFAULT_MEMORY_PARALLELISM,
        }
    }

    /// Machine with explicit overheads.
    pub fn with_overheads(
        processors: usize,
        dispatch_overhead: f64,
        fork_join_overhead: f64,
    ) -> Self {
        Self {
            processors: processors.max(1),
            dispatch_overhead: dispatch_overhead.max(0.0),
            fork_join_overhead: fork_join_overhead.max(0.0),
            memory_parallelism: Self::DEFAULT_MEMORY_PARALLELISM,
        }
    }

    /// Override the memory-parallelism cap.
    pub fn with_memory_parallelism(mut self, cap: usize) -> Self {
        self.memory_parallelism = cap.max(1);
        self
    }

    /// An idealized machine: no overheads at all (pure Amdahl behaviour).
    pub fn ideal(processors: usize) -> Self {
        Self::with_overheads(processors, 0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_clamp_and_default() {
        let m = MachineModel::new(0);
        assert_eq!(m.processors, 1);
        assert!(m.dispatch_overhead > 0.0);

        let m = MachineModel::with_overheads(4, -1.0, -2.0);
        assert_eq!(m.processors, 4);
        assert_eq!(m.dispatch_overhead, 0.0);
        assert_eq!(m.fork_join_overhead, 0.0);

        let m = MachineModel::ideal(6);
        assert_eq!(m.processors, 6);
        assert_eq!(m.fork_join_overhead, 0.0);
    }
}
