//! Per-phase breakdown and critical-path analysis of recorded solve spans.
//!
//! [`SpanBreakdown`] consumes the spans imported from a chrome-trace
//! export (see `sea_observe::parse_chrome_trace`) and answers the
//! questions the event-level [`SolveSummary`](crate::SolveSummary)
//! cannot: where wall time actually went per span kind, what the
//! *measured* critical path through the solve was (overlapping sibling
//! spans — shards, batch instances — count once at their maximum, serial
//! siblings add up), and hence the measured serial fraction and the
//! speedup ceiling `T₁ / T∞`. [`SpanBreakdown::phases`] re-expresses the
//! recorded spans as per-phase task-duration vectors so the parallel-
//! machine simulator can replay *measured* phases instead of synthetic
//! ones.

use crate::table::{fmt_seconds, Table};
use sea_observe::{KernelCounters, ParsedSpan, SpanKind};

/// Aggregate for one span kind.
#[derive(Debug, Clone, Default)]
pub struct KindSummary {
    /// Number of recorded spans of this kind.
    pub count: usize,
    /// Wall time inclusive of children, nanoseconds. Overlapping spans
    /// (shards) all count, so this can exceed elapsed time.
    pub inclusive_ns: u64,
    /// Self wall time (inclusive minus recorded children), nanoseconds.
    pub self_ns: u64,
    /// Kernel counters summed over spans of this kind (subtree totals).
    pub counters: KernelCounters,
}

/// One recorded phase re-expressed for the parallel-machine simulator:
/// a vector of task durations (seconds) plus whether the phase is
/// inherently serial.
#[derive(Debug, Clone)]
pub struct SpanPhase {
    /// Kind the phase came from.
    pub kind: SpanKind,
    /// True when the phase cannot be spread over processors.
    pub serial: bool,
    /// Task durations in seconds.
    pub tasks: Vec<f64>,
}

/// Breakdown of a recorded span forest.
#[derive(Debug, Clone)]
pub struct SpanBreakdown {
    /// Per-kind aggregates, in [`SpanKind::ALL`] order, zero-count kinds
    /// omitted.
    pub kinds: Vec<(SpanKind, KindSummary)>,
    /// Elapsed wall time covered by the root spans, nanoseconds.
    pub wall_ns: u64,
    /// Total work `T₁`: the sum of every span's self time, nanoseconds.
    pub work_ns: u64,
    /// Measured critical path `T∞` through the span forest, nanoseconds.
    pub critical_path_ns: u64,
    /// Self time spent in inherently serial spans (Solve/Epoch/Check and
    /// batch bookkeeping), nanoseconds.
    pub serial_ns: u64,
    /// Number of recorded spans.
    pub spans: usize,
}

/// Whether a kind's *self* time is inherently serial (driver bookkeeping
/// and convergence checks) as opposed to parallelizable pass/task work.
fn is_serial_kind(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::Solve | SpanKind::Epoch | SpanKind::Check | SpanKind::Batch
    )
}

impl SpanBreakdown {
    /// Analyze a span forest (any order; linked by id/parent).
    pub fn from_spans(spans: &[ParsedSpan]) -> SpanBreakdown {
        let n = spans.len();
        // id → position, then children lists in start order.
        let mut by_id = std::collections::HashMap::with_capacity(n);
        for (i, s) in spans.iter().enumerate() {
            by_id.insert(s.id, i);
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent.and_then(|p| by_id.get(&p)) {
                // A parent lost to ring overwrite degrades the child to a
                // root rather than dropping it.
                Some(&p) if p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        for list in &mut children {
            list.sort_by_key(|&i| spans[i].start_ns);
        }

        let mut kinds_map: Vec<KindSummary> = vec![KindSummary::default(); SpanKind::ALL.len()];
        let mut work_ns = 0u64;
        let mut serial_ns = 0u64;
        for (i, s) in spans.iter().enumerate() {
            let child_ns: u64 = children[i]
                .iter()
                .map(|&c| spans[c].duration_ns())
                .fold(0, u64::saturating_add);
            let self_ns = s.duration_ns().saturating_sub(child_ns);
            let k = kind_pos(s.kind);
            kinds_map[k].count += 1;
            kinds_map[k].inclusive_ns += s.duration_ns();
            kinds_map[k].self_ns += self_ns;
            kinds_map[k].counters = kinds_map[k].counters.merged(s.counters);
            work_ns += self_ns;
            if is_serial_kind(s.kind) {
                serial_ns += self_ns;
            }
        }

        let critical_path_ns = roots
            .iter()
            .map(|&r| critical_path(spans, &children, r))
            .fold(0, u64::saturating_add);
        let wall_ns = {
            let start = roots.iter().map(|&r| spans[r].start_ns).min().unwrap_or(0);
            let end = roots.iter().map(|&r| spans[r].end_ns).max().unwrap_or(0);
            end.saturating_sub(start)
        };

        let kinds = SpanKind::ALL
            .iter()
            .filter(|k| kinds_map[kind_pos(**k)].count > 0)
            .map(|&k| (k, kinds_map[kind_pos(k)].clone()))
            .collect();
        SpanBreakdown {
            kinds,
            wall_ns,
            work_ns,
            critical_path_ns,
            serial_ns,
            spans: n,
        }
    }

    /// Measured serial fraction: self time of inherently serial spans over
    /// total work.
    pub fn serial_fraction(&self) -> f64 {
        if self.work_ns == 0 {
            return 0.0;
        }
        self.serial_ns as f64 / self.work_ns as f64
    }

    /// Speedup ceiling `T₁ / T∞` implied by the measured critical path.
    pub fn max_speedup(&self) -> f64 {
        if self.critical_path_ns == 0 {
            return 1.0;
        }
        self.work_ns as f64 / self.critical_path_ns as f64
    }

    /// Re-express the recorded spans as simulator phases, in span-id
    /// (preorder) order. Passes with recorded shard leaves become parallel
    /// phases of the measured shard durations; passes recorded without
    /// shards are split evenly over their task count (capped at 256
    /// chunks, matching the drivers' phase reporting); checks and driver
    /// self time are serial. Shard/Instance leaves are consumed by their
    /// parents and never produce phases of their own.
    pub fn phases(spans: &[ParsedSpan]) -> Vec<SpanPhase> {
        let mut by_id = std::collections::HashMap::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            by_id.insert(s.id, i);
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        for (i, s) in spans.iter().enumerate() {
            if let Some(&p) = s.parent.and_then(|p| by_id.get(&p)) {
                if p != i {
                    children[p].push(i);
                }
            }
        }
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by_key(|&i| spans[i].id);

        let mut phases = Vec::new();
        for &i in &order {
            let s = &spans[i];
            let secs = s.duration_ns() as f64 / 1e9;
            match s.kind {
                SpanKind::RowPass | SpanKind::ColPass | SpanKind::Projection => {
                    let shard_durs: Vec<f64> = children[i]
                        .iter()
                        .filter(|&&c| spans[c].kind == SpanKind::Shard)
                        .map(|&c| spans[c].duration_ns() as f64 / 1e9)
                        .collect();
                    let tasks = if shard_durs.is_empty() {
                        let chunks = s.tasks.clamp(1, 256) as usize;
                        vec![secs / chunks as f64; chunks]
                    } else {
                        shard_durs
                    };
                    phases.push(SpanPhase {
                        kind: s.kind,
                        serial: false,
                        tasks,
                    });
                }
                SpanKind::Check => phases.push(SpanPhase {
                    kind: s.kind,
                    serial: true,
                    tasks: vec![secs],
                }),
                SpanKind::Batch => {
                    let inst: Vec<f64> = children[i]
                        .iter()
                        .filter(|&&c| spans[c].kind == SpanKind::Instance)
                        .map(|&c| spans[c].duration_ns() as f64 / 1e9)
                        .collect();
                    if !inst.is_empty() {
                        phases.push(SpanPhase {
                            kind: SpanKind::Instance,
                            serial: false,
                            tasks: inst,
                        });
                    }
                }
                // Solve/Epoch self time is bookkeeping noise; Shard and
                // Instance leaves were folded into their parents above.
                _ => {}
            }
        }
        phases
    }

    /// Render the per-kind table plus the critical-path analysis lines.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "per-phase breakdown (from spans)",
            &["kind", "count", "incl", "self", "self %", "kernel work"],
        );
        for (kind, k) in &self.kinds {
            let pct = if self.work_ns > 0 {
                100.0 * k.self_ns as f64 / self.work_ns as f64
            } else {
                0.0
            };
            t.push_row(vec![
                kind.name().to_string(),
                k.count.to_string(),
                fmt_seconds(k.inclusive_ns as f64 / 1e9),
                fmt_seconds(k.self_ns as f64 / 1e9),
                format!("{pct:.1}"),
                k.counters.work().to_string(),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\nspans {}  wall {}  work T1 {}  critical path Tinf {}\n\
             measured serial fraction {:.4}  speedup ceiling {:.2}x\n",
            self.spans,
            fmt_seconds(self.wall_ns as f64 / 1e9),
            fmt_seconds(self.work_ns as f64 / 1e9),
            fmt_seconds(self.critical_path_ns as f64 / 1e9),
            self.serial_fraction(),
            self.max_speedup(),
        ));
        out
    }
}

fn kind_pos(kind: SpanKind) -> usize {
    // Allowed: ALL contains every variant by construction.
    #[allow(clippy::expect_used)]
    SpanKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind in ALL")
}

/// Critical path through `root`'s subtree: self time plus, per group of
/// wall-time-overlapping children (which ran concurrently), the maximum
/// child critical path; disjoint groups ran sequentially and add up.
fn critical_path(spans: &[ParsedSpan], children: &[Vec<usize>], root: usize) -> u64 {
    let kids = &children[root];
    let child_total: u64 = kids
        .iter()
        .map(|&c| spans[c].duration_ns())
        .fold(0, u64::saturating_add);
    let self_ns = spans[root].duration_ns().saturating_sub(child_total);
    let mut path = 0u64;
    let mut group_max = 0u64;
    let mut group_end = 0u64;
    let mut in_group = false;
    for &c in kids {
        let s = &spans[c];
        let cp = critical_path(spans, children, c);
        if in_group && s.start_ns < group_end {
            group_max = group_max.max(cp);
            group_end = group_end.max(s.end_ns);
        } else {
            path = path.saturating_add(group_max);
            group_max = cp;
            group_end = s.end_ns;
            in_group = true;
        }
    }
    path.saturating_add(group_max).saturating_add(self_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: u64,
        parent: Option<u64>,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
        tasks: u64,
    ) -> ParsedSpan {
        ParsedSpan {
            id,
            parent,
            kind,
            index: 0,
            start_ns,
            end_ns,
            tasks,
            counters: KernelCounters::default(),
            detail: String::new(),
        }
    }

    /// solve > epoch > {row pass > 2 overlapping shards, check}
    fn sample_spans() -> Vec<ParsedSpan> {
        vec![
            span(0, None, SpanKind::Solve, 0, 6_200, 4),
            span(1, Some(0), SpanKind::Epoch, 100, 6_100, 0),
            span(2, Some(1), SpanKind::RowPass, 200, 5_000, 4),
            // Shards overlap in wall time → they ran concurrently.
            span(3, Some(2), SpanKind::Shard, 200, 4_200, 2),
            span(4, Some(2), SpanKind::Shard, 1_200, 3_200, 2),
            span(5, Some(1), SpanKind::Check, 5_000, 6_000, 1),
        ]
    }

    #[test]
    fn breakdown_measures_critical_path_and_serial_fraction() {
        let spans = sample_spans();
        let b = SpanBreakdown::from_spans(&spans);
        assert_eq!(b.spans, 6);
        assert_eq!(b.wall_ns, 6_200);
        // Work: every span's self time. Shards 4000+2000, pass self
        // 4800-6000→0 (children exceed), check 1000, epoch self
        // 6000-(4800+1000)=200, solve self 100+100=200... computed below.
        assert_eq!(b.work_ns, {
            let shard = 4_000 + 2_000;
            let pass_self = 4_800u64.saturating_sub(6_000);
            let check = 1_000;
            let epoch_self = 6_000u64 - (4_800 + 1_000);
            let solve_self = 6_200 - 6_000;
            shard + pass_self + check + epoch_self + solve_self
        });
        // Critical path: solve self + epoch self + (pass self 0 + max
        // shard 4000) + check 1000.
        assert_eq!(b.critical_path_ns, 200 + 200 + 4_000 + 1_000);
        assert!(b.max_speedup() > 1.0);
        let f = b.serial_fraction();
        assert!(f > 0.0 && f < 1.0, "serial fraction {f}");
        let text = b.render();
        assert!(text.contains("row_pass"));
        assert!(text.contains("critical path"));
    }

    #[test]
    fn phases_use_measured_shards_and_split_serial_passes() {
        let spans = sample_spans();
        let phases = SpanBreakdown::phases(&spans);
        // One parallel row pass (2 measured shards) and one serial check.
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].kind, SpanKind::RowPass);
        assert!(!phases[0].serial);
        assert_eq!(phases[0].tasks.len(), 2);
        assert!((phases[0].tasks[0] - 4e-6).abs() < 1e-12);
        assert_eq!(phases[1].kind, SpanKind::Check);
        assert!(phases[1].serial);
    }

    #[test]
    fn orphaned_children_degrade_to_roots() {
        let mut spans = sample_spans();
        // Drop the solve root: epoch's parent vanishes.
        spans.retain(|s| s.kind != SpanKind::Solve);
        let b = SpanBreakdown::from_spans(&spans);
        assert_eq!(b.spans, 5);
        assert!(b.critical_path_ns > 0);
    }
}
