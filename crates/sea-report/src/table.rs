//! ASCII/markdown table rendering.

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (wi, cell) in w.iter_mut().zip(row) {
                *wi = (*wi).max(cell.len());
            }
        }
        w
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line = |cells: &[String], w: &[usize]| -> String {
            let mut s = String::new();
            for (c, width) in cells.iter().zip(w) {
                s.push_str(&format!("| {c:>width$} "));
            }
            s.push('|');
            s
        };
        out.push_str(&line(&self.headers, &w));
        out.push('\n');
        let mut sep = String::new();
        for width in &w {
            sep.push_str(&format!("|{}", "-".repeat(width + 2)));
        }
        sep.push('|');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &w));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table (title as a heading).
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| " --- |").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Human-friendly seconds formatting with four significant decimals, like
/// the paper's CPU-time columns.
pub fn fmt_seconds(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.4e}", secs)
    } else {
        format!("{secs:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Table X", &["name", "seconds"]);
        t.push_row(vec!["alpha".into(), "1.25".into()]);
        t.push_row(vec!["b".into(), "100.0".into()]);
        t
    }

    #[test]
    fn renders_aligned_text() {
        let s = sample().render();
        assert!(s.starts_with("Table X\n"));
        assert!(s.contains("|  name | seconds |"));
        assert!(s.contains("| alpha |    1.25 |"));
        assert!(s.contains("|     b |   100.0 |"));
    }

    #[test]
    fn renders_markdown() {
        let s = sample().render_markdown();
        assert!(s.contains("### Table X"));
        assert!(s.contains("| name | seconds |"));
        assert!(s.contains("| --- | --- |"));
        assert!(s.contains("| alpha | 1.25 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn counts_rows() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Table X");
    }

    #[test]
    fn formats_seconds() {
        assert_eq!(fmt_seconds(1.23456), "1.2346");
        assert_eq!(fmt_seconds(0.0024), "0.0024");
        assert!(fmt_seconds(1e-5).contains('e'));
    }
}
