//! # sea-report — experiment harness utilities
//!
//! Table formatting, duration formatting, experiment records used by the
//! `sea-bench` binaries that regenerate the paper's Tables 1–9 and
//! Figures 5/7, and [`SolveSummary`] — the aggregate view of a recorded
//! solver event log (per-phase wall time, Amdahl serial fraction,
//! iterations to convergence). Depends only on `sea-observe`.

pub mod record;
pub mod spans;
pub mod summary;
pub mod table;

pub use record::ExperimentRecord;
pub use spans::{KindSummary, SpanBreakdown, SpanPhase};
pub use summary::{PhaseSummary, SolveSummary};
pub use table::{fmt_seconds, Table};
