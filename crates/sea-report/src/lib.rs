//! # sea-report — experiment harness utilities
//!
//! Table formatting, duration formatting, and experiment records used by
//! the `sea-bench` binaries that regenerate the paper's Tables 1–9 and
//! Figures 5/7. Kept dependency-free so every consumer can use it.

pub mod record;
pub mod table;

pub use record::ExperimentRecord;
pub use table::{fmt_seconds, Table};
