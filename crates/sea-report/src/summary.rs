//! Post-solve summaries computed from recorded event logs.
//!
//! A JSONL log written with `sea-solve … --observe events.jsonl` (or any
//! in-memory `Vec<Event>`) aggregates into a [`SolveSummary`]: per-phase
//! wall time and total work, the Amdahl serial fraction, and the headline
//! convergence figures. The summary renders as the same [`Table`] the
//! bench binaries use, so solve logs and experiment records read alike.

use crate::table::{fmt_seconds, Table};
use sea_observe::{Event, KernelCounters, PhaseLabel};

/// Aggregate over every execution of one phase label in a log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSummary {
    /// Which phase.
    pub label: PhaseLabel,
    /// How many times the phase ran.
    pub count: usize,
    /// Total wall-clock seconds across runs.
    pub wall_seconds: f64,
    /// Total work (sum of per-task costs; falls back to wall time for
    /// phases recorded without task vectors).
    pub work_seconds: f64,
    /// Longest single task seen in any run.
    pub max_task_seconds: f64,
}

/// One batch instance's warm-start outcome (from `BatchInstance`).
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSummary {
    /// Submission index (0-based).
    pub index: usize,
    /// Caller-supplied instance id.
    pub id: String,
    /// Warm-start cache family, when declared.
    pub family: Option<String>,
    /// Cache outcome (`"hit"`, `"miss"`, `"bypass"`).
    pub cache: String,
    /// Kernel work spent on the instance.
    pub kernel_work: u64,
    /// Kernel work saved vs the family's cold baseline.
    pub work_saved: u64,
}

/// Everything the `report` command prints about one recorded log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveSummary {
    /// Wire version declared by a leading `meta` line, when present.
    pub wire_version: Option<u64>,
    /// Solver lifecycles in the log (the general driver nests one per
    /// inner diagonal solve, so this can exceed 1 for a single run).
    pub solves: usize,
    /// Iterations of the outermost solve (the last `SolveEnd`).
    pub iterations: usize,
    /// Whether the outermost solve converged.
    pub converged: bool,
    /// Final residual of the outermost solve.
    pub residual: f64,
    /// Wall-clock seconds of the outermost solve.
    pub solve_seconds: f64,
    /// Outer diagonalization iterations (general solver only).
    pub outer_iterations: usize,
    /// Convergence checks performed across all solves.
    pub checks: usize,
    /// Per-phase aggregates, in [`PhaseLabel::ALL`] order; labels that
    /// never ran are omitted.
    pub phases: Vec<PhaseSummary>,
    /// Merged kernel work counters.
    pub counters: KernelCounters,
    /// Quickselect→sort-scan kernel fallbacks across the log.
    pub kernel_fallbacks: u64,
    /// Checkpoint snapshots written during the run.
    pub checkpoints: usize,
    /// Supervisor stop reason of the outermost solve, when it stopped a
    /// solve early (`deadline_exceeded`, `cancelled`, …).
    pub stop_reason: Option<String>,
    /// Batch solves in the log (`sea-batch` engine lifecycles).
    pub batches: usize,
    /// Instances solved across all batches (from `BatchEnd`).
    pub batch_instances: usize,
    /// Batch instances that converged.
    pub batch_converged: usize,
    /// Warm-start cache hits across all batches.
    pub batch_cache_hits: usize,
    /// Warm-start cache misses across all batches.
    pub batch_cache_misses: usize,
    /// Kernel work spent across batch instances.
    pub batch_kernel_work: u64,
    /// Kernel work saved by warm starts vs cold baselines.
    pub batch_work_saved: u64,
    /// Wall-clock seconds across batch solves.
    pub batch_seconds: f64,
    /// Per-instance warm-start outcomes, in log order.
    pub instances: Vec<InstanceSummary>,
}

impl SolveSummary {
    /// Aggregate an event stream (log order).
    pub fn from_events(events: &[Event]) -> SolveSummary {
        let mut out = SolveSummary::default();
        let mut by_label: Vec<Option<PhaseSummary>> = vec![None; PhaseLabel::ALL.len()];
        for event in events {
            match event {
                Event::SolveStart { .. } => out.solves += 1,
                Event::PhaseEnd {
                    label,
                    seconds,
                    task_seconds,
                    ..
                } => {
                    let slot = PhaseLabel::ALL
                        .iter()
                        .position(|l| l == label)
                        .expect("label in ALL");
                    let entry = by_label[slot].get_or_insert(PhaseSummary {
                        label: *label,
                        count: 0,
                        wall_seconds: 0.0,
                        work_seconds: 0.0,
                        max_task_seconds: 0.0,
                    });
                    entry.count += 1;
                    entry.wall_seconds += seconds;
                    if task_seconds.is_empty() {
                        entry.work_seconds += seconds;
                        entry.max_task_seconds = entry.max_task_seconds.max(*seconds);
                    } else {
                        entry.work_seconds += task_seconds.iter().sum::<f64>();
                        entry.max_task_seconds = task_seconds
                            .iter()
                            .fold(entry.max_task_seconds, |m, &v| m.max(v));
                    }
                }
                Event::ConvergenceCheck { .. } => out.checks += 1,
                Event::OuterIteration { .. } => out.outer_iterations += 1,
                Event::KernelCounters { counters } => {
                    out.counters = out.counters.merged(*counters);
                }
                Event::SolveEnd {
                    iterations,
                    converged,
                    residual,
                    seconds,
                    ..
                } => {
                    // The outermost lifecycle ends last; keep overwriting.
                    out.iterations = *iterations;
                    out.converged = *converged;
                    out.residual = *residual;
                    out.solve_seconds = *seconds;
                }
                Event::FallbackTriggered { count, .. } => out.kernel_fallbacks += count,
                Event::CheckpointWritten { .. } => out.checkpoints += 1,
                Event::SupervisorStop { reason, .. } => {
                    out.stop_reason = Some((*reason).to_string());
                }
                Event::BatchStart { .. } => out.batches += 1,
                Event::BatchEnd {
                    instances,
                    converged,
                    cache_hits,
                    cache_misses,
                    kernel_work,
                    work_saved,
                    seconds,
                } => {
                    out.batch_instances += instances;
                    out.batch_converged += converged;
                    out.batch_cache_hits += cache_hits;
                    out.batch_cache_misses += cache_misses;
                    out.batch_kernel_work += kernel_work;
                    out.batch_work_saved += work_saved;
                    out.batch_seconds += seconds;
                }
                Event::BatchInstance {
                    index,
                    id,
                    family,
                    cache,
                    kernel_work,
                    work_saved,
                } => out.instances.push(InstanceSummary {
                    index: *index,
                    id: id.clone(),
                    family: family.clone(),
                    cache: (*cache).to_string(),
                    kernel_work: *kernel_work,
                    work_saved: *work_saved,
                }),
                Event::Meta { wire_version } => out.wire_version = Some(*wire_version),
                Event::PhaseStart { .. } | Event::MultiplierBound { .. } => {}
            }
        }
        out.phases = by_label.into_iter().flatten().collect();
        out
    }

    /// Total work across all phases (seconds on one processor).
    pub fn total_work(&self) -> f64 {
        self.phases.iter().map(|p| p.work_seconds).sum()
    }

    /// The Amdahl serial fraction: work in inherently serial phases over
    /// total work, in `[0, 1]`; `0.0` when the log holds no phases.
    pub fn serial_fraction(&self) -> f64 {
        let total = self.total_work();
        if total <= 0.0 {
            return 0.0;
        }
        let serial: f64 = self
            .phases
            .iter()
            .filter(|p| !p.label.is_parallel())
            .map(|p| p.work_seconds)
            .sum();
        serial / total
    }

    /// The per-phase table: runs, wall time, total work, work share.
    pub fn phase_table(&self) -> Table {
        let mut t = Table::new(
            "Per-phase breakdown",
            &["phase", "runs", "wall s", "work s", "share"],
        );
        let total = self.total_work().max(f64::MIN_POSITIVE);
        for p in &self.phases {
            t.push_row(vec![
                p.label.name().to_string(),
                p.count.to_string(),
                fmt_seconds(p.wall_seconds),
                fmt_seconds(p.work_seconds),
                format!("{:.1}%", 100.0 * p.work_seconds / total),
            ]);
        }
        t
    }

    /// The per-instance table for batch logs: one row per `BatchInstance`.
    pub fn instance_table(&self) -> Table {
        let mut t = Table::new(
            "Batch instances",
            &["#", "id", "family", "cache", "kernel work", "work saved"],
        );
        for i in &self.instances {
            t.push_row(vec![
                i.index.to_string(),
                i.id.clone(),
                i.family.clone().unwrap_or_else(|| "-".to_string()),
                i.cache.clone(),
                i.kernel_work.to_string(),
                i.work_saved.to_string(),
            ]);
        }
        t
    }

    /// Render the full summary: headline figures, the per-phase table, and
    /// kernel work counters when present.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "solves: {}   iterations: {}   converged: {}   residual: {:.3e}\n",
            self.solves, self.iterations, self.converged, self.residual
        ));
        out.push_str(&format!(
            "wall time: {} s   convergence checks: {}\n",
            fmt_seconds(self.solve_seconds),
            self.checks
        ));
        if self.outer_iterations > 0 {
            out.push_str(&format!("outer iterations: {}\n", self.outer_iterations));
        }
        out.push_str(&format!(
            "serial fraction (Amdahl): {:.2}%\n\n",
            100.0 * self.serial_fraction()
        ));
        out.push_str(&self.phase_table().render());
        if !self.counters.is_empty() {
            let c = &self.counters;
            out.push_str(&format!(
                "\nkernel work: {} subproblems, {} breakpoints scanned, \
                 {} quickselect pivots, {} boxed clamps\n",
                c.subproblems, c.breakpoints_scanned, c.quickselect_pivots, c.boxed_clamps
            ));
        }
        if let Some(reason) = &self.stop_reason {
            out.push_str(&format!("supervisor stop: {reason}\n"));
        }
        if self.kernel_fallbacks > 0 {
            out.push_str(&format!("kernel fallbacks: {}\n", self.kernel_fallbacks));
        }
        if self.checkpoints > 0 {
            out.push_str(&format!("checkpoints written: {}\n", self.checkpoints));
        }
        if self.batches > 0 {
            out.push_str(&format!(
                "batches: {}   instances: {} ({} converged)   wall time: {} s\n",
                self.batches,
                self.batch_instances,
                self.batch_converged,
                fmt_seconds(self.batch_seconds),
            ));
            out.push_str(&format!(
                "warm-start cache: {} hits, {} misses   kernel work: {} ({} saved)\n",
                self.batch_cache_hits,
                self.batch_cache_misses,
                self.batch_kernel_work,
                self.batch_work_saved,
            ));
            if !self.instances.is_empty() {
                out.push('\n');
                out.push_str(&self.instance_table().render());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> Vec<Event> {
        vec![
            Event::SolveStart {
                solver: "diagonal",
                rows: 2,
                cols: 3,
                kernel: "sortscan",
                parallelism: "serial".to_string(),
                criterion: "max_abs_change",
            },
            Event::PhaseEnd {
                label: PhaseLabel::RowEquilibration,
                tasks: 2,
                seconds: 0.3,
                task_seconds: vec![0.1, 0.2],
            },
            Event::PhaseEnd {
                label: PhaseLabel::ColumnEquilibration,
                tasks: 3,
                seconds: 0.4,
                task_seconds: vec![0.1, 0.1, 0.1],
            },
            Event::PhaseEnd {
                label: PhaseLabel::ConvergenceCheck,
                tasks: 1,
                seconds: 0.1,
                task_seconds: Vec::new(),
            },
            Event::ConvergenceCheck {
                iteration: 1,
                residual: 1e-9,
                dual_value: Some(2.0),
                criterion: "max_abs_change",
            },
            Event::KernelCounters {
                counters: KernelCounters {
                    subproblems: 5,
                    breakpoints_scanned: 40,
                    quickselect_pivots: 0,
                    boxed_clamps: 0,
                },
            },
            Event::SolveEnd {
                iterations: 1,
                converged: true,
                residual: 1e-9,
                objective: 3.0,
                dual_value: Some(3.0),
                seconds: 0.85,
            },
        ]
    }

    #[test]
    fn aggregates_phases_and_headlines() {
        let s = SolveSummary::from_events(&sample_log());
        assert_eq!(s.solves, 1);
        assert_eq!(s.iterations, 1);
        assert!(s.converged);
        assert_eq!(s.checks, 1);
        assert_eq!(s.phases.len(), 3);
        let row = &s.phases[0];
        assert_eq!(row.label, PhaseLabel::RowEquilibration);
        assert!((row.work_seconds - 0.3).abs() < 1e-12);
        assert!((row.max_task_seconds - 0.2).abs() < 1e-12);
        // The serial check (0.1s, no task vector) over 0.7s total work
        // (work uses task sums: 0.3 row + 0.3 column + 0.1 check).
        assert!((s.serial_fraction() - 0.1 / 0.7).abs() < 1e-9);
        assert_eq!(s.counters.subproblems, 5);
    }

    #[test]
    fn multiple_phase_runs_accumulate() {
        let mut log = sample_log();
        log.extend(sample_log());
        let s = SolveSummary::from_events(&log);
        assert_eq!(s.solves, 2);
        assert_eq!(s.phases[0].count, 2);
        assert!((s.phases[0].work_seconds - 0.6).abs() < 1e-12);
        assert_eq!(s.counters.subproblems, 10);
        // Serial fraction is scale-invariant.
        assert!((s.serial_fraction() - 0.1 / 0.7).abs() < 1e-9);
    }

    #[test]
    fn last_solve_end_wins() {
        let mut log = sample_log();
        log.push(Event::SolveEnd {
            iterations: 7,
            converged: false,
            residual: 0.5,
            objective: 0.0,
            dual_value: None,
            seconds: 2.0,
        });
        let s = SolveSummary::from_events(&log);
        assert_eq!(s.iterations, 7);
        assert!(!s.converged);
        assert_eq!(s.solve_seconds, 2.0);
    }

    #[test]
    fn render_includes_table_and_counters() {
        let text = SolveSummary::from_events(&sample_log()).render();
        assert!(text.contains("iterations: 1"));
        assert!(text.contains("row_equilibration"));
        assert!(text.contains("serial fraction"));
        assert!(text.contains("5 subproblems"));
    }

    #[test]
    fn supervisor_events_aggregate_and_render() {
        let mut log = sample_log();
        log.insert(
            1,
            Event::FallbackTriggered {
                iteration: 1,
                phase: PhaseLabel::RowEquilibration,
                count: 2,
            },
        );
        log.insert(
            2,
            Event::CheckpointWritten {
                iteration: 1,
                path: "/tmp/run.ckpt".to_string(),
            },
        );
        log.insert(
            3,
            Event::SupervisorStop {
                iteration: 1,
                reason: "deadline_exceeded",
            },
        );
        let s = SolveSummary::from_events(&log);
        assert_eq!(s.kernel_fallbacks, 2);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.stop_reason.as_deref(), Some("deadline_exceeded"));
        let text = s.render();
        assert!(text.contains("supervisor stop: deadline_exceeded"));
        assert!(text.contains("kernel fallbacks: 2"));
        assert!(text.contains("checkpoints written: 1"));
        // A clean log renders none of the supervisor lines.
        let clean = SolveSummary::from_events(&sample_log()).render();
        assert!(!clean.contains("supervisor stop"));
        assert!(!clean.contains("fallbacks"));
    }

    #[test]
    fn batch_events_aggregate_and_render() {
        let mut log = sample_log();
        log.insert(
            0,
            Event::BatchStart {
                instances: 3,
                parallelism: "outer".to_string(),
            },
        );
        log.push(Event::BatchInstance {
            index: 0,
            id: "a".to_string(),
            family: Some("f".to_string()),
            cache: "hit",
            kernel_work: 100,
            work_saved: 400,
        });
        log.push(Event::BatchEnd {
            instances: 3,
            converged: 2,
            cache_hits: 1,
            cache_misses: 2,
            kernel_work: 1100,
            work_saved: 400,
            seconds: 1.25,
        });
        let s = SolveSummary::from_events(&log);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batch_instances, 3);
        assert_eq!(s.batch_converged, 2);
        assert_eq!(s.batch_cache_hits, 1);
        assert_eq!(s.batch_cache_misses, 2);
        assert_eq!(s.batch_kernel_work, 1100);
        assert_eq!(s.batch_work_saved, 400);
        let text = s.render();
        assert!(text.contains("batches: 1"), "{text}");
        assert!(text.contains("1 hits, 2 misses"), "{text}");
        assert!(text.contains("(400 saved)"), "{text}");
        // A batch-free log renders no batch lines.
        assert!(!SolveSummary::from_events(&sample_log())
            .render()
            .contains("batches:"));
    }

    #[test]
    fn empty_log_summarizes_to_zeroes() {
        let s = SolveSummary::from_events(&[]);
        assert_eq!(s.solves, 0);
        assert_eq!(s.serial_fraction(), 0.0);
        assert!(s.phases.is_empty());
        assert!(s.render().contains("solves: 0"));
    }
}
