//! Experiment records: one per paper table/figure, written to
//! `results/<id>.md` by the bench binaries so EXPERIMENTS.md can reference
//! stable artifacts.

use crate::table::Table;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A completed experiment: identifier (paper table/figure), rendered
/// tables, and free-form notes (scale, substitutions, observations).
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Stable identifier, e.g. `table1`, `fig5`.
    pub id: String,
    /// Human title, e.g. `Table 1: SEA on large-scale diagonal problems`.
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Notes shown under the tables.
    pub notes: Vec<String>,
}

impl ExperimentRecord {
    /// New empty record.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attach a table.
    pub fn push_table(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Attach a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render the whole record as markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = format!("## {}\n\n", self.title);
        for t in &self.tables {
            out.push_str(&t.render_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("Notes:\n\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }

    /// Print to stdout (plain text) — what the bench binaries do by
    /// default.
    pub fn print(&self) {
        println!("== {} ==", self.title);
        for t in &self.tables {
            println!("{}", t.render());
        }
        for n in &self.notes {
            println!("note: {n}");
        }
    }

    /// Write `results/<id>.md` under `dir`, creating the directory.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save_markdown(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.md", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.render_markdown().as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ExperimentRecord {
        let mut r = ExperimentRecord::new("table9", "Table 9: speedups");
        let mut t = Table::new("speedups", &["N", "S_N"]);
        t.push_row(vec!["2".into(), "1.82".into()]);
        r.push_table(t);
        r.push_note("simulated machine");
        r
    }

    #[test]
    fn renders_markdown_with_notes() {
        let md = record().render_markdown();
        assert!(md.contains("## Table 9"));
        assert!(md.contains("| 2 | 1.82 |"));
        assert!(md.contains("- simulated machine"));
    }

    #[test]
    fn saves_to_results_dir() {
        let dir = std::env::temp_dir().join(format!("sea-report-test-{}", std::process::id()));
        let path = record().save_markdown(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("Table 9"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
