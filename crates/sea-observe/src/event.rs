//! Typed solver events.
//!
//! The event taxonomy mirrors the paper's decomposition of a SEA solve:
//! alternating row/column equilibration *phases* (parallel across
//! subproblems), a *serial* convergence check every `check_every`
//! iterations, and — for the general constrained matrix problem — an outer
//! diagonalization loop around projections. One event per lifecycle
//! transition keeps logs small enough to record every solve while still
//! reconstructing the full per-phase timing breakdown offline.

/// Which solver phase an event belongs to.
///
/// This mirrors `sea_core::PhaseKind` but lives here so the event schema
/// has no dependency on the solver crate (sea-core depends on sea-observe,
/// not the other way around).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseLabel {
    /// Row equilibration: one knapsack subproblem per row, parallel.
    RowEquilibration,
    /// Column equilibration: one knapsack subproblem per column, parallel.
    ColumnEquilibration,
    /// Convergence check: inherently serial in the paper's decomposition.
    ConvergenceCheck,
    /// Projection step of the general (diagonalized) algorithm.
    Projection,
}

impl PhaseLabel {
    /// All labels, in a fixed order (used by metrics and tests).
    pub const ALL: [PhaseLabel; 4] = [
        PhaseLabel::RowEquilibration,
        PhaseLabel::ColumnEquilibration,
        PhaseLabel::ConvergenceCheck,
        PhaseLabel::Projection,
    ];

    /// Stable wire name (`snake_case`).
    pub fn name(self) -> &'static str {
        match self {
            PhaseLabel::RowEquilibration => "row_equilibration",
            PhaseLabel::ColumnEquilibration => "column_equilibration",
            PhaseLabel::ConvergenceCheck => "convergence_check",
            PhaseLabel::Projection => "projection",
        }
    }

    /// Inverse of [`PhaseLabel::name`].
    pub fn parse(s: &str) -> Option<PhaseLabel> {
        PhaseLabel::ALL.into_iter().find(|l| l.name() == s)
    }

    /// Whether the phase is parallel across tasks (rows/columns/chunks).
    pub fn is_parallel(self) -> bool {
        !matches!(self, PhaseLabel::ConvergenceCheck)
    }
}

/// Cumulative kernel-level work counters for one solve.
///
/// These count the arithmetic work *inside* the equilibration kernels, the
/// quantity the paper's per-iteration cost model is written in terms of.
/// All fields are cumulative since `SolveStart`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Knapsack subproblems solved (one per row or column per pass).
    pub subproblems: u64,
    /// Breakpoint segments swept by the sort-scan kernel.
    pub breakpoints_scanned: u64,
    /// Partition rounds performed by the quickselect kernel.
    pub quickselect_pivots: u64,
    /// Entries clamped at a box bound by the boxed (interval) kernels.
    pub boxed_clamps: u64,
}

impl KernelCounters {
    /// Field-wise sum.
    pub fn merged(self, other: KernelCounters) -> KernelCounters {
        KernelCounters {
            subproblems: self.subproblems + other.subproblems,
            breakpoints_scanned: self.breakpoints_scanned + other.breakpoints_scanned,
            quickselect_pivots: self.quickselect_pivots + other.quickselect_pivots,
            boxed_clamps: self.boxed_clamps + other.boxed_clamps,
        }
    }

    /// True when every counter is zero.
    pub fn is_empty(self) -> bool {
        self == KernelCounters::default()
    }

    /// Field-wise saturating difference (`self − earlier`): the work done
    /// between two cumulative snapshots. Saturates at zero so a stale
    /// snapshot never underflows.
    pub fn delta_from(self, earlier: KernelCounters) -> KernelCounters {
        KernelCounters {
            subproblems: self.subproblems.saturating_sub(earlier.subproblems),
            breakpoints_scanned: self
                .breakpoints_scanned
                .saturating_sub(earlier.breakpoints_scanned),
            quickselect_pivots: self
                .quickselect_pivots
                .saturating_sub(earlier.quickselect_pivots),
            boxed_clamps: self.boxed_clamps.saturating_sub(earlier.boxed_clamps),
        }
    }

    /// True when every field of `self` is ≥ the matching field of
    /// `other` — the partial order span well-formedness is stated in
    /// (child counter sums never exceed their parent's).
    pub fn dominates(self, other: KernelCounters) -> bool {
        self.subproblems >= other.subproblems
            && self.breakpoints_scanned >= other.breakpoints_scanned
            && self.quickselect_pivots >= other.quickselect_pivots
            && self.boxed_clamps >= other.boxed_clamps
    }

    /// Total kernel work: breakpoints + pivots + clamps (the quantity the
    /// batch engine and telemetry stream report as `kernel_work`).
    pub fn work(self) -> u64 {
        self.breakpoints_scanned + self.quickselect_pivots + self.boxed_clamps
    }
}

/// A single typed solver event.
///
/// Variants are ordered roughly by when they occur in a solve. Fields that
/// are only meaningful for some solver configurations are `Option`s.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Wire-format header: the event-vocabulary version of the stream.
    ///
    /// Emitted (at most once, first) by writers that opt into headers —
    /// the CLI does; in-process observers and the committed golden
    /// fixtures do not, so pre-versioning logs remain valid streams.
    /// Readers must tolerate its absence and ignore unknown versions.
    Meta {
        /// The event vocabulary version (see `sea_observe::WIRE_VERSION`).
        wire_version: u64,
    },
    /// A solve began.
    SolveStart {
        /// Which driver emitted the event (`"diagonal"`, `"general"`,
        /// `"bounded"`).
        solver: &'static str,
        /// Problem rows.
        rows: usize,
        /// Problem columns.
        cols: usize,
        /// Equilibration kernel name (`"sortscan"` / `"quickselect"`).
        kernel: &'static str,
        /// Parallelism mode label (`"serial"`, `"rayon"`, `"rayon:4"`, ...).
        parallelism: String,
        /// Convergence criterion name.
        criterion: &'static str,
    },
    /// A phase began.
    PhaseStart {
        /// Phase label.
        label: PhaseLabel,
        /// Number of parallel tasks in the phase (1 for serial phases).
        tasks: usize,
    },
    /// A phase finished.
    PhaseEnd {
        /// Phase label.
        label: PhaseLabel,
        /// Number of parallel tasks in the phase.
        tasks: usize,
        /// Wall-clock seconds for the whole phase.
        seconds: f64,
        /// Per-task seconds when the solver recorded them (same vectors
        /// that feed `record_trace`), empty otherwise. This is what lets
        /// an event log round-trip into an `ExecutionTrace`.
        task_seconds: Vec<f64>,
    },
    /// A convergence check ran (every `check_every` iterations).
    ConvergenceCheck {
        /// Inner iteration index (1-based, as reported in solutions).
        iteration: usize,
        /// Residual under the active criterion.
        residual: f64,
        /// Dual objective ζ(λ, μ) when the solver computed it.
        dual_value: Option<f64>,
        /// Criterion name.
        criterion: &'static str,
    },
    /// The multiplier-bound projection shifted dual variables.
    MultiplierBound {
        /// Inner iteration index.
        iteration: usize,
        /// How many multipliers were shifted back into the box.
        shifted: usize,
        /// The configured bound.
        bound: f64,
    },
    /// One outer diagonalization iteration of the general solver finished.
    OuterIteration {
        /// Outer iteration index (1-based).
        iteration: usize,
        /// Inner SEA iterations used in this outer step.
        inner_iterations: usize,
        /// Max-abs change of the matrix iterate across the outer step.
        outer_residual: f64,
    },
    /// Cumulative kernel counters, emitted once before `SolveEnd` when any
    /// counter is nonzero.
    KernelCounters {
        /// The counters.
        counters: KernelCounters,
    },
    /// One or more subproblems fell back from the quickselect kernel to the
    /// sort-scan kernel during a pass (quickselect pathology or non-finite
    /// multiplier).
    FallbackTriggered {
        /// Inner iteration index (1-based).
        iteration: usize,
        /// Which pass the fallback happened in.
        phase: PhaseLabel,
        /// How many subproblems fell back in this pass.
        count: u64,
    },
    /// A crash-safe checkpoint snapshot was written (tmp-then-rename).
    CheckpointWritten {
        /// Inner iteration index the snapshot captures.
        iteration: usize,
        /// Destination path of the snapshot file.
        path: String,
    },
    /// The supervisor stopped the solve before convergence.
    SupervisorStop {
        /// Inner iteration index at which the solve stopped.
        iteration: usize,
        /// Stable stop-reason name (see `sea_core::StopReason::name`).
        reason: &'static str,
    },
    /// A batch solve began (emitted by the `sea-batch` engine before any
    /// per-instance solve lifecycle).
    BatchStart {
        /// How many instances the batch holds.
        instances: usize,
        /// Batch parallelism policy label (`"serial"`, `"outer"`,
        /// `"outer:4"`, `"inner"`, `"inner:2"`, ...).
        parallelism: String,
    },
    /// Warm-start cache outcome for one batch instance, emitted after that
    /// instance's solve lifecycle (the instance events themselves are
    /// replayed in submission order).
    BatchInstance {
        /// Submission index of the instance (0-based).
        index: usize,
        /// Caller-supplied instance id.
        id: String,
        /// Warm-start cache family, when the instance declared one.
        family: Option<String>,
        /// Cache outcome: `"hit"`, `"miss"`, or `"bypass"` (no family or
        /// caching disabled).
        cache: &'static str,
        /// Kernel work spent on this instance (breakpoints + pivots +
        /// clamps), 0 when work measurement is off.
        kernel_work: u64,
        /// Kernel work saved vs the family's cold baseline solve
        /// (`cold_work − kernel_work`, clamped at 0; 0 on miss/bypass).
        work_saved: u64,
    },
    /// A batch solve finished.
    BatchEnd {
        /// Instances solved.
        instances: usize,
        /// How many instances converged.
        converged: usize,
        /// Warm-start cache hits across the batch.
        cache_hits: usize,
        /// Warm-start cache misses across the batch.
        cache_misses: usize,
        /// Total kernel work across instances.
        kernel_work: u64,
        /// Total kernel work saved vs cold baselines.
        work_saved: u64,
        /// Wall-clock seconds for the whole batch.
        seconds: f64,
    },
    /// A solve finished.
    SolveEnd {
        /// Iterations performed (inner iterations for the diagonal solver,
        /// outer iterations for the general one).
        iterations: usize,
        /// Whether the convergence criterion was met.
        converged: bool,
        /// Final residual.
        residual: f64,
        /// Primal objective at the final iterate.
        objective: f64,
        /// Dual objective at the final iterate, when computed.
        dual_value: Option<f64>,
        /// Wall-clock seconds for the whole solve.
        seconds: f64,
    },
}

impl Event {
    /// Stable wire name of the variant (`snake_case`).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Meta { .. } => "meta",
            Event::SolveStart { .. } => "solve_start",
            Event::PhaseStart { .. } => "phase_start",
            Event::PhaseEnd { .. } => "phase_end",
            Event::ConvergenceCheck { .. } => "convergence_check",
            Event::MultiplierBound { .. } => "multiplier_bound",
            Event::OuterIteration { .. } => "outer_iteration",
            Event::KernelCounters { .. } => "kernel_counters",
            Event::FallbackTriggered { .. } => "fallback_triggered",
            Event::CheckpointWritten { .. } => "checkpoint_written",
            Event::SupervisorStop { .. } => "supervisor_stop",
            Event::BatchStart { .. } => "batch_start",
            Event::BatchInstance { .. } => "batch_instance",
            Event::BatchEnd { .. } => "batch_end",
            Event::SolveEnd { .. } => "solve_end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_label_names_round_trip() {
        for label in PhaseLabel::ALL {
            assert_eq!(PhaseLabel::parse(label.name()), Some(label));
        }
        assert_eq!(PhaseLabel::parse("nope"), None);
    }

    #[test]
    fn only_convergence_check_is_serial() {
        for label in PhaseLabel::ALL {
            assert_eq!(label.is_parallel(), label != PhaseLabel::ConvergenceCheck);
        }
    }

    #[test]
    fn counters_merge_field_wise() {
        let a = KernelCounters {
            subproblems: 1,
            breakpoints_scanned: 10,
            quickselect_pivots: 3,
            boxed_clamps: 0,
        };
        let b = KernelCounters {
            subproblems: 2,
            breakpoints_scanned: 5,
            quickselect_pivots: 0,
            boxed_clamps: 7,
        };
        let m = a.merged(b);
        assert_eq!(m.subproblems, 3);
        assert_eq!(m.breakpoints_scanned, 15);
        assert_eq!(m.quickselect_pivots, 3);
        assert_eq!(m.boxed_clamps, 7);
        assert!(KernelCounters::default().is_empty());
        assert!(!m.is_empty());
    }
}
