//! The `Observer` sink trait and the built-in null / in-memory sinks.

use crate::event::Event;

/// An event sink attached to a solver.
///
/// Solvers take `&mut O where O: Observer` generically, so the whole
/// instrumentation path is monomorphized: with [`NullObserver`] (the
/// default), `enabled()` is a `const false`, every `record` call is dead
/// code after inlining, and the steady-state loop stays allocation-free —
/// the zero-overhead guarantee the alloc-audit test enforces.
///
/// Implementations should keep `record` cheap; solvers call it from the
/// serial portion of the loop (never from inside parallel workers), so a
/// sink sees a well-ordered single-threaded event stream.
pub trait Observer {
    /// Whether this sink wants events at all. Solvers use this to skip
    /// event *construction* (which may allocate, e.g. cloning per-task
    /// timing vectors), not just delivery. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Deliver one event.
    fn record(&mut self, event: &Event);
}

/// The default sink: drops everything, statically disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

/// An in-memory sink that buffers every event; the workhorse for tests and
/// for post-solve reporting in one process.
#[derive(Debug, Clone, Default)]
pub struct VecObserver {
    /// The recorded events, in delivery order.
    pub events: Vec<Event>,
}

impl VecObserver {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for VecObserver {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Forwarding: a `&mut O` is itself an observer, so solvers can hand the
/// same sink to nested stages (the general solver lends its observer to
/// each inner diagonal solve).
impl<O: Observer + ?Sized> Observer for &mut O {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }
}

/// Fan-out to two sinks (compose for more). Enabled if either side is.
#[derive(Debug, Default)]
pub struct TeeObserver<A, B> {
    /// First sink.
    pub first: A,
    /// Second sink.
    pub second: B,
}

impl<A: Observer, B: Observer> TeeObserver<A, B> {
    /// Combine two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeObserver { first, second }
    }
}

impl<A: Observer, B: Observer> Observer for TeeObserver<A, B> {
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }

    fn record(&mut self, event: &Event) {
        if self.first.enabled() {
            self.first.record(event);
        }
        if self.second.enabled() {
            self.second.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled() {
        let obs = NullObserver;
        assert!(!obs.enabled());
    }

    #[test]
    fn vec_observer_buffers_in_order() {
        let mut obs = VecObserver::new();
        assert!(obs.enabled());
        obs.record(&Event::PhaseStart {
            label: crate::PhaseLabel::RowEquilibration,
            tasks: 4,
        });
        obs.record(&Event::SolveEnd {
            iterations: 1,
            converged: true,
            residual: 0.0,
            objective: 0.0,
            dual_value: None,
            seconds: 0.0,
        });
        assert_eq!(obs.events.len(), 2);
        assert_eq!(obs.events[0].kind(), "phase_start");
        assert_eq!(obs.events[1].kind(), "solve_end");
    }

    #[test]
    fn tee_observer_fans_out_and_skips_disabled() {
        let mut tee = TeeObserver::new(VecObserver::new(), NullObserver);
        assert!(tee.enabled());
        tee.record(&Event::KernelCounters {
            counters: crate::KernelCounters::default(),
        });
        assert_eq!(tee.first.events.len(), 1);

        let both_null = TeeObserver::new(NullObserver, NullObserver);
        assert!(!both_null.enabled());
    }

    #[test]
    fn mut_reference_forwards() {
        let mut obs = VecObserver::new();
        {
            let via_ref: &mut VecObserver = &mut obs;
            assert!(Observer::enabled(&via_ref));
            via_ref.record(&Event::KernelCounters {
                counters: crate::KernelCounters::default(),
            });
        }
        assert_eq!(obs.events.len(), 1);
    }
}
