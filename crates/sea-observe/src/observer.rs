//! The `Observer` sink trait and the built-in null / in-memory sinks.

use crate::event::{Event, KernelCounters};
use crate::span::SpanKind;
use crate::telemetry::TelemetrySample;

/// An event sink attached to a solver.
///
/// Solvers take `&mut O where O: Observer` generically, so the whole
/// instrumentation path is monomorphized: with [`NullObserver`] (the
/// default), `enabled()` is a `const false`, every `record` call is dead
/// code after inlining, and the steady-state loop stays allocation-free —
/// the zero-overhead guarantee the alloc-audit test enforces.
///
/// Implementations should keep `record` cheap; solvers call it from the
/// serial portion of the loop (never from inside parallel workers), so a
/// sink sees a well-ordered single-threaded event stream.
///
/// ## Span signals
///
/// Beyond discrete events, drivers emit a hierarchical span stream
/// through [`span_open`](Observer::span_open) /
/// [`span_close`](Observer::span_close) /
/// [`span_leaf`](Observer::span_leaf), gated by
/// [`spans_enabled`](Observer::spans_enabled) (default `false`, so the
/// span path also compiles away under [`NullObserver`]). The observer —
/// not the driver — owns the clock, span identity, and nesting stack
/// ([`crate::SpanProfiler`] is the canonical consumer); a driver only
/// signals structure. Counters passed to `span_close` are the *self*
/// attribution of that span — work not already carried by a child span
/// or leaf — so a consumer accumulating children upward reconstructs
/// exact totals. Like `record`, span signals arrive only from serial
/// driver code; parallel shard timings are collected into preallocated
/// sinks by the workers and replayed as `span_leaf` calls afterwards.
pub trait Observer {
    /// Whether this sink wants events at all. Solvers use this to skip
    /// event *construction* (which may allocate, e.g. cloning per-task
    /// timing vectors), not just delivery. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Deliver one event.
    fn record(&mut self, event: &Event);

    /// Whether this sink wants span signals and telemetry samples.
    /// Defaults to `false`: spans are opt-in, unlike events.
    fn spans_enabled(&self) -> bool {
        false
    }

    /// A span of kind `kind` begins now. `index` is the kind-relative
    /// ordinal (epoch number, pass iteration, …) and `tasks` the
    /// parallel task count inside the span (0 when not meaningful).
    fn span_open(&mut self, kind: SpanKind, index: u64, tasks: u64) {
        let _ = (kind, index, tasks);
    }

    /// The innermost open span ends now. `self_counters` is the kernel
    /// work attributed directly to this span, excluding work already
    /// reported by child spans or leaves.
    fn span_close(&mut self, self_counters: &KernelCounters) {
        let _ = self_counters;
    }

    /// A leaf span (shard, batch instance) that was timed off-thread and
    /// is replayed serially. Offsets are nanoseconds relative to the
    /// moment the innermost currently-open span was opened. `detail` is
    /// an optional static annotation (e.g. a warm-start cache outcome);
    /// empty when unused.
    // Leaves are POD replayed on the hot path; a parameter struct would
    // force every no-op implementor to destructure one.
    #[allow(clippy::too_many_arguments)]
    fn span_leaf(
        &mut self,
        kind: SpanKind,
        index: u64,
        rel_start_ns: u64,
        rel_end_ns: u64,
        tasks: u64,
        counters: &KernelCounters,
        detail: &'static str,
    ) {
        let _ = (
            kind,
            index,
            rel_start_ns,
            rel_end_ns,
            tasks,
            counters,
            detail,
        );
    }

    /// Deliver one convergence telemetry sample (per periodic check).
    fn telemetry(&mut self, sample: &TelemetrySample) {
        let _ = sample;
    }
}

/// The default sink: drops everything, statically disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}

    #[inline(always)]
    fn spans_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span_open(&mut self, _kind: SpanKind, _index: u64, _tasks: u64) {}

    #[inline(always)]
    fn span_close(&mut self, _self_counters: &KernelCounters) {}

    #[inline(always)]
    fn span_leaf(
        &mut self,
        _kind: SpanKind,
        _index: u64,
        _rel_start_ns: u64,
        _rel_end_ns: u64,
        _tasks: u64,
        _counters: &KernelCounters,
        _detail: &'static str,
    ) {
    }

    #[inline(always)]
    fn telemetry(&mut self, _sample: &TelemetrySample) {}
}

/// An in-memory sink that buffers every event; the workhorse for tests and
/// for post-solve reporting in one process.
#[derive(Debug, Clone, Default)]
pub struct VecObserver {
    /// The recorded events, in delivery order.
    pub events: Vec<Event>,
}

impl VecObserver {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for VecObserver {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Forwarding: a `&mut O` is itself an observer, so solvers can hand the
/// same sink to nested stages (the general solver lends its observer to
/// each inner diagonal solve).
impl<O: Observer + ?Sized> Observer for &mut O {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }

    fn spans_enabled(&self) -> bool {
        (**self).spans_enabled()
    }

    fn span_open(&mut self, kind: SpanKind, index: u64, tasks: u64) {
        (**self).span_open(kind, index, tasks);
    }

    fn span_close(&mut self, self_counters: &KernelCounters) {
        (**self).span_close(self_counters);
    }

    fn span_leaf(
        &mut self,
        kind: SpanKind,
        index: u64,
        rel_start_ns: u64,
        rel_end_ns: u64,
        tasks: u64,
        counters: &KernelCounters,
        detail: &'static str,
    ) {
        (**self).span_leaf(
            kind,
            index,
            rel_start_ns,
            rel_end_ns,
            tasks,
            counters,
            detail,
        );
    }

    fn telemetry(&mut self, sample: &TelemetrySample) {
        (**self).telemetry(sample);
    }
}

/// Fan-out to two sinks (compose for more). Enabled if either side is.
#[derive(Debug, Default)]
pub struct TeeObserver<A, B> {
    /// First sink.
    pub first: A,
    /// Second sink.
    pub second: B,
}

impl<A: Observer, B: Observer> TeeObserver<A, B> {
    /// Combine two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeObserver { first, second }
    }
}

impl<A: Observer, B: Observer> Observer for TeeObserver<A, B> {
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }

    fn record(&mut self, event: &Event) {
        if self.first.enabled() {
            self.first.record(event);
        }
        if self.second.enabled() {
            self.second.record(event);
        }
    }

    fn spans_enabled(&self) -> bool {
        self.first.spans_enabled() || self.second.spans_enabled()
    }

    fn span_open(&mut self, kind: SpanKind, index: u64, tasks: u64) {
        if self.first.spans_enabled() {
            self.first.span_open(kind, index, tasks);
        }
        if self.second.spans_enabled() {
            self.second.span_open(kind, index, tasks);
        }
    }

    fn span_close(&mut self, self_counters: &KernelCounters) {
        if self.first.spans_enabled() {
            self.first.span_close(self_counters);
        }
        if self.second.spans_enabled() {
            self.second.span_close(self_counters);
        }
    }

    fn span_leaf(
        &mut self,
        kind: SpanKind,
        index: u64,
        rel_start_ns: u64,
        rel_end_ns: u64,
        tasks: u64,
        counters: &KernelCounters,
        detail: &'static str,
    ) {
        if self.first.spans_enabled() {
            self.first.span_leaf(
                kind,
                index,
                rel_start_ns,
                rel_end_ns,
                tasks,
                counters,
                detail,
            );
        }
        if self.second.spans_enabled() {
            self.second.span_leaf(
                kind,
                index,
                rel_start_ns,
                rel_end_ns,
                tasks,
                counters,
                detail,
            );
        }
    }

    fn telemetry(&mut self, sample: &TelemetrySample) {
        if self.first.spans_enabled() {
            self.first.telemetry(sample);
        }
        if self.second.spans_enabled() {
            self.second.telemetry(sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled() {
        let obs = NullObserver;
        assert!(!obs.enabled());
        assert!(!obs.spans_enabled());
    }

    #[test]
    fn vec_observer_buffers_in_order() {
        let mut obs = VecObserver::new();
        assert!(obs.enabled());
        obs.record(&Event::PhaseStart {
            label: crate::PhaseLabel::RowEquilibration,
            tasks: 4,
        });
        obs.record(&Event::SolveEnd {
            iterations: 1,
            converged: true,
            residual: 0.0,
            objective: 0.0,
            dual_value: None,
            seconds: 0.0,
        });
        assert_eq!(obs.events.len(), 2);
        assert_eq!(obs.events[0].kind(), "phase_start");
        assert_eq!(obs.events[1].kind(), "solve_end");
    }

    #[test]
    fn tee_observer_fans_out_and_skips_disabled() {
        let mut tee = TeeObserver::new(VecObserver::new(), NullObserver);
        assert!(tee.enabled());
        tee.record(&Event::KernelCounters {
            counters: crate::KernelCounters::default(),
        });
        assert_eq!(tee.first.events.len(), 1);

        let both_null = TeeObserver::new(NullObserver, NullObserver);
        assert!(!both_null.enabled());
        assert!(!both_null.spans_enabled());
    }

    #[test]
    fn mut_reference_forwards() {
        let mut obs = VecObserver::new();
        {
            let via_ref: &mut VecObserver = &mut obs;
            assert!(Observer::enabled(&via_ref));
            via_ref.record(&Event::KernelCounters {
                counters: crate::KernelCounters::default(),
            });
        }
        assert_eq!(obs.events.len(), 1);
    }

    #[test]
    fn span_hooks_default_to_noops() {
        // VecObserver opts out of spans: the default hooks must be
        // callable without effect.
        let mut obs = VecObserver::new();
        assert!(!obs.spans_enabled());
        obs.span_open(SpanKind::Solve, 0, 1);
        obs.span_close(&KernelCounters::default());
        obs.span_leaf(SpanKind::Shard, 0, 0, 1, 1, &KernelCounters::default(), "");
        obs.telemetry(&TelemetrySample::zeroed());
        assert!(obs.events.is_empty());
    }

    #[test]
    fn tee_forwards_spans_to_enabled_sides_only() {
        let mut tee = TeeObserver::new(crate::SpanProfiler::new(), NullObserver);
        assert!(tee.spans_enabled());
        tee.span_open(SpanKind::Solve, 0, 1);
        tee.span_close(&KernelCounters::default());
        assert_eq!(tee.first.spans().len(), 1);
    }
}
