//! Hierarchical span profiling: ring-buffered span records, adaptive
//! sampling, and chrome-trace / flamegraph exports.
//!
//! Drivers signal span *structure* through the [`crate::Observer`] span
//! hooks; [`SpanProfiler`] owns everything stateful — the monotone
//! clock, span identity, the nesting stack, and a preallocated ring
//! buffer of [`SpanRecord`]s — so the signalling side stays trivially
//! cheap and allocation-free. Counters delivered at `span_close` are
//! the span's *self* attribution; the profiler accumulates child
//! counters into parents as spans close, so every recorded span carries
//! its exact subtree total and child sums never exceed their parent.
//!
//! ## Sampling policy
//!
//! Solve, Batch, Epoch, and Instance spans are always recorded. The
//! finer-grained spans inside an epoch (passes, checks, shards) are
//! recorded for every epoch until the ring is three-quarters full, then
//! for every 2nd epoch, every 4th, and so on — each time the high-water
//! mark is hit the epoch stride doubles. Suppressed spans still fold
//! their counters into their parent, so attribution stays exact; only
//! the per-span timing detail is thinned. When the ring nevertheless
//! fills, the oldest records are overwritten and counted in
//! [`SpanProfiler::dropped`].

use std::time::Instant;

use crate::event::{Event, KernelCounters};
use crate::json::JsonValue;
use crate::observer::Observer;
use crate::telemetry::{ConvergenceEstimator, EtaEstimate, TelemetryBuffer, TelemetrySample};

/// What a span measures. The hierarchy is Solve → Epoch →
/// RowPass/ColPass/Check/Projection → Shard, plus Batch → Instance
/// around whole solves in `sea-batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One whole solve (any driver). Nested under an Epoch when the
    /// general driver runs inner diagonal solves.
    Solve,
    /// One iteration of a driver's main loop (inner iteration for the
    /// diagonal/bounded drivers, outer diagonalization step for the
    /// general driver).
    Epoch,
    /// A row equilibration pass.
    RowPass,
    /// A column equilibration pass.
    ColPass,
    /// A serial convergence check.
    Check,
    /// A projection step of the general driver.
    Projection,
    /// One shard of a parallel pass (leaf; timed by the worker).
    Shard,
    /// A whole multi-instance batch solve.
    Batch,
    /// One batch instance (leaf; timed by the batch worker).
    Instance,
}

impl SpanKind {
    /// All kinds, in a fixed order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::Solve,
        SpanKind::Epoch,
        SpanKind::RowPass,
        SpanKind::ColPass,
        SpanKind::Check,
        SpanKind::Projection,
        SpanKind::Shard,
        SpanKind::Batch,
        SpanKind::Instance,
    ];

    /// Stable wire name (`snake_case`), used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Solve => "solve",
            SpanKind::Epoch => "epoch",
            SpanKind::RowPass => "row_pass",
            SpanKind::ColPass => "col_pass",
            SpanKind::Check => "check",
            SpanKind::Projection => "projection",
            SpanKind::Shard => "shard",
            SpanKind::Batch => "batch",
            SpanKind::Instance => "instance",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn parse(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether this kind is always recorded regardless of the adaptive
    /// epoch stride (the coarse skeleton of the trace).
    fn always_recorded(self) -> bool {
        matches!(
            self,
            SpanKind::Solve | SpanKind::Batch | SpanKind::Epoch | SpanKind::Instance
        )
    }

    /// Whether the span's wall time is serial on the solve's critical
    /// path (no internal parallelism).
    pub fn is_serial(self) -> bool {
        matches!(self, SpanKind::Check | SpanKind::Shard | SpanKind::Instance)
    }
}

/// One closed span. `Copy`, fixed-size, and free of heap data so the
/// ring buffer never allocates while recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Preorder id: a parent's id is always smaller than its children's.
    pub id: u32,
    /// Parent span id, or [`SpanRecord::NO_PARENT`] for roots.
    pub parent: u32,
    /// What the span measures.
    pub kind: SpanKind,
    /// Kind-relative ordinal (epoch number, shard index, …).
    pub index: u64,
    /// Start offset in nanoseconds from the profiler's epoch.
    pub start_ns: u64,
    /// End offset in nanoseconds from the profiler's epoch.
    pub end_ns: u64,
    /// Parallel task count inside the span (0 when not meaningful).
    pub tasks: u64,
    /// Kernel work attributed to the span's whole subtree (self plus
    /// accumulated children — exact even when child records were
    /// sampled out).
    pub counters: KernelCounters,
    /// Optional static annotation (e.g. warm-start cache outcome for
    /// Instance leaves); `""` when unused.
    pub detail: &'static str,
}

impl SpanRecord {
    /// Sentinel parent id for root spans.
    pub const NO_PARENT: u32 = u32::MAX;

    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// An open span on the profiler stack.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    id: u32,
    kind: SpanKind,
    index: u64,
    tasks: u64,
    start_ns: u64,
    /// Counters accumulated from already-closed children and leaves.
    children: KernelCounters,
    /// Whether this span's record survives sampling.
    record: bool,
}

/// Default ring capacity (records). 64 bytes per record → 4 MiB.
const DEFAULT_SPAN_CAPACITY: usize = 65_536;
/// Default telemetry buffer capacity (samples).
const DEFAULT_TELEMETRY_CAPACITY: usize = 4_096;
/// Maximum nesting depth tracked. Deeper opens are counted and dropped.
const MAX_DEPTH: usize = 64;
/// Ring occupancy (in quarters) at which the epoch stride doubles.
const HIGH_WATER_QUARTERS: usize = 3;

/// The span-assembling observer: records driver span signals into a
/// preallocated ring buffer and convergence telemetry into a bounded
/// sample buffer. See the module docs for the sampling policy.
///
/// `enabled()` is `false`: the profiler consumes only span signals and
/// telemetry, so drivers skip discrete-event construction entirely
/// (keeping the span-enabled solve loop allocation-free). Compose with
/// [`crate::TeeObserver`] to collect events alongside spans.
#[derive(Debug)]
pub struct SpanProfiler {
    epoch_instant: Instant,
    ring: Vec<SpanRecord>,
    capacity: usize,
    /// Index of the oldest record when the ring has wrapped.
    head: usize,
    dropped: u64,
    next_id: u32,
    stack: Vec<OpenSpan>,
    /// Opens beyond `MAX_DEPTH`, awaiting their matching closes.
    overflow: u64,
    /// Record sub-epoch spans only every `epoch_stride`-th epoch.
    epoch_stride: u64,
    epochs_seen: u64,
    /// Sampling decision for the innermost Epoch currently open.
    epoch_recording: bool,
    telemetry: TelemetryBuffer,
}

impl Default for SpanProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanProfiler {
    /// A profiler with the default span-ring and telemetry capacities.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY, DEFAULT_TELEMETRY_CAPACITY)
    }

    /// A profiler retaining at most `spans` records and
    /// `telemetry_samples` telemetry samples (minimums 16 / 4).
    pub fn with_capacity(spans: usize, telemetry_samples: usize) -> Self {
        let capacity = spans.max(16);
        SpanProfiler {
            epoch_instant: Instant::now(),
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
            next_id: 0,
            stack: Vec::with_capacity(MAX_DEPTH),
            overflow: 0,
            epoch_stride: 1,
            epochs_seen: 0,
            epoch_recording: true,
            telemetry: TelemetryBuffer::with_capacity(telemetry_samples),
        }
    }

    /// Nanoseconds since the profiler was created.
    fn now_ns(&self) -> u64 {
        let elapsed = self.epoch_instant.elapsed();
        elapsed
            .as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(elapsed.subsec_nanos()))
    }

    fn push_record(&mut self, record: SpanRecord) {
        if self.ring.len() < self.capacity {
            self.ring.push(record);
        } else {
            // Overwrite the oldest record in place — no allocation.
            self.ring[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Ring occupancy check driving stride adaptation.
    fn over_high_water(&self) -> bool {
        self.ring.len() >= self.capacity / 4 * HIGH_WATER_QUARTERS
    }

    /// Records dropped because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The current adaptive epoch stride (1 = record every epoch).
    pub fn epoch_stride(&self) -> u64 {
        self.epoch_stride
    }

    /// The recorded spans, oldest first. Spans appear in *close* order
    /// (children before parents); ids are preorder (parents smaller).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// The retained telemetry samples, in arrival order.
    pub fn telemetry_samples(&self) -> &[TelemetrySample] {
        self.telemetry.samples()
    }

    /// Convergence-rate ETA to `target` from the retained telemetry.
    pub fn eta(&self, target: f64) -> Option<EtaEstimate> {
        ConvergenceEstimator::estimate(self.telemetry.samples(), target)
    }

    /// Clear all recorded spans and telemetry, keeping capacities (for
    /// reusing one profiler across benchmark repetitions).
    pub fn reset(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.dropped = 0;
        self.next_id = 0;
        self.stack.clear();
        self.overflow = 0;
        self.epoch_stride = 1;
        self.epochs_seen = 0;
        self.epoch_recording = true;
        self.telemetry.clear();
        self.epoch_instant = Instant::now();
    }
}

impl Observer for SpanProfiler {
    /// The profiler consumes span signals, not discrete events — this
    /// keeps event construction (which may allocate) disabled.
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &Event) {}

    fn spans_enabled(&self) -> bool {
        true
    }

    fn span_open(&mut self, kind: SpanKind, index: u64, tasks: u64) {
        if self.stack.len() >= MAX_DEPTH {
            self.overflow += 1;
            return;
        }
        let record = if kind == SpanKind::Epoch {
            // Sampling decision point: one per epoch.
            let recording = self.epochs_seen.is_multiple_of(self.epoch_stride);
            self.epochs_seen += 1;
            if recording && self.over_high_water() && self.epoch_stride < u64::MAX / 2 {
                self.epoch_stride *= 2;
            }
            self.epoch_recording = recording;
            true
        } else if kind.always_recorded() {
            true
        } else {
            self.epoch_recording
        };
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.stack.push(OpenSpan {
            id,
            kind,
            index,
            tasks,
            start_ns: self.now_ns(),
            children: KernelCounters::default(),
            record,
        });
    }

    fn span_close(&mut self, self_counters: &KernelCounters) {
        if self.overflow > 0 {
            self.overflow -= 1;
            return;
        }
        let Some(open) = self.stack.pop() else {
            return;
        };
        let total = open.children.merged(*self_counters);
        let end_ns = self.now_ns();
        let parent = match self.stack.last_mut() {
            Some(p) => {
                p.children = p.children.merged(total);
                p.id
            }
            None => SpanRecord::NO_PARENT,
        };
        if open.kind == SpanKind::Epoch {
            // Leaving an epoch: fine-grained recording resumes for any
            // enclosing structure (the general driver's outer epochs).
            self.epoch_recording = true;
        }
        if open.record {
            self.push_record(SpanRecord {
                id: open.id,
                parent,
                kind: open.kind,
                index: open.index,
                start_ns: open.start_ns,
                end_ns,
                tasks: open.tasks,
                counters: total,
                detail: "",
            });
        }
    }

    fn span_leaf(
        &mut self,
        kind: SpanKind,
        index: u64,
        rel_start_ns: u64,
        rel_end_ns: u64,
        tasks: u64,
        counters: &KernelCounters,
        detail: &'static str,
    ) {
        let (parent_id, base_ns, record_parent) = match self.stack.last_mut() {
            Some(p) => {
                p.children = p.children.merged(*counters);
                (p.id, p.start_ns, p.record)
            }
            None => (SpanRecord::NO_PARENT, 0, true),
        };
        let record = record_parent && (kind.always_recorded() || self.epoch_recording);
        if !record {
            return;
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.push_record(SpanRecord {
            id,
            parent: parent_id,
            kind,
            index,
            start_ns: base_ns.saturating_add(rel_start_ns),
            end_ns: base_ns.saturating_add(rel_end_ns),
            tasks,
            counters: *counters,
            detail,
        });
    }

    fn telemetry(&mut self, sample: &TelemetrySample) {
        self.telemetry.push(*sample);
    }
}

/// A span parsed back from a chrome-trace export. Owned (detail is a
/// `String`), unlike the `Copy` in-process [`SpanRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    /// Span id.
    pub id: u64,
    /// Parent span id, when the span has one.
    pub parent: Option<u64>,
    /// Span kind.
    pub kind: SpanKind,
    /// Kind-relative ordinal.
    pub index: u64,
    /// Start offset, nanoseconds.
    pub start_ns: u64,
    /// End offset, nanoseconds.
    pub end_ns: u64,
    /// Parallel task count.
    pub tasks: u64,
    /// Subtree kernel counters.
    pub counters: KernelCounters,
    /// Annotation (e.g. cache outcome), empty when unused.
    pub detail: String,
}

impl ParsedSpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Convert to the in-process record form (drops `detail`).
    pub fn to_record(&self) -> SpanRecord {
        SpanRecord {
            id: self.id as u32,
            parent: self.parent.map_or(SpanRecord::NO_PARENT, |p| p as u32),
            kind: self.kind,
            index: self.index,
            start_ns: self.start_ns,
            end_ns: self.end_ns,
            tasks: self.tasks,
            counters: self.counters,
            detail: "",
        }
    }
}

/// Build a chrome-trace (`chrome://tracing` / Perfetto) JSON document
/// from recorded spans. Timestamps/durations are microseconds as the
/// format requires; span identity, nesting, ordinals, and kernel
/// counters ride in `args` so [`parse_chrome_trace`] can round-trip the
/// document back into spans.
pub fn chrome_trace(spans: &[SpanRecord], dropped: u64) -> JsonValue {
    let mut events = Vec::with_capacity(spans.len());
    for s in spans {
        let mut args = vec![
            ("id".to_string(), JsonValue::Number(s.id as f64)),
            (
                "parent".to_string(),
                if s.parent == SpanRecord::NO_PARENT {
                    JsonValue::Null
                } else {
                    JsonValue::Number(s.parent as f64)
                },
            ),
            ("index".to_string(), JsonValue::Number(s.index as f64)),
            ("tasks".to_string(), JsonValue::Number(s.tasks as f64)),
            (
                "subproblems".to_string(),
                JsonValue::Number(s.counters.subproblems as f64),
            ),
            (
                "breakpoints_scanned".to_string(),
                JsonValue::Number(s.counters.breakpoints_scanned as f64),
            ),
            (
                "quickselect_pivots".to_string(),
                JsonValue::Number(s.counters.quickselect_pivots as f64),
            ),
            (
                "boxed_clamps".to_string(),
                JsonValue::Number(s.counters.boxed_clamps as f64),
            ),
        ];
        if !s.detail.is_empty() {
            args.push((
                "detail".to_string(),
                JsonValue::String(s.detail.to_string()),
            ));
        }
        events.push(JsonValue::Object(vec![
            (
                "name".to_string(),
                JsonValue::String(s.kind.name().to_string()),
            ),
            ("cat".to_string(), JsonValue::String("sea".to_string())),
            ("ph".to_string(), JsonValue::String("X".to_string())),
            (
                "ts".to_string(),
                JsonValue::Number(s.start_ns as f64 / 1_000.0),
            ),
            (
                "dur".to_string(),
                JsonValue::Number(s.duration_ns() as f64 / 1_000.0),
            ),
            ("pid".to_string(), JsonValue::Number(1.0)),
            ("tid".to_string(), JsonValue::Number(1.0)),
            ("args".to_string(), JsonValue::Object(args)),
        ]));
    }
    JsonValue::Object(vec![
        ("traceEvents".to_string(), JsonValue::Array(events)),
        (
            "displayTimeUnit".to_string(),
            JsonValue::String("ms".to_string()),
        ),
        (
            "otherData".to_string(),
            JsonValue::Object(vec![
                (
                    "producer".to_string(),
                    JsonValue::String("sea-observe".to_string()),
                ),
                (
                    "wire_version".to_string(),
                    JsonValue::Number(crate::jsonl::WIRE_VERSION as f64),
                ),
                (
                    "dropped_spans".to_string(),
                    JsonValue::Number(dropped as f64),
                ),
            ]),
        ),
    ])
}

/// Parse a chrome-trace document produced by [`chrome_trace`] back into
/// spans (duration events of category `"sea"` only; other events are
/// ignored so externally merged traces still load).
pub fn parse_chrome_trace(doc: &JsonValue) -> Result<Vec<ParsedSpan>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let cat = ev.get("cat").and_then(|v| v.as_str()).unwrap_or("");
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        if cat != "sea" || ph != "X" {
            continue;
        }
        let fail = |what: &str| format!("traceEvents[{i}]: {what}");
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| fail("missing name"))?;
        let kind = SpanKind::parse(name).ok_or_else(|| fail("unknown span kind"))?;
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| fail("missing ts"))?;
        let dur = ev
            .get("dur")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| fail("missing dur"))?;
        let args = ev.get("args").ok_or_else(|| fail("missing args"))?;
        let id = args
            .get("id")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| fail("missing args.id"))?;
        let parent = match args.get("parent") {
            Some(JsonValue::Null) | None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| fail("bad args.parent"))?),
        };
        let get_u64 = |key: &str| args.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
        let start_ns = (ts * 1_000.0).round().max(0.0) as u64;
        let end_ns = start_ns + (dur * 1_000.0).round().max(0.0) as u64;
        out.push(ParsedSpan {
            id,
            parent,
            kind,
            index: get_u64("index"),
            start_ns,
            end_ns,
            tasks: get_u64("tasks"),
            counters: KernelCounters {
                subproblems: get_u64("subproblems"),
                breakpoints_scanned: get_u64("breakpoints_scanned"),
                quickselect_pivots: get_u64("quickselect_pivots"),
                boxed_clamps: get_u64("boxed_clamps"),
            },
            detail: args
                .get("detail")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
        });
    }
    Ok(out)
}

/// Render spans as folded stacks (`path;to;frame <self-µs>` lines) for
/// flamegraph tools. Self time is span duration minus recorded child
/// durations; identical paths are aggregated and lines sorted, so the
/// output is deterministic.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    // child duration totals per parent id
    let mut child_ns: Vec<(u32, u64)> = Vec::new();
    for s in spans {
        if s.parent == SpanRecord::NO_PARENT {
            continue;
        }
        match child_ns.iter_mut().find(|(id, _)| *id == s.parent) {
            Some((_, total)) => *total = total.saturating_add(s.duration_ns()),
            None => child_ns.push((s.parent, s.duration_ns())),
        }
    }
    let path_of = |span: &SpanRecord| -> String {
        // Walk parents to the root; spans are few, linear scans are fine.
        let mut names: Vec<&'static str> = vec![span.kind.name()];
        let mut cur = span.parent;
        while cur != SpanRecord::NO_PARENT {
            match spans.iter().find(|s| s.id == cur) {
                Some(p) => {
                    names.push(p.kind.name());
                    cur = p.parent;
                }
                None => break,
            }
        }
        names.reverse();
        names.join(";")
    };
    let mut folded: Vec<(String, u64)> = Vec::new();
    for s in spans {
        let children = child_ns
            .iter()
            .find(|(id, _)| *id == s.id)
            .map_or(0, |(_, total)| *total);
        let self_us = s.duration_ns().saturating_sub(children) / 1_000;
        if self_us == 0 {
            continue;
        }
        let path = path_of(s);
        match folded.iter_mut().find(|(p, _)| *p == path) {
            Some((_, total)) => *total += self_us,
            None => folded.push((path, self_us)),
        }
    }
    folded.sort();
    let mut out = String::new();
    for (path, us) in folded {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(subproblems: u64, breakpoints: u64) -> KernelCounters {
        KernelCounters {
            subproblems,
            breakpoints_scanned: breakpoints,
            quickselect_pivots: 0,
            boxed_clamps: 0,
        }
    }

    /// Drive a tiny synthetic solve shape through the profiler.
    fn synthetic_solve(prof: &mut SpanProfiler, epochs: u64) {
        prof.span_open(SpanKind::Solve, 0, 8);
        for t in 0..epochs {
            prof.span_open(SpanKind::Epoch, t, 0);
            prof.span_open(SpanKind::RowPass, t, 4);
            prof.span_leaf(SpanKind::Shard, 0, 0, 10, 2, &counters(2, 20), "");
            prof.span_leaf(SpanKind::Shard, 1, 0, 12, 2, &counters(2, 24), "");
            prof.span_close(&KernelCounters::default());
            prof.span_open(SpanKind::Check, t, 1);
            prof.span_close(&KernelCounters::default());
            prof.span_close(&KernelCounters::default());
        }
        prof.span_close(&KernelCounters::default());
    }

    #[test]
    fn profiler_accumulates_children_into_parents() {
        let mut prof = SpanProfiler::new();
        synthetic_solve(&mut prof, 1);
        let spans = prof.spans();
        let solve = spans
            .iter()
            .find(|s| s.kind == SpanKind::Solve)
            .expect("solve span");
        let pass = spans
            .iter()
            .find(|s| s.kind == SpanKind::RowPass)
            .expect("pass span");
        assert_eq!(pass.counters, counters(4, 44));
        assert_eq!(solve.counters, counters(4, 44));
        assert_eq!(solve.parent, SpanRecord::NO_PARENT);
        // Preorder ids: parents smaller than children.
        for s in &spans {
            if s.parent != SpanRecord::NO_PARENT {
                assert!(s.parent < s.id, "parent id {} < id {}", s.parent, s.id);
            }
        }
    }

    #[test]
    fn sampling_thins_sub_epoch_spans_but_keeps_attribution() {
        // Tiny ring: 16 records. Many epochs force stride adaptation.
        let mut prof = SpanProfiler::with_capacity(16, 16);
        synthetic_solve(&mut prof, 64);
        assert!(prof.epoch_stride() > 1, "stride adapted");
        let spans = prof.spans();
        let solve = spans.iter().find(|s| s.kind == SpanKind::Solve);
        // Solve closes last so it is never overwritten by later records.
        let solve = solve.expect("solve span survives");
        // Attribution stays exact despite suppressed shard leaves:
        // 64 epochs × 2 shards × (2 subproblems, 20/24 breakpoints).
        assert_eq!(solve.counters, counters(256, 64 * 44));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut prof = SpanProfiler::with_capacity(16, 16);
        // Flat leaves at the root: always recorded, no sampling.
        for i in 0..40u64 {
            prof.span_leaf(
                SpanKind::Instance,
                i,
                0,
                1,
                1,
                &KernelCounters::default(),
                "",
            );
        }
        let spans = prof.spans();
        assert_eq!(spans.len(), 16);
        assert_eq!(prof.dropped(), 24);
        // Oldest-first order preserved across the wrap.
        let idx: Vec<u64> = spans.iter().map(|s| s.index).collect();
        assert_eq!(idx, (24..40).collect::<Vec<u64>>());
    }

    #[test]
    fn unbalanced_close_is_ignored() {
        let mut prof = SpanProfiler::new();
        prof.span_close(&KernelCounters::default());
        assert!(prof.spans().is_empty());
    }

    #[test]
    fn chrome_trace_round_trips() {
        let mut prof = SpanProfiler::new();
        synthetic_solve(&mut prof, 2);
        let spans = prof.spans();
        let doc = chrome_trace(&spans, prof.dropped());
        let text = doc.render();
        let parsed_doc = crate::json::parse(&text).expect("parse trace json");
        let parsed = parse_chrome_trace(&parsed_doc).expect("parse spans");
        assert_eq!(parsed.len(), spans.len());
        for (orig, back) in spans.iter().zip(&parsed) {
            assert_eq!(back.id, orig.id as u64);
            assert_eq!(back.kind, orig.kind);
            assert_eq!(back.index, orig.index);
            assert_eq!(back.tasks, orig.tasks);
            assert_eq!(back.counters, orig.counters);
            let parent = back.to_record().parent;
            assert_eq!(parent, orig.parent);
            // µs rounding: within 1µs of the original nanosecond times.
            assert!(back.start_ns.abs_diff(orig.start_ns) <= 1_000);
            assert!(back.end_ns.abs_diff(orig.end_ns) <= 1_000);
        }
    }

    #[test]
    fn folded_stacks_aggregate_self_time() {
        let spans = vec![
            SpanRecord {
                id: 0,
                parent: SpanRecord::NO_PARENT,
                kind: SpanKind::Solve,
                index: 0,
                start_ns: 0,
                end_ns: 10_000_000,
                tasks: 0,
                counters: KernelCounters::default(),
                detail: "",
            },
            SpanRecord {
                id: 1,
                parent: 0,
                kind: SpanKind::Epoch,
                index: 0,
                start_ns: 0,
                end_ns: 4_000_000,
                tasks: 0,
                counters: KernelCounters::default(),
                detail: "",
            },
            SpanRecord {
                id: 2,
                parent: 0,
                kind: SpanKind::Epoch,
                index: 1,
                start_ns: 4_000_000,
                end_ns: 8_000_000,
                tasks: 0,
                counters: KernelCounters::default(),
                detail: "",
            },
        ];
        let folded = folded_stacks(&spans);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["solve 2000", "solve;epoch 8000"]);
    }

    #[test]
    fn telemetry_flows_through_the_profiler() {
        let mut prof = SpanProfiler::new();
        for k in 0..6u64 {
            prof.telemetry(&TelemetrySample {
                iteration: k,
                seconds: k as f64,
                residual: 0.5f64.powi(k as i32),
                dual_value: f64::NAN,
                kernel_work: k * 100,
                active_set: 50,
            });
        }
        assert_eq!(prof.telemetry_samples().len(), 6);
        let eta = prof.eta(1e-12).expect("eta");
        assert!((eta.rate - 0.5).abs() < 1e-9);
    }
}
