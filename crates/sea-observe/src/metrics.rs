//! In-memory metrics registry rendering the Prometheus text exposition
//! format, and a `MetricsObserver` that aggregates solver events into it.
//!
//! Exposition rules implemented (per the Prometheus text-format spec):
//! one `# HELP` / `# TYPE` header per metric family; families rendered in
//! registration order but *series within a family sorted by label set*;
//! label values escaped (`\\`, `\"`, `\n`); HELP text escaped (`\\`,
//! `\n`); histograms as cumulative `_bucket{le=...}` series ending in
//! `le="+Inf"` plus `_sum` and `_count`; non-finite sample values as
//! `+Inf` / `-Inf` / `NaN`.

use std::fmt::Write as _;

use crate::event::{Event, KernelCounters, PhaseLabel};
use crate::observer::Observer;
use crate::span::SpanKind;

/// A label set: `(name, value)` pairs, stored sorted by name.
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricType {
    Counter,
    Gauge,
    Histogram,
}

impl MetricType {
    fn name(self) -> &'static str {
        match self {
            MetricType::Counter => "counter",
            MetricType::Gauge => "gauge",
            MetricType::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `counts[i]` pairs
    /// with `bounds[i]`, and the final slot is the overflow (+Inf) bucket.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            total: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.total += 1;
    }
}

#[derive(Debug, Clone)]
enum Sample {
    Scalar(f64),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Family {
    name: String,
    help: String,
    kind: MetricType,
    /// Series keyed by sorted label set; kept sorted by key for stable
    /// exposition output.
    series: Vec<(Labels, Sample)>,
}

impl Family {
    fn series_mut(&mut self, labels: Labels) -> &mut Sample {
        let labels = sorted_labels(labels);
        match self.series.binary_search_by(|(k, _)| k.cmp(&labels)) {
            Ok(i) => &mut self.series[i].1,
            Err(i) => {
                let sample = match self.kind {
                    MetricType::Histogram => {
                        unreachable!("histogram series created via observe()")
                    }
                    _ => Sample::Scalar(0.0),
                };
                self.series.insert(i, (labels, sample));
                &mut self.series[i].1
            }
        }
    }
}

fn sorted_labels(mut labels: Labels) -> Labels {
    labels.sort();
    labels
}

/// A registry of counter / gauge / histogram families.
///
/// Families render in registration order; series within a family render
/// sorted by label set, per the exposition-format convention.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn family_mut(&mut self, name: &str, help: &str, kind: MetricType) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert_eq!(
                self.families[i].kind, kind,
                "metric {name:?} re-registered with a different type"
            );
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: Vec::new(),
        });
        self.families.last_mut().unwrap()
    }

    /// Add `delta` (must be >= 0) to a counter series.
    pub fn counter_add(&mut self, name: &str, help: &str, labels: Labels, delta: f64) {
        debug_assert!(delta >= 0.0, "counters only go up");
        let sample = self
            .family_mut(name, help, MetricType::Counter)
            .series_mut(labels);
        if let Sample::Scalar(v) = sample {
            *v += delta;
        }
    }

    /// Set a gauge series to `value`.
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: Labels, value: f64) {
        let sample = self
            .family_mut(name, help, MetricType::Gauge)
            .series_mut(labels);
        if let Sample::Scalar(v) = sample {
            *v = value;
        }
    }

    /// Record one observation in a histogram series. `bounds` fixes the
    /// finite bucket upper bounds on first use of the series (later calls
    /// may pass the same or empty bounds).
    pub fn histogram_observe(
        &mut self,
        name: &str,
        help: &str,
        labels: Labels,
        bounds: &[f64],
        value: f64,
    ) {
        let family = self.family_mut(name, help, MetricType::Histogram);
        let labels = sorted_labels(labels);
        let idx = match family.series.binary_search_by(|(k, _)| k.cmp(&labels)) {
            Ok(i) => i,
            Err(i) => {
                family.series.insert(
                    i,
                    (labels, Sample::Histogram(Histogram::new(bounds.to_vec()))),
                );
                i
            }
        };
        if let Sample::Histogram(h) = &mut family.series[idx].1 {
            h.observe(value);
        }
    }

    /// Render the whole registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.name());
            for (labels, sample) in &family.series {
                match sample {
                    Sample::Scalar(v) => {
                        write_sample(&mut out, &family.name, "", labels, None, *v);
                    }
                    Sample::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bound) in h.bounds.iter().enumerate() {
                            cumulative += h.counts[i];
                            write_sample(
                                &mut out,
                                &family.name,
                                "_bucket",
                                labels,
                                Some(format_number(*bound)),
                                cumulative as f64,
                            );
                        }
                        cumulative += h.counts[h.bounds.len()];
                        write_sample(
                            &mut out,
                            &family.name,
                            "_bucket",
                            labels,
                            Some("+Inf".to_string()),
                            cumulative as f64,
                        );
                        write_sample(&mut out, &family.name, "_sum", labels, None, h.sum);
                        write_sample(
                            &mut out,
                            &family.name,
                            "_count",
                            labels,
                            None,
                            h.total as f64,
                        );
                    }
                }
            }
        }
        out
    }
}

fn write_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &Labels,
    le: Option<String>,
    value: f64,
) {
    out.push_str(name);
    out.push_str(suffix);
    let has_labels = !labels.is_empty() || le.is_some();
    if has_labels {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}=\"{}\"", k, escape_label_value(v));
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "le=\"{le}\"");
        }
        out.push('}');
    }
    let _ = writeln!(out, " {}", format_number(value));
}

fn format_number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Default bucket bounds (seconds) for phase-duration histograms: covers
/// microsecond knapsack passes through multi-second large solves.
pub const PHASE_SECONDS_BUCKETS: [f64; 10] =
    [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0];

/// Bucket bounds (seconds) for fine-grained shard / subproblem latency
/// histograms: individual knapsack subproblems run in nanoseconds to
/// microseconds, shards in microseconds to milliseconds.
pub const TASK_SECONDS_BUCKETS: [f64; 10] =
    [1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0];

/// An observer that aggregates the event stream into a
/// [`MetricsRegistry`], ready to render after the solve.
#[derive(Debug, Default)]
pub struct MetricsObserver {
    /// The registry being populated.
    pub registry: MetricsRegistry,
}

impl MetricsObserver {
    /// An observer over an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Render the aggregated metrics (Prometheus text exposition format).
    pub fn render(&self) -> String {
        self.registry.render()
    }

    fn phase_labels(label: PhaseLabel) -> Labels {
        vec![("phase".to_string(), label.name().to_string())]
    }
}

impl Observer for MetricsObserver {
    fn record(&mut self, event: &Event) {
        let reg = &mut self.registry;
        match event {
            Event::Meta { .. } => {}
            Event::SolveStart { solver, kernel, .. } => {
                reg.counter_add(
                    "sea_solves_total",
                    "Solves started, by driver and kernel.",
                    vec![
                        ("solver".to_string(), (*solver).to_string()),
                        ("kernel".to_string(), (*kernel).to_string()),
                    ],
                    1.0,
                );
            }
            Event::PhaseStart { .. } => {}
            Event::PhaseEnd {
                label,
                seconds,
                task_seconds,
                ..
            } => {
                for &task in task_seconds {
                    reg.histogram_observe(
                        "sea_subproblem_seconds",
                        "Per-task (knapsack subproblem) latency distribution.",
                        Self::phase_labels(*label),
                        &TASK_SECONDS_BUCKETS,
                        task,
                    );
                }
                reg.counter_add(
                    "sea_phase_total",
                    "Solver phases executed, by phase.",
                    Self::phase_labels(*label),
                    1.0,
                );
                reg.counter_add(
                    "sea_phase_seconds_total",
                    "Cumulative wall-clock seconds spent per phase.",
                    Self::phase_labels(*label),
                    seconds.max(0.0),
                );
                reg.histogram_observe(
                    "sea_phase_seconds",
                    "Per-phase wall-clock duration distribution.",
                    Self::phase_labels(*label),
                    &PHASE_SECONDS_BUCKETS,
                    *seconds,
                );
            }
            Event::ConvergenceCheck {
                residual,
                dual_value,
                ..
            } => {
                reg.counter_add(
                    "sea_convergence_checks_total",
                    "Convergence checks performed.",
                    vec![],
                    1.0,
                );
                reg.gauge_set(
                    "sea_residual",
                    "Residual at the most recent convergence check.",
                    vec![],
                    *residual,
                );
                if let Some(zeta) = dual_value {
                    reg.gauge_set(
                        "sea_dual_value",
                        "Dual objective at the most recent convergence check.",
                        vec![],
                        *zeta,
                    );
                }
            }
            Event::MultiplierBound { shifted, .. } => {
                reg.counter_add(
                    "sea_multiplier_bound_shifts_total",
                    "Dual multipliers projected back inside the bound.",
                    vec![],
                    *shifted as f64,
                );
            }
            Event::OuterIteration {
                inner_iterations, ..
            } => {
                reg.counter_add(
                    "sea_outer_iterations_total",
                    "Outer diagonalization iterations of the general solver.",
                    vec![],
                    1.0,
                );
                reg.counter_add(
                    "sea_inner_iterations_total",
                    "Inner SEA iterations across all outer steps.",
                    vec![],
                    *inner_iterations as f64,
                );
            }
            Event::KernelCounters { counters } => {
                let pairs: [(&str, u64); 4] = [
                    ("subproblems", counters.subproblems),
                    ("breakpoints_scanned", counters.breakpoints_scanned),
                    ("quickselect_pivots", counters.quickselect_pivots),
                    ("boxed_clamps", counters.boxed_clamps),
                ];
                for (which, value) in pairs {
                    // Counters arrive cumulative per solve; a gauge keyed
                    // by counter name reflects the latest snapshot.
                    reg.gauge_set(
                        "sea_kernel_work",
                        "Cumulative kernel work counters for the last solve.",
                        vec![("counter".to_string(), which.to_string())],
                        value as f64,
                    );
                }
            }
            Event::FallbackTriggered { phase, count, .. } => {
                reg.counter_add(
                    "sea_kernel_fallbacks_total",
                    "Subproblems that fell back from quickselect to sort-scan.",
                    Self::phase_labels(*phase),
                    *count as f64,
                );
            }
            Event::CheckpointWritten { iteration, .. } => {
                reg.counter_add(
                    "sea_checkpoints_written_total",
                    "Crash-safe checkpoint snapshots written.",
                    vec![],
                    1.0,
                );
                reg.gauge_set(
                    "sea_checkpoint_iteration",
                    "Iteration captured by the most recent checkpoint.",
                    vec![],
                    *iteration as f64,
                );
            }
            Event::SupervisorStop { reason, .. } => {
                reg.counter_add(
                    "sea_supervisor_stops_total",
                    "Solves stopped by the supervisor before convergence.",
                    vec![("reason".to_string(), (*reason).to_string())],
                    1.0,
                );
            }
            Event::BatchStart { instances, .. } => {
                reg.counter_add(
                    "sea_batch_solves_total",
                    "Batch solves started.",
                    vec![],
                    1.0,
                );
                reg.gauge_set(
                    "sea_batch_instances",
                    "Instances in the most recent batch.",
                    vec![],
                    *instances as f64,
                );
            }
            Event::BatchInstance {
                cache, work_saved, ..
            } => {
                reg.counter_add(
                    "sea_batch_cache_outcomes_total",
                    "Warm-start cache outcomes across batch instances.",
                    vec![("outcome".to_string(), (*cache).to_string())],
                    1.0,
                );
                reg.counter_add(
                    "sea_batch_work_saved_total",
                    "Kernel work saved by warm starts vs cold baselines.",
                    vec![],
                    *work_saved as f64,
                );
            }
            Event::BatchEnd {
                instances,
                converged,
                kernel_work,
                seconds,
                ..
            } => {
                reg.counter_add(
                    "sea_batch_instances_total",
                    "Instances solved across batches.",
                    vec![],
                    *instances as f64,
                );
                reg.counter_add(
                    "sea_batch_converged_total",
                    "Batch instances that converged.",
                    vec![],
                    *converged as f64,
                );
                reg.counter_add(
                    "sea_batch_kernel_work_total",
                    "Kernel work spent across batch instances.",
                    vec![],
                    *kernel_work as f64,
                );
                reg.counter_add(
                    "sea_batch_seconds_total",
                    "Cumulative wall-clock seconds across batch solves.",
                    vec![],
                    seconds.max(0.0),
                );
            }
            Event::SolveEnd {
                iterations,
                converged,
                seconds,
                ..
            } => {
                reg.counter_add(
                    "sea_solve_seconds_total",
                    "Cumulative wall-clock seconds across solves.",
                    vec![],
                    seconds.max(0.0),
                );
                reg.gauge_set(
                    "sea_iterations",
                    "Iterations used by the most recent solve.",
                    vec![],
                    *iterations as f64,
                );
                reg.gauge_set(
                    "sea_converged",
                    "1 when the most recent solve met its criterion, else 0.",
                    vec![],
                    if *converged { 1.0 } else { 0.0 },
                );
            }
        }
    }

    /// Metrics also consume span leaves so shard / batch-instance
    /// latency histograms populate when span signalling is on.
    fn spans_enabled(&self) -> bool {
        true
    }

    fn span_leaf(
        &mut self,
        kind: SpanKind,
        _index: u64,
        rel_start_ns: u64,
        rel_end_ns: u64,
        _tasks: u64,
        _counters: &KernelCounters,
        _detail: &'static str,
    ) {
        let seconds = rel_end_ns.saturating_sub(rel_start_ns) as f64 / 1e9;
        match kind {
            SpanKind::Shard => {
                self.registry.histogram_observe(
                    "sea_shard_seconds",
                    "Per-shard latency of parallel equilibration passes.",
                    vec![],
                    &TASK_SECONDS_BUCKETS,
                    seconds,
                );
            }
            SpanKind::Instance => {
                self.registry.histogram_observe(
                    "sea_instance_seconds",
                    "Per-instance latency inside batch solves.",
                    vec![],
                    &PHASE_SECONDS_BUCKETS,
                    seconds,
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_with_headers() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("jobs_total", "Jobs processed.", vec![], 3.0);
        reg.counter_add("jobs_total", "Jobs processed.", vec![], 2.0);
        reg.gauge_set("queue_depth", "Current queue depth.", vec![], 7.0);
        let text = reg.render();
        assert!(text.contains("# HELP jobs_total Jobs processed.\n"));
        assert!(text.contains("# TYPE jobs_total counter\n"));
        assert!(text.contains("jobs_total 5\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth 7\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(
            "weird_total",
            "Escaping test.",
            vec![("path".to_string(), "a\\b\"c\nd".to_string())],
            1.0,
        );
        let text = reg.render();
        assert!(
            text.contains(r#"weird_total{path="a\\b\"c\nd"} 1"#),
            "{text}"
        );
    }

    #[test]
    fn help_text_is_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("g", "line one\nline \\ two", vec![], 0.0);
        let text = reg.render();
        assert!(
            text.contains("# HELP g line one\\nline \\\\ two\n"),
            "{text}"
        );
    }

    #[test]
    fn series_sort_by_label_set_within_a_family() {
        let mut reg = MetricsRegistry::new();
        let mk = |v: &str| vec![("phase".to_string(), v.to_string())];
        reg.counter_add("p_total", "h", mk("row"), 1.0);
        reg.counter_add("p_total", "h", mk("column"), 1.0);
        reg.counter_add("p_total", "h", mk("check"), 1.0);
        let text = reg.render();
        let check = text.find("phase=\"check\"").unwrap();
        let column = text.find("phase=\"column\"").unwrap();
        let row = text.find("phase=\"row\"").unwrap();
        assert!(check < column && column < row, "{text}");
    }

    #[test]
    fn label_names_are_sorted_within_a_series() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(
            "m_total",
            "h",
            vec![
                ("zeta".to_string(), "1".to_string()),
                ("alpha".to_string(), "2".to_string()),
            ],
            1.0,
        );
        let text = reg.render();
        assert!(text.contains("m_total{alpha=\"2\",zeta=\"1\"} 1"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let mut reg = MetricsRegistry::new();
        let bounds = [0.1, 1.0, 10.0];
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            reg.histogram_observe("lat", "Latency.", vec![], &bounds, v);
        }
        let text = reg.render();
        assert!(text.contains("# TYPE lat histogram\n"));
        assert!(text.contains("lat_bucket{le=\"0.1\"} 1\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 3\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"10\"} 4\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 5\n"), "{text}");
        assert!(text.contains("lat_sum 56.05\n"), "{text}");
        assert!(text.contains("lat_count 5\n"), "{text}");
        // Bucket lines precede _sum and _count.
        assert!(text.find("lat_bucket").unwrap() < text.find("lat_sum").unwrap());
        assert!(text.find("lat_sum").unwrap() < text.find("lat_count").unwrap());
    }

    #[test]
    fn histogram_with_labels_merges_le_last() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_observe(
            "d",
            "h",
            vec![("phase".to_string(), "row".to_string())],
            &[1.0],
            0.5,
        );
        let text = reg.render();
        assert!(
            text.contains("d_bucket{phase=\"row\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(text.contains("d_sum{phase=\"row\"} 0.5"), "{text}");
        assert!(text.contains("d_count{phase=\"row\"} 1"), "{text}");
    }

    #[test]
    fn non_finite_sample_values_render_as_inf_nan() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("a", "h", vec![], f64::INFINITY);
        reg.gauge_set("b", "h", vec![], f64::NEG_INFINITY);
        reg.gauge_set("c", "h", vec![], f64::NAN);
        let text = reg.render();
        assert!(text.contains("a +Inf\n"), "{text}");
        assert!(text.contains("b -Inf\n"), "{text}");
        assert!(text.contains("c NaN\n"), "{text}");
    }

    #[test]
    fn families_render_once_in_registration_order() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("z_total", "h", vec![], 1.0);
        reg.counter_add("a_total", "h", vec![], 1.0);
        reg.counter_add("z_total", "h", vec![], 1.0);
        let text = reg.render();
        assert_eq!(text.matches("# TYPE z_total counter").count(), 1);
        assert!(
            text.find("z_total").unwrap() < text.find("a_total").unwrap(),
            "{text}"
        );
    }

    #[test]
    fn metrics_observer_aggregates_batch_events() {
        let mut obs = MetricsObserver::new();
        obs.record(&Event::BatchStart {
            instances: 3,
            parallelism: "outer".to_string(),
        });
        obs.record(&Event::BatchInstance {
            index: 0,
            id: "a".to_string(),
            family: Some("f".to_string()),
            cache: "hit",
            kernel_work: 100,
            work_saved: 400,
        });
        obs.record(&Event::BatchInstance {
            index: 1,
            id: "b".to_string(),
            family: Some("f".to_string()),
            cache: "miss",
            kernel_work: 500,
            work_saved: 0,
        });
        obs.record(&Event::BatchEnd {
            instances: 3,
            converged: 2,
            cache_hits: 1,
            cache_misses: 1,
            kernel_work: 600,
            work_saved: 400,
            seconds: 0.5,
        });
        let text = obs.render();
        assert!(text.contains("sea_batch_solves_total 1"), "{text}");
        assert!(text.contains("sea_batch_instances 3"), "{text}");
        assert!(
            text.contains("sea_batch_cache_outcomes_total{outcome=\"hit\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("sea_batch_cache_outcomes_total{outcome=\"miss\"} 1"),
            "{text}"
        );
        assert!(text.contains("sea_batch_work_saved_total 400"), "{text}");
        assert!(text.contains("sea_batch_converged_total 2"), "{text}");
        assert!(text.contains("sea_batch_kernel_work_total 600"), "{text}");
        assert!(text.contains("sea_batch_seconds_total 0.5"), "{text}");
    }

    #[test]
    fn metrics_observer_aggregates_solver_events() {
        use crate::event::KernelCounters;
        let mut obs = MetricsObserver::new();
        obs.record(&Event::SolveStart {
            solver: "diagonal",
            rows: 2,
            cols: 2,
            kernel: "sortscan",
            parallelism: "serial".to_string(),
            criterion: "max_abs_change",
        });
        for _ in 0..3 {
            obs.record(&Event::PhaseEnd {
                label: PhaseLabel::RowEquilibration,
                tasks: 2,
                seconds: 0.25,
                task_seconds: vec![],
            });
        }
        obs.record(&Event::ConvergenceCheck {
            iteration: 3,
            residual: 1e-4,
            dual_value: Some(2.0),
            criterion: "max_abs_change",
        });
        obs.record(&Event::KernelCounters {
            counters: KernelCounters {
                subproblems: 6,
                breakpoints_scanned: 40,
                quickselect_pivots: 0,
                boxed_clamps: 0,
            },
        });
        obs.record(&Event::SolveEnd {
            iterations: 3,
            converged: true,
            residual: 1e-4,
            objective: 1.0,
            dual_value: Some(1.0),
            seconds: 1.5,
        });
        let text = obs.render();
        assert!(
            text.contains("sea_solves_total{kernel=\"sortscan\",solver=\"diagonal\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("sea_phase_total{phase=\"row_equilibration\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("sea_phase_seconds_total{phase=\"row_equilibration\"} 0.75"),
            "{text}"
        );
        assert!(text.contains("sea_residual 0.0001"), "{text}");
        assert!(text.contains("sea_dual_value 2"), "{text}");
        assert!(
            text.contains("sea_kernel_work{counter=\"subproblems\"} 6"),
            "{text}"
        );
        assert!(text.contains("sea_converged 1"), "{text}");
        assert!(text.contains("sea_iterations 3"), "{text}");
        assert!(
            text.contains("sea_phase_seconds_bucket{phase=\"row_equilibration\",le=\"0.5\"} 3"),
            "{text}"
        );
    }
}
