//! JSONL (one JSON object per line) encoding of the event stream, plus the
//! `JsonlObserver` sink that streams events to any `io::Write`.
//!
//! Wire format: every line is an object with a `"type"` discriminant whose
//! value is [`Event::kind`], followed by the variant's fields in
//! declaration order. Non-finite floats are encoded as the strings
//! `"inf"` / `"-inf"` / `"nan"` (see [`crate::json::f64_to_json`]).

use std::io::Write;

use crate::event::{Event, KernelCounters, PhaseLabel};
use crate::json::{f64_to_json, json_to_f64, parse, JsonValue};

/// Version of the JSONL event vocabulary.
///
/// - **1**: the unversioned PR 2–6 vocabulary (no `meta` line).
/// - **2**: adds the `meta` header line and the span/telemetry layer
///   (spans export separately as chrome-trace, so version 2 streams are
///   a strict superset of version 1 — every version-1 line encodes
///   byte-for-byte identically under version 2; the wire-compat test
///   pins this against the committed golden fixtures).
pub const WIRE_VERSION: u64 = 2;

/// Serialize one event to its compact JSON object (no trailing newline).
pub fn encode_event(event: &Event) -> String {
    event_to_json(event).render()
}

/// Build the JSON value for one event.
pub fn event_to_json(event: &Event) -> JsonValue {
    let mut fields: Vec<(String, JsonValue)> = vec![(
        "type".to_string(),
        JsonValue::String(event.kind().to_string()),
    )];
    let mut push = |k: &str, v: JsonValue| fields.push((k.to_string(), v));
    match event {
        Event::Meta { wire_version } => {
            push("wire_version", JsonValue::Number(*wire_version as f64));
        }
        Event::SolveStart {
            solver,
            rows,
            cols,
            kernel,
            parallelism,
            criterion,
        } => {
            push("solver", JsonValue::String((*solver).to_string()));
            push("rows", JsonValue::Number(*rows as f64));
            push("cols", JsonValue::Number(*cols as f64));
            push("kernel", JsonValue::String((*kernel).to_string()));
            push("parallelism", JsonValue::String(parallelism.clone()));
            push("criterion", JsonValue::String((*criterion).to_string()));
        }
        Event::PhaseStart { label, tasks } => {
            push("label", JsonValue::String(label.name().to_string()));
            push("tasks", JsonValue::Number(*tasks as f64));
        }
        Event::PhaseEnd {
            label,
            tasks,
            seconds,
            task_seconds,
        } => {
            push("label", JsonValue::String(label.name().to_string()));
            push("tasks", JsonValue::Number(*tasks as f64));
            push("seconds", f64_to_json(*seconds));
            push(
                "task_seconds",
                JsonValue::Array(task_seconds.iter().map(|&s| f64_to_json(s)).collect()),
            );
        }
        Event::ConvergenceCheck {
            iteration,
            residual,
            dual_value,
            criterion,
        } => {
            push("iteration", JsonValue::Number(*iteration as f64));
            push("residual", f64_to_json(*residual));
            push(
                "dual_value",
                dual_value.map_or(JsonValue::Null, f64_to_json),
            );
            push("criterion", JsonValue::String((*criterion).to_string()));
        }
        Event::MultiplierBound {
            iteration,
            shifted,
            bound,
        } => {
            push("iteration", JsonValue::Number(*iteration as f64));
            push("shifted", JsonValue::Number(*shifted as f64));
            push("bound", f64_to_json(*bound));
        }
        Event::OuterIteration {
            iteration,
            inner_iterations,
            outer_residual,
        } => {
            push("iteration", JsonValue::Number(*iteration as f64));
            push(
                "inner_iterations",
                JsonValue::Number(*inner_iterations as f64),
            );
            push("outer_residual", f64_to_json(*outer_residual));
        }
        Event::KernelCounters { counters } => {
            push(
                "subproblems",
                JsonValue::Number(counters.subproblems as f64),
            );
            push(
                "breakpoints_scanned",
                JsonValue::Number(counters.breakpoints_scanned as f64),
            );
            push(
                "quickselect_pivots",
                JsonValue::Number(counters.quickselect_pivots as f64),
            );
            push(
                "boxed_clamps",
                JsonValue::Number(counters.boxed_clamps as f64),
            );
        }
        Event::FallbackTriggered {
            iteration,
            phase,
            count,
        } => {
            push("iteration", JsonValue::Number(*iteration as f64));
            push("phase", JsonValue::String(phase.name().to_string()));
            push("count", JsonValue::Number(*count as f64));
        }
        Event::CheckpointWritten { iteration, path } => {
            push("iteration", JsonValue::Number(*iteration as f64));
            push("path", JsonValue::String(path.clone()));
        }
        Event::SupervisorStop { iteration, reason } => {
            push("iteration", JsonValue::Number(*iteration as f64));
            push("reason", JsonValue::String((*reason).to_string()));
        }
        Event::BatchStart {
            instances,
            parallelism,
        } => {
            push("instances", JsonValue::Number(*instances as f64));
            push("parallelism", JsonValue::String(parallelism.clone()));
        }
        Event::BatchInstance {
            index,
            id,
            family,
            cache,
            kernel_work,
            work_saved,
        } => {
            push("index", JsonValue::Number(*index as f64));
            push("id", JsonValue::String(id.clone()));
            push(
                "family",
                family
                    .as_ref()
                    .map_or(JsonValue::Null, |f| JsonValue::String(f.clone())),
            );
            push("cache", JsonValue::String((*cache).to_string()));
            push("kernel_work", JsonValue::Number(*kernel_work as f64));
            push("work_saved", JsonValue::Number(*work_saved as f64));
        }
        Event::BatchEnd {
            instances,
            converged,
            cache_hits,
            cache_misses,
            kernel_work,
            work_saved,
            seconds,
        } => {
            push("instances", JsonValue::Number(*instances as f64));
            push("converged", JsonValue::Number(*converged as f64));
            push("cache_hits", JsonValue::Number(*cache_hits as f64));
            push("cache_misses", JsonValue::Number(*cache_misses as f64));
            push("kernel_work", JsonValue::Number(*kernel_work as f64));
            push("work_saved", JsonValue::Number(*work_saved as f64));
            push("seconds", f64_to_json(*seconds));
        }
        Event::SolveEnd {
            iterations,
            converged,
            residual,
            objective,
            dual_value,
            seconds,
        } => {
            push("iterations", JsonValue::Number(*iterations as f64));
            push("converged", JsonValue::Bool(*converged));
            push("residual", f64_to_json(*residual));
            push("objective", f64_to_json(*objective));
            push(
                "dual_value",
                dual_value.map_or(JsonValue::Null, f64_to_json),
            );
            push("seconds", f64_to_json(*seconds));
        }
    }
    JsonValue::Object(fields)
}

/// Decode one JSONL line back into an event.
///
/// # Errors
/// Returns a message naming the missing/ill-typed field or unknown type.
pub fn decode_event(line: &str) -> Result<Event, String> {
    let value = parse(line)?;
    json_to_event(&value)
}

/// Decode one parsed JSON object back into an event.
///
/// # Errors
/// Returns a message naming the missing/ill-typed field or unknown type.
pub fn json_to_event(value: &JsonValue) -> Result<Event, String> {
    let kind = value
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"type\" field")?;
    let str_field = |name: &str| -> Result<String, String> {
        value
            .get(name)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field {name:?}"))
    };
    let usize_field = |name: &str| -> Result<usize, String> {
        value
            .get(name)
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| format!("missing integer field {name:?}"))
    };
    let u64_field = |name: &str| -> Result<u64, String> {
        value
            .get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing integer field {name:?}"))
    };
    let f64_field = |name: &str| -> Result<f64, String> {
        value
            .get(name)
            .and_then(json_to_f64)
            .ok_or_else(|| format!("missing number field {name:?}"))
    };
    let opt_f64_field = |name: &str| -> Result<Option<f64>, String> {
        match value.get(name) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(v) => json_to_f64(v)
                .map(Some)
                .ok_or_else(|| format!("ill-typed field {name:?}")),
        }
    };
    let label_field = |name: &str| -> Result<PhaseLabel, String> {
        let s = str_field(name)?;
        PhaseLabel::parse(&s).ok_or_else(|| format!("unknown phase label {s:?}"))
    };

    match kind {
        "meta" => Ok(Event::Meta {
            wire_version: u64_field("wire_version")?,
        }),
        "solve_start" => Ok(Event::SolveStart {
            solver: intern_solver(&str_field("solver")?)?,
            rows: usize_field("rows")?,
            cols: usize_field("cols")?,
            kernel: intern_kernel(&str_field("kernel")?)?,
            parallelism: str_field("parallelism")?,
            criterion: intern_criterion(&str_field("criterion")?)?,
        }),
        "phase_start" => Ok(Event::PhaseStart {
            label: label_field("label")?,
            tasks: usize_field("tasks")?,
        }),
        "phase_end" => {
            let raw = value
                .get("task_seconds")
                .and_then(JsonValue::as_array)
                .ok_or("missing array field \"task_seconds\"")?;
            let task_seconds = raw
                .iter()
                .map(|v| json_to_f64(v).ok_or("ill-typed task_seconds entry"))
                .collect::<Result<Vec<f64>, _>>()?;
            Ok(Event::PhaseEnd {
                label: label_field("label")?,
                tasks: usize_field("tasks")?,
                seconds: f64_field("seconds")?,
                task_seconds,
            })
        }
        "convergence_check" => Ok(Event::ConvergenceCheck {
            iteration: usize_field("iteration")?,
            residual: f64_field("residual")?,
            dual_value: opt_f64_field("dual_value")?,
            criterion: intern_criterion(&str_field("criterion")?)?,
        }),
        "multiplier_bound" => Ok(Event::MultiplierBound {
            iteration: usize_field("iteration")?,
            shifted: usize_field("shifted")?,
            bound: f64_field("bound")?,
        }),
        "outer_iteration" => Ok(Event::OuterIteration {
            iteration: usize_field("iteration")?,
            inner_iterations: usize_field("inner_iterations")?,
            outer_residual: f64_field("outer_residual")?,
        }),
        "kernel_counters" => Ok(Event::KernelCounters {
            counters: KernelCounters {
                subproblems: u64_field("subproblems")?,
                breakpoints_scanned: u64_field("breakpoints_scanned")?,
                quickselect_pivots: u64_field("quickselect_pivots")?,
                boxed_clamps: u64_field("boxed_clamps")?,
            },
        }),
        "fallback_triggered" => Ok(Event::FallbackTriggered {
            iteration: usize_field("iteration")?,
            phase: label_field("phase")?,
            count: u64_field("count")?,
        }),
        "checkpoint_written" => Ok(Event::CheckpointWritten {
            iteration: usize_field("iteration")?,
            path: str_field("path")?,
        }),
        "supervisor_stop" => Ok(Event::SupervisorStop {
            iteration: usize_field("iteration")?,
            reason: intern_stop_reason(&str_field("reason")?)?,
        }),
        "batch_start" => Ok(Event::BatchStart {
            instances: usize_field("instances")?,
            parallelism: str_field("parallelism")?,
        }),
        "batch_instance" => Ok(Event::BatchInstance {
            index: usize_field("index")?,
            id: str_field("id")?,
            family: match value.get("family") {
                None | Some(JsonValue::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .map(str::to_string)
                        .ok_or("ill-typed field \"family\"")?,
                ),
            },
            cache: intern_cache_outcome(&str_field("cache")?)?,
            kernel_work: u64_field("kernel_work")?,
            work_saved: u64_field("work_saved")?,
        }),
        "batch_end" => Ok(Event::BatchEnd {
            instances: usize_field("instances")?,
            converged: usize_field("converged")?,
            cache_hits: usize_field("cache_hits")?,
            cache_misses: usize_field("cache_misses")?,
            kernel_work: u64_field("kernel_work")?,
            work_saved: u64_field("work_saved")?,
            seconds: f64_field("seconds")?,
        }),
        "solve_end" => Ok(Event::SolveEnd {
            iterations: usize_field("iterations")?,
            converged: value
                .get("converged")
                .and_then(JsonValue::as_bool)
                .ok_or("missing bool field \"converged\"")?,
            residual: f64_field("residual")?,
            objective: f64_field("objective")?,
            dual_value: opt_f64_field("dual_value")?,
            seconds: f64_field("seconds")?,
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

/// Parse a whole JSONL document (blank lines skipped) into events.
///
/// # Errors
/// Returns the 1-based line number alongside the decode error.
pub fn parse_events(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event = decode_event(line).map_err(|e| format!("line {}: {}", i + 1, e))?;
        events.push(event);
    }
    Ok(events)
}

// The in-memory Event uses &'static str for fields drawn from small closed
// vocabularies (so the hot emit path never allocates). Decoding interns
// the wire strings back onto those vocabularies.

fn intern_solver(s: &str) -> Result<&'static str, String> {
    intern(s, &["diagonal", "general", "bounded"], "solver")
}

fn intern_kernel(s: &str) -> Result<&'static str, String> {
    intern(s, &["sortscan", "quickselect"], "kernel")
}

fn intern_criterion(s: &str) -> Result<&'static str, String> {
    intern(
        s,
        &["max_abs_change", "relative_row_balance", "constraint_norm"],
        "criterion",
    )
}

fn intern_stop_reason(s: &str) -> Result<&'static str, String> {
    intern(
        s,
        &[
            "converged",
            "iteration_cap",
            "deadline_exceeded",
            "work_cap_exceeded",
            "cancelled",
            "stagnated",
            "breakdown",
        ],
        "stop reason",
    )
}

fn intern_cache_outcome(s: &str) -> Result<&'static str, String> {
    intern(s, &["hit", "miss", "bypass"], "cache outcome")
}

fn intern(s: &str, vocab: &[&'static str], what: &str) -> Result<&'static str, String> {
    vocab
        .iter()
        .copied()
        .find(|v| *v == s)
        .ok_or_else(|| format!("unknown {what} {s:?}"))
}

/// A streaming sink: writes one JSONL line per event to a `Write`.
///
/// Wrap the inner writer in a `BufWriter` for file sinks. The observer is
/// durable against abnormal exits: it flushes the writer after every
/// `flush_every` events (default 1, i.e. after each event) and again on
/// `Drop`, so a cancelled or crashed solve keeps its event-log tail up to
/// the last completed line — every line written is complete and parseable.
#[derive(Debug)]
pub struct JsonlObserver<W: Write> {
    /// `None` only after `finish` moved the writer out (so `Drop` has
    /// nothing left to flush).
    writer: Option<W>,
    /// First I/O error encountered, if any. Events after an error are
    /// dropped; solvers are never interrupted by a sink failure.
    error: Option<std::io::Error>,
    line: String,
    /// Flush after this many recorded events (0 is treated as 1).
    flush_every: usize,
    since_flush: usize,
}

impl<W: Write> JsonlObserver<W> {
    /// Wrap a writer, flushing after every event.
    pub fn new(writer: W) -> Self {
        Self::with_flush_every(writer, 1)
    }

    /// Wrap a writer, flushing after every `flush_every` events (and on
    /// `Drop`). Larger batches trade durability for fewer syscalls.
    pub fn with_flush_every(writer: W, flush_every: usize) -> Self {
        JsonlObserver {
            writer: Some(writer),
            error: None,
            line: String::new(),
            flush_every: flush_every.max(1),
            since_flush: 0,
        }
    }

    /// Flush and return the writer, or the first I/O error seen.
    ///
    /// # Errors
    /// Returns the first write/flush failure.
    pub fn finish(mut self) -> Result<W, std::io::Error> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut writer = self
            .writer
            .take()
            .ok_or_else(|| std::io::Error::other("writer already taken"))?;
        writer.flush()?;
        Ok(writer)
    }
}

impl<W: Write> Drop for JsonlObserver<W> {
    fn drop(&mut self) {
        // Best effort: keep the event-log tail on abnormal exit. Errors
        // are unreportable here, so they are ignored.
        if self.error.is_none() {
            if let Some(w) = self.writer.as_mut() {
                let _ = w.flush();
            }
        }
    }
}

impl<W: Write> crate::Observer for JsonlObserver<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        self.line.clear();
        event_to_json(event).write(&mut self.line);
        self.line.push('\n');
        let wrote = writer.write_all(self.line.as_bytes()).and_then(|()| {
            self.since_flush += 1;
            if self.since_flush >= self.flush_every {
                self.since_flush = 0;
                writer.flush()
            } else {
                Ok(())
            }
        });
        if let Err(e) = wrote {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observer;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::SolveStart {
                solver: "diagonal",
                rows: 3,
                cols: 4,
                kernel: "quickselect",
                parallelism: "rayon:4".to_string(),
                criterion: "max_abs_change",
            },
            Event::PhaseStart {
                label: PhaseLabel::RowEquilibration,
                tasks: 3,
            },
            Event::PhaseEnd {
                label: PhaseLabel::RowEquilibration,
                tasks: 3,
                seconds: 0.25,
                task_seconds: vec![0.1, 0.05, 0.1],
            },
            Event::ConvergenceCheck {
                iteration: 2,
                residual: 1e-3,
                dual_value: Some(-4.5),
                criterion: "max_abs_change",
            },
            Event::ConvergenceCheck {
                iteration: 4,
                residual: f64::INFINITY,
                dual_value: None,
                criterion: "max_abs_change",
            },
            Event::MultiplierBound {
                iteration: 4,
                shifted: 2,
                bound: 100.0,
            },
            Event::OuterIteration {
                iteration: 1,
                inner_iterations: 12,
                outer_residual: 0.5,
            },
            Event::KernelCounters {
                counters: KernelCounters {
                    subproblems: 14,
                    breakpoints_scanned: 120,
                    quickselect_pivots: 33,
                    boxed_clamps: 2,
                },
            },
            Event::FallbackTriggered {
                iteration: 3,
                phase: PhaseLabel::ColumnEquilibration,
                count: 2,
            },
            Event::CheckpointWritten {
                iteration: 4,
                path: "/tmp/run.ckpt".to_string(),
            },
            Event::SupervisorStop {
                iteration: 5,
                reason: "deadline_exceeded",
            },
            Event::SolveEnd {
                iterations: 6,
                converged: true,
                residual: 1e-7,
                objective: 12.5,
                dual_value: Some(12.5),
                seconds: 0.75,
            },
            Event::BatchStart {
                instances: 3,
                parallelism: "outer:4".to_string(),
            },
            Event::BatchInstance {
                index: 0,
                id: "q1".to_string(),
                family: Some("quarterly".to_string()),
                cache: "hit",
                kernel_work: 120,
                work_saved: 480,
            },
            Event::BatchInstance {
                index: 1,
                id: "adhoc".to_string(),
                family: None,
                cache: "bypass",
                kernel_work: 600,
                work_saved: 0,
            },
            Event::BatchEnd {
                instances: 3,
                converged: 3,
                cache_hits: 1,
                cache_misses: 1,
                kernel_work: 1320,
                work_saved: 480,
                seconds: 0.9,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for event in sample_events() {
            let line = encode_event(&event);
            let back = decode_event(&line).unwrap();
            // NaN-bearing events can't use PartialEq; none in the sample
            // set, so plain equality is fine.
            assert_eq!(back, event, "line: {line}");
        }
    }

    #[test]
    fn observer_streams_lines_and_parses_back() {
        let events = sample_events();
        let mut obs = JsonlObserver::new(Vec::new());
        for e in &events {
            obs.record(e);
        }
        let bytes = obs.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), events.len());
        assert_eq!(parse_events(&text).unwrap(), events);
    }

    #[test]
    fn parse_events_skips_blank_lines_and_reports_line_numbers() {
        let good = encode_event(&Event::PhaseStart {
            label: PhaseLabel::Projection,
            tasks: 8,
        });
        let text = format!("{good}\n\n{good}\n");
        assert_eq!(parse_events(&text).unwrap().len(), 2);

        let bad = format!("{good}\n{{\"type\":\"mystery\"}}\n");
        let err = parse_events(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn decode_rejects_missing_fields_and_unknown_vocab() {
        assert!(decode_event("{}").is_err());
        assert!(decode_event("{\"type\":\"phase_start\",\"tasks\":1}").is_err());
        assert!(
            decode_event("{\"type\":\"phase_start\",\"label\":\"warp_drive\",\"tasks\":1}")
                .is_err()
        );
        assert!(decode_event(
            "{\"type\":\"solve_start\",\"solver\":\"x\",\"rows\":1,\"cols\":1,\
             \"kernel\":\"sortscan\",\"parallelism\":\"serial\",\
             \"criterion\":\"max_abs_change\"}"
        )
        .is_err());
    }

    #[test]
    fn nan_residual_survives_encoding() {
        let event = Event::ConvergenceCheck {
            iteration: 1,
            residual: f64::NAN,
            dual_value: None,
            criterion: "constraint_norm",
        };
        let back = decode_event(&encode_event(&event)).unwrap();
        match back {
            Event::ConvergenceCheck { residual, .. } => assert!(residual.is_nan()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// Shared buffer writer that records how many flushes reached it, so
    /// tests can observe durability behavior through an abnormal drop.
    #[derive(Clone, Default)]
    struct SharedBuf(std::rc::Rc<std::cell::RefCell<(Vec<u8>, usize)>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.borrow_mut().0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.0.borrow_mut().1 += 1;
            Ok(())
        }
    }

    #[test]
    fn default_observer_flushes_after_every_event() {
        let buf = SharedBuf::default();
        let mut obs = JsonlObserver::new(buf.clone());
        for e in sample_events() {
            obs.record(&e);
        }
        let flushes = buf.0.borrow().1;
        assert_eq!(flushes, sample_events().len());
    }

    #[test]
    fn batched_observer_flushes_every_n_events() {
        let buf = SharedBuf::default();
        let mut obs = JsonlObserver::with_flush_every(buf.clone(), 4);
        let events = sample_events();
        for e in &events {
            obs.record(e);
        }
        assert_eq!(buf.0.borrow().1, events.len() / 4);
        drop(obs);
        // Drop flushed the partial batch.
        assert_eq!(buf.0.borrow().1, events.len() / 4 + 1);
    }

    #[test]
    fn mid_solve_abort_leaves_parseable_jsonl() {
        // Simulate a solve that dies partway: the observer is dropped
        // without finish(), as happens when a panic or cancellation
        // unwinds past the sink. Every recorded event must still be on
        // disk as a complete, parseable line.
        let buf = SharedBuf::default();
        let events = sample_events();
        let recorded = 4;
        {
            let mut obs = JsonlObserver::with_flush_every(buf.clone(), 3);
            for e in &events[..recorded] {
                obs.record(e);
            }
            // No finish(): abnormal exit path.
        }
        let text = String::from_utf8(buf.0.borrow().0.clone()).unwrap();
        assert_eq!(parse_events(&text).unwrap(), events[..recorded]);
    }

    #[test]
    fn sink_errors_are_latched_not_propagated() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut obs = JsonlObserver::new(FailingWriter);
        obs.record(&Event::PhaseStart {
            label: PhaseLabel::RowEquilibration,
            tasks: 1,
        });
        obs.record(&Event::PhaseStart {
            label: PhaseLabel::ColumnEquilibration,
            tasks: 1,
        });
        assert!(obs.finish().is_err());
    }
}
