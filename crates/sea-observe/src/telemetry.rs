//! Convergence telemetry: bounded sample buffers and rate estimation.
//!
//! The span profiler ([`crate::span::SpanProfiler`]) and the CLI
//! `--progress` line both consume a stream of per-check
//! [`TelemetrySample`]s emitted by the drivers through
//! [`crate::Observer::telemetry`]. Samples are `Copy` and the buffer is
//! preallocated, so recording a sample never allocates — the audited
//! alloc-free steady-state loop stays alloc-free with telemetry enabled.
//!
//! When the buffer fills it decimates in place (keeps every other
//! retained sample) and doubles its acceptance stride, so memory stays
//! bounded while the retained trajectory keeps roughly uniform coverage
//! of the whole solve.

/// One convergence snapshot, taken at a driver's periodic check.
///
/// All fields are plain numbers so the sample is `Copy` and can be
/// recorded without allocation from inside the solve loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySample {
    /// Iteration (epoch) index at which the check ran.
    pub iteration: u64,
    /// Wall-clock seconds since the solve started.
    pub seconds: f64,
    /// Convergence residual under the driver's active criterion.
    pub residual: f64,
    /// Dual objective value, or NaN when the driver did not compute it.
    pub dual_value: f64,
    /// Cumulative kernel work (breakpoints scanned + quickselect pivots
    /// + boxed clamps) up to this check.
    pub kernel_work: u64,
    /// Number of strictly positive entries in the iterate — the active
    /// set of the equilibration subproblems. The churn between two
    /// consecutive samples is the absolute change in this count.
    pub active_set: u64,
}

impl TelemetrySample {
    /// A sample with every field zeroed (residual/dual NaN-free zero).
    pub fn zeroed() -> Self {
        TelemetrySample {
            iteration: 0,
            seconds: 0.0,
            residual: 0.0,
            dual_value: f64::NAN,
            kernel_work: 0,
            active_set: 0,
        }
    }
}

/// Preallocated, self-decimating buffer of [`TelemetrySample`]s.
///
/// `push` is alloc-free: the backing `Vec` is reserved up front and
/// never grows. When the buffer is full it drops every other retained
/// sample in place and doubles the acceptance stride, so an arbitrarily
/// long solve keeps a bounded, roughly uniformly spaced trajectory.
#[derive(Debug)]
pub struct TelemetryBuffer {
    samples: Vec<TelemetrySample>,
    capacity: usize,
    /// Accept one sample in every `stride` offered.
    stride: u64,
    /// Samples offered so far (accepted or not).
    offered: u64,
    /// Samples dropped by striding or decimation.
    dropped: u64,
}

impl TelemetryBuffer {
    /// A buffer retaining at most `capacity` samples (minimum 4).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(4);
        TelemetryBuffer {
            samples: Vec::with_capacity(capacity),
            capacity,
            stride: 1,
            offered: 0,
            dropped: 0,
        }
    }

    /// Offer a sample; returns `true` if it was retained.
    pub fn push(&mut self, sample: TelemetrySample) -> bool {
        let offered = self.offered;
        self.offered += 1;
        if !offered.is_multiple_of(self.stride) {
            self.dropped += 1;
            return false;
        }
        if self.samples.len() == self.capacity {
            // Decimate in place: keep even-indexed samples, then double
            // the stride so future samples arrive at the thinned rate.
            let len = self.samples.len();
            let mut keep = 0usize;
            for i in (0..len).step_by(2) {
                self.samples[keep] = self.samples[i];
                keep += 1;
            }
            self.dropped += (len - keep) as u64;
            self.samples.truncate(keep);
            self.stride = self.stride.saturating_mul(2);
        }
        self.samples.push(sample);
        true
    }

    /// The retained samples, in arrival order.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Samples dropped by striding or decimation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total samples offered to the buffer.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The most recently retained sample.
    pub fn last(&self) -> Option<&TelemetrySample> {
        self.samples.last()
    }

    /// Forget all retained samples and reset the stride.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.stride = 1;
        self.offered = 0;
        self.dropped = 0;
    }
}

/// Estimated convergence rate and time-to-target from recent samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtaEstimate {
    /// Geometric residual contraction factor per iteration (< 1 means
    /// the residual is shrinking).
    pub rate: f64,
    /// Estimated iterations remaining until the residual reaches the
    /// target tolerance.
    pub iterations_remaining: f64,
    /// Estimated wall-clock seconds remaining.
    pub seconds_remaining: f64,
}

/// Fits a geometric convergence model to the tail of a sample
/// trajectory and projects the remaining work to a target residual.
///
/// SEA's dual block-coordinate ascent converges linearly in practice,
/// so `log(residual)` against iteration is close to affine; the
/// estimator does a least-squares line fit over the last few samples
/// with positive finite residuals.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvergenceEstimator;

/// How many trailing samples the estimator fits over.
const FIT_WINDOW: usize = 8;

impl ConvergenceEstimator {
    /// Estimate the contraction rate and remaining work to bring the
    /// residual below `target`. Returns `None` when fewer than two
    /// usable samples exist, the fit is degenerate, or the trajectory
    /// is not contracting.
    pub fn estimate(samples: &[TelemetrySample], target: f64) -> Option<EtaEstimate> {
        let usable: Vec<&TelemetrySample> = samples
            .iter()
            .filter(|s| s.residual.is_finite() && s.residual > 0.0)
            .collect();
        if usable.len() < 2 {
            return None;
        }
        let tail = &usable[usable.len().saturating_sub(FIT_WINDOW)..];
        // Least-squares fit of ln(residual) = a + b * iteration.
        let n = tail.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for s in tail {
            let x = s.iteration as f64;
            let y = s.residual.ln();
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let denom = n * sxx - sx * sx;
        if denom.abs() < f64::EPSILON {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let rate = slope.exp();
        if !rate.is_finite() || rate >= 1.0 || rate <= 0.0 {
            return None;
        }
        let last = tail[tail.len() - 1];
        // `!(target > 0.0)` deliberately treats a NaN target as already
        // met (no extrapolation), which `target <= 0.0` would not.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(target > 0.0) || last.residual <= target {
            return Some(EtaEstimate {
                rate,
                iterations_remaining: 0.0,
                seconds_remaining: 0.0,
            });
        }
        let iterations_remaining = (target / last.residual).ln() / slope;
        // Seconds per iteration from the span of the fitted window.
        let first = tail[0];
        let di = (last.iteration - first.iteration) as f64;
        let secs_per_iter = if di > 0.0 {
            (last.seconds - first.seconds).max(0.0) / di
        } else {
            0.0
        };
        Some(EtaEstimate {
            rate,
            iterations_remaining,
            seconds_remaining: iterations_remaining * secs_per_iter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iteration: u64, residual: f64, seconds: f64) -> TelemetrySample {
        TelemetrySample {
            iteration,
            seconds,
            residual,
            dual_value: f64::NAN,
            kernel_work: 0,
            active_set: 0,
        }
    }

    #[test]
    fn buffer_retains_everything_under_capacity() {
        let mut buf = TelemetryBuffer::with_capacity(8);
        for i in 0..8 {
            assert!(buf.push(sample(i, 1.0, i as f64)));
        }
        assert_eq!(buf.samples().len(), 8);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn buffer_decimates_and_strides_when_full() {
        let mut buf = TelemetryBuffer::with_capacity(8);
        for i in 0..64 {
            buf.push(sample(i, 1.0, i as f64));
        }
        assert!(buf.samples().len() <= 8);
        assert_eq!(buf.offered(), 64);
        assert_eq!(
            buf.samples().len() as u64 + buf.dropped(),
            buf.offered(),
            "every offered sample is retained or counted dropped"
        );
        // Retained iterations stay sorted (uniform-ish coverage).
        let iters: Vec<u64> = buf.samples().iter().map(|s| s.iteration).collect();
        let mut sorted = iters.clone();
        sorted.sort_unstable();
        assert_eq!(iters, sorted);
    }

    #[test]
    fn buffer_push_never_grows_backing_storage() {
        let mut buf = TelemetryBuffer::with_capacity(16);
        let cap = buf.samples.capacity();
        for i in 0..1000 {
            buf.push(sample(i, 1.0, 0.0));
        }
        assert_eq!(buf.samples.capacity(), cap);
    }

    #[test]
    fn estimator_fits_a_geometric_trajectory() {
        // residual = 0.5^k, one second per iteration.
        let samples: Vec<TelemetrySample> = (0..10)
            .map(|k| sample(k, 0.5f64.powi(k as i32), k as f64))
            .collect();
        let eta = ConvergenceEstimator::estimate(&samples, 1e-9).expect("estimate");
        assert!((eta.rate - 0.5).abs() < 1e-9, "rate {}", eta.rate);
        assert!(eta.iterations_remaining > 0.0);
        assert!((eta.seconds_remaining - eta.iterations_remaining).abs() < 1e-6);
    }

    #[test]
    fn estimator_declines_non_contracting_trajectories() {
        let samples: Vec<TelemetrySample> =
            (0..10).map(|k| sample(k, 1.0 + k as f64, 0.0)).collect();
        assert!(ConvergenceEstimator::estimate(&samples, 1e-9).is_none());
    }

    #[test]
    fn estimator_reports_done_when_target_met() {
        let samples: Vec<TelemetrySample> = (0..4)
            .map(|k| sample(k, 0.5f64.powi(k as i32), k as f64))
            .collect();
        let eta = ConvergenceEstimator::estimate(&samples, 1.0).expect("estimate");
        assert_eq!(eta.iterations_remaining, 0.0);
    }
}
