//! Minimal hand-rolled JSON: a value model, a writer, and a recursive
//! descent parser.
//!
//! The build environment vendors no serialization crates, and the event
//! schema is small and fully under our control, so a ~200-line JSON core
//! keeps the observability layer dependency-free. Objects preserve
//! insertion order (they are association lists, not maps), which keeps the
//! JSONL output deterministic for golden-file tests.

/// A JSON value. Objects are ordered association lists.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats must be encoded by the caller
    /// (the event codec uses the strings `"inf"`, `"-inf"`, `"nan"`);
    /// the writer emits `null` for a non-finite number defensively.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, preserving insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a nonnegative integer (rejects fractional values).
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
            Some(v as usize)
        } else {
            None
        }
    }

    /// The number as a `u64` (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the compact serialization to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(v) => {
                if v.is_finite() {
                    // Rust's Display for f64 is shortest-round-trip.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Encode an `f64` that may be non-finite: finite values become numbers,
/// non-finite ones the strings `"inf"`, `"-inf"`, or `"nan"` (JSON has no
/// literal for them).
pub fn f64_to_json(v: f64) -> JsonValue {
    if v.is_finite() {
        JsonValue::Number(v)
    } else if v.is_nan() {
        JsonValue::String("nan".to_string())
    } else if v > 0.0 {
        JsonValue::String("inf".to_string())
    } else {
        JsonValue::String("-inf".to_string())
    }
}

/// Decode an `f64` written by [`f64_to_json`].
pub fn json_to_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Number(x) => Some(*x),
        JsonValue::String(s) => match s.as_str() {
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            "nan" => Some(f64::NAN),
            _ => None,
        },
        _ => None,
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse errors carry a byte offset and a short message.
pub type JsonError = String;

/// Parse a complete JSON document (trailing whitespace allowed).
///
/// # Errors
/// Returns a message with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                        }
                        other => {
                            return Err(format!("bad escape \\{}", other as char));
                        }
                    }
                }
                b => {
                    // Re-assemble UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8".to_string());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'-' || b == b'+' || b == b'.' || b == b'e' || b == b'E' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        s.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {s:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let v = JsonValue::Object(vec![
            (
                "name".to_string(),
                JsonValue::String("row \"1\"\n".to_string()),
            ),
            ("count".to_string(), JsonValue::Number(42.0)),
            (
                "xs".to_string(),
                JsonValue::Array(vec![
                    JsonValue::Number(1.5),
                    JsonValue::Bool(true),
                    JsonValue::Null,
                ]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        for x in [0.1, 1e-300, 123456.789012345, -2.5e17, f64::MIN_POSITIVE] {
            let text = JsonValue::Number(x).render();
            assert_eq!(parse(&text).unwrap().as_f64().unwrap(), x);
        }
    }

    #[test]
    fn non_finite_floats_use_string_encoding() {
        assert_eq!(f64_to_json(f64::INFINITY).render(), "\"inf\"");
        assert_eq!(f64_to_json(f64::NEG_INFINITY).render(), "\"-inf\"");
        assert_eq!(f64_to_json(f64::NAN).render(), "\"nan\"");
        assert_eq!(json_to_f64(&parse("\"inf\"").unwrap()), Some(f64::INFINITY));
        assert!(json_to_f64(&parse("\"nan\"").unwrap()).unwrap().is_nan());
        // The raw writer never emits invalid JSON for non-finite numbers.
        assert_eq!(JsonValue::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn object_lookup_and_typed_accessors() {
        let v = parse(r#"{"a": 3, "b": "s", "c": [1], "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert_eq!(parse("2.5").unwrap().as_usize(), None);
    }
}
