//! Solver instrumentation for the SEA reproduction.
//!
//! This crate is the observability layer the solvers in `sea-core` emit
//! into: a typed [`Event`] taxonomy covering solve lifecycle, phase
//! timings, convergence snapshots, kernel work counters, and
//! multiplier-bound activations; the [`Observer`] sink trait (statically
//! dispatched, so the disabled path costs nothing); and three sinks —
//! [`NullObserver`] (the default), [`JsonlObserver`] (streaming JSONL
//! solve logs), and [`MetricsObserver`] (an in-memory registry rendering
//! Prometheus text exposition format).
//!
//! The crate is deliberately dependency-free: JSON is hand-rolled in
//! [`json`], and nothing here touches the solver crates — `sea-core`
//! depends on `sea-observe`, never the reverse, so the event schema stays
//! usable from reporting and simulation tools without pulling in the
//! numerics.

#![deny(missing_docs)]

pub mod event;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod observer;

pub use event::{Event, KernelCounters, PhaseLabel};
pub use jsonl::{decode_event, encode_event, parse_events, JsonlObserver};
pub use metrics::{MetricsObserver, MetricsRegistry};
pub use observer::{NullObserver, Observer, TeeObserver, VecObserver};
