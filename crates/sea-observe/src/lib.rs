//! Solver instrumentation for the SEA reproduction.
//!
//! This crate is the observability layer the solvers in `sea-core` emit
//! into: a typed [`Event`] taxonomy covering solve lifecycle, phase
//! timings, convergence snapshots, kernel work counters, and
//! multiplier-bound activations; the [`Observer`] sink trait (statically
//! dispatched, so the disabled path costs nothing); and the built-in
//! sinks — [`NullObserver`] (the default), [`JsonlObserver`] (streaming
//! JSONL solve logs), [`MetricsObserver`] (an in-memory registry
//! rendering Prometheus text exposition format), and [`SpanProfiler`]
//! (hierarchical spans in a preallocated ring buffer plus convergence
//! telemetry, exporting chrome-trace JSON and folded flamegraph
//! stacks).
//!
//! The crate is deliberately dependency-free: JSON is hand-rolled in
//! [`json`], and nothing here touches the solver crates — `sea-core`
//! depends on `sea-observe`, never the reverse, so the event schema stays
//! usable from reporting and simulation tools without pulling in the
//! numerics.

#![deny(missing_docs)]

pub mod event;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod observer;
pub mod span;
pub mod telemetry;

pub use event::{Event, KernelCounters, PhaseLabel};
pub use jsonl::{decode_event, encode_event, parse_events, JsonlObserver, WIRE_VERSION};
pub use metrics::{MetricsObserver, MetricsRegistry};
pub use observer::{NullObserver, Observer, TeeObserver, VecObserver};
pub use span::{
    chrome_trace, folded_stacks, parse_chrome_trace, ParsedSpan, SpanKind, SpanProfiler, SpanRecord,
};
pub use telemetry::{ConvergenceEstimator, EtaEstimate, TelemetryBuffer, TelemetrySample};
