//! Wire-vocabulary compatibility over the committed golden fixtures.
//!
//! The JSONL event stream is a versioned wire format ([`WIRE_VERSION`]);
//! logs committed by earlier PRs must keep decoding, and — because
//! `encode_event` is the single writer — re-encoding every decoded event
//! must reproduce the committed bytes exactly. A drifting field order,
//! float formatting change, or renamed tag shows up here as a byte diff
//! against the fixture, before any downstream consumer breaks.

use sea_observe::{decode_event, encode_event, parse_events, Event, WIRE_VERSION};
use std::path::PathBuf;

fn fixture(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Every committed golden log, across the PRs that introduced them:
/// the dense solve (PR 2), the batch framing (PR 5), and the sparse
/// sharded solve (PR 6).
fn golden_logs() -> Vec<PathBuf> {
    vec![
        fixture("../sea-core/tests/fixtures/golden_solve.jsonl"),
        fixture("../sea-core/tests/fixtures/golden_sparse_solve.jsonl"),
        fixture("../sea-batch/tests/fixtures/golden_batch.jsonl"),
    ]
}

#[test]
fn committed_fixtures_reencode_byte_for_byte() {
    for path in golden_logs() {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let mut lines = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event = decode_event(line)
                .unwrap_or_else(|e| panic!("{} line {}: {e}", path.display(), i + 1));
            let reencoded = encode_event(&event);
            assert_eq!(
                reencoded,
                line,
                "{} line {}: re-encode drifted from committed bytes",
                path.display(),
                i + 1
            );
            lines += 1;
        }
        assert!(lines > 0, "{}: empty fixture", path.display());
    }
}

#[test]
fn committed_fixtures_parse_as_streams() {
    // The stream-level parser (used by `sea-solve report`) accepts every
    // committed log whole, not just line by line.
    for path in golden_logs() {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let events = parse_events(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!events.is_empty());
    }
}

#[test]
fn meta_event_round_trips_and_version_is_current() {
    // The committed fixtures predate the version stamp (writers opt in),
    // so the Meta line is exercised directly: it must round-trip and
    // carry the current version.
    assert_eq!(WIRE_VERSION, 2);
    let line = encode_event(&Event::Meta {
        wire_version: WIRE_VERSION,
    });
    match decode_event(&line).expect("meta line decodes") {
        Event::Meta { wire_version } => assert_eq!(wire_version, WIRE_VERSION),
        other => panic!("meta decoded as {other:?}"),
    }
    // An unknown future version still decodes (readers are forward-
    // tolerant on the version number itself).
    let future = line.replace(
        &format!("\"wire_version\":{WIRE_VERSION}"),
        "\"wire_version\":99",
    );
    assert!(matches!(
        decode_event(&future),
        Ok(Event::Meta { wire_version: 99 })
    ));
}
