//! The SPE model, its constrained-matrix transformation, and equilibrium
//! verification.

use sea_core::{solve_diagonal, DiagonalProblem, SeaError, SeaOptions, TotalSpec, ZeroPolicy};
use sea_linalg::DenseMatrix;
use std::time::Duration;

/// A spatial price equilibrium problem with linear separable functions:
///
/// * supply price   `πᵢ(sᵢ) = aᵢ + bᵢ·sᵢ` (slope `bᵢ > 0`),
/// * demand price   `ρⱼ(dⱼ) = cⱼ − eⱼ·dⱼ` (slope `eⱼ > 0`),
/// * transaction cost `tᵢⱼ(xᵢⱼ) = gᵢⱼ + hᵢⱼ·xᵢⱼ` (slope `hᵢⱼ > 0`).
///
/// Equilibrium (Samuelson/Takayama–Judge): for every pair `(i,j)`,
/// `πᵢ(sᵢ) + tᵢⱼ(xᵢⱼ) ≥ ρⱼ(dⱼ)`, with equality when `xᵢⱼ > 0`, where
/// `sᵢ = Σⱼ xᵢⱼ` and `dⱼ = Σᵢ xᵢⱼ`.
#[derive(Debug, Clone)]
pub struct SpatialPriceProblem {
    /// Supply price intercepts `a` (length m).
    pub supply_intercept: Vec<f64>,
    /// Supply price slopes `b > 0` (length m).
    pub supply_slope: Vec<f64>,
    /// Demand price intercepts `c` (length n).
    pub demand_intercept: Vec<f64>,
    /// Demand price slopes `e > 0` (length n).
    pub demand_slope: Vec<f64>,
    /// Transaction cost intercepts `g` (m×n).
    pub cost_intercept: DenseMatrix,
    /// Transaction cost slopes `h > 0` (m×n).
    pub cost_slope: DenseMatrix,
}

impl SpatialPriceProblem {
    /// Validate slopes and dimensions.
    ///
    /// # Errors
    /// [`SeaError::Shape`] / [`SeaError::NonPositiveWeight`] on bad input.
    pub fn validate(&self) -> Result<(), SeaError> {
        let (m, n) = (self.cost_intercept.rows(), self.cost_intercept.cols());
        if self.supply_intercept.len() != m || self.supply_slope.len() != m {
            return Err(SeaError::Shape {
                context: "SPE supply functions",
                expected: m,
                actual: self.supply_intercept.len().min(self.supply_slope.len()),
            });
        }
        if self.demand_intercept.len() != n || self.demand_slope.len() != n {
            return Err(SeaError::Shape {
                context: "SPE demand functions",
                expected: n,
                actual: self.demand_intercept.len().min(self.demand_slope.len()),
            });
        }
        if self.cost_slope.rows() != m || self.cost_slope.cols() != n {
            return Err(SeaError::Shape {
                context: "SPE cost slopes",
                expected: m * n,
                actual: self.cost_slope.rows() * self.cost_slope.cols(),
            });
        }
        for (k, &b) in self.supply_slope.iter().enumerate() {
            if !(b > 0.0) {
                return Err(SeaError::NonPositiveWeight {
                    which: "supply slope",
                    index: k,
                    value: b,
                });
            }
        }
        for (k, &e) in self.demand_slope.iter().enumerate() {
            if !(e > 0.0) {
                return Err(SeaError::NonPositiveWeight {
                    which: "demand slope",
                    index: k,
                    value: e,
                });
            }
        }
        for (k, &h) in self.cost_slope.as_slice().iter().enumerate() {
            if !(h > 0.0) {
                return Err(SeaError::NonPositiveWeight {
                    which: "cost slope",
                    index: k,
                    value: h,
                });
            }
        }
        Ok(())
    }

    /// Number of supply markets.
    pub fn m(&self) -> usize {
        self.cost_intercept.rows()
    }

    /// Number of demand markets.
    pub fn n(&self) -> usize {
        self.cost_intercept.cols()
    }

    /// Supply price `πᵢ(s)`.
    pub fn supply_price(&self, i: usize, s: f64) -> f64 {
        self.supply_intercept[i] + self.supply_slope[i] * s
    }

    /// Demand price `ρⱼ(d)`.
    pub fn demand_price(&self, j: usize, d: f64) -> f64 {
        self.demand_intercept[j] - self.demand_slope[j] * d
    }

    /// Transaction cost `tᵢⱼ(x)`.
    pub fn transaction_cost(&self, i: usize, j: usize, x: f64) -> f64 {
        self.cost_intercept.get(i, j) + self.cost_slope.get(i, j) * x
    }

    /// The Nagurney (1989) isomorphism: complete the square on the SPE
    /// optimization objective to obtain a diagonal **elastic** constrained
    /// matrix problem (paper eq. 5) with
    ///
    /// ```text
    ///   αᵢ = bᵢ/2,   s⁰ᵢ = −aᵢ/bᵢ,
    ///   γᵢⱼ = hᵢⱼ/2, x⁰ᵢⱼ = −gᵢⱼ/hᵢⱼ,
    ///   βⱼ = eⱼ/2,   d⁰ⱼ = cⱼ/eⱼ.
    /// ```
    ///
    /// The pseudo-priors `x⁰ = −g/h` are typically negative (transport is
    /// costly at zero flow), which is why
    /// [`DiagonalProblem::with_signed_prior`] exists.
    ///
    /// # Errors
    /// Propagates validation failures.
    pub fn to_constrained_matrix(&self) -> Result<DiagonalProblem, SeaError> {
        self.validate()?;
        let (m, n) = (self.m(), self.n());
        let alpha: Vec<f64> = self.supply_slope.iter().map(|&b| 0.5 * b).collect();
        let s0: Vec<f64> = self
            .supply_intercept
            .iter()
            .zip(&self.supply_slope)
            .map(|(&a, &b)| -a / b)
            .collect();
        let beta: Vec<f64> = self.demand_slope.iter().map(|&e| 0.5 * e).collect();
        let d0: Vec<f64> = self
            .demand_intercept
            .iter()
            .zip(&self.demand_slope)
            .map(|(&c, &e)| c / e)
            .collect();
        let gamma = DenseMatrix::from_vec(
            m,
            n,
            self.cost_slope
                .as_slice()
                .iter()
                .map(|&h| 0.5 * h)
                .collect(),
        )?;
        let x0 = DenseMatrix::from_vec(
            m,
            n,
            self.cost_intercept
                .as_slice()
                .iter()
                .zip(self.cost_slope.as_slice())
                .map(|(&g, &h)| -g / h)
                .collect(),
        )?;
        DiagonalProblem::with_signed_prior(
            x0,
            gamma,
            TotalSpec::Elastic {
                alpha,
                s0,
                beta,
                d0,
            },
            ZeroPolicy::Free,
        )
    }
}

/// How well a candidate `(x, s, d)` satisfies the spatial equilibrium
/// conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquilibriumReport {
    /// Worst violation of `π + t ≥ ρ` (positive = violated).
    pub max_price_violation: f64,
    /// Worst complementarity slack `xᵢⱼ·(π + t − ρ)` over active flows.
    pub max_complementarity_gap: f64,
    /// Worst flow-conservation violation `|Σⱼ xᵢⱼ − sᵢ|`, `|Σᵢ xᵢⱼ − dⱼ|`.
    pub max_conservation_violation: f64,
    /// Total shipped quantity.
    pub total_flow: f64,
    /// Number of active (positive) trade links.
    pub active_links: usize,
}

/// Evaluate the equilibrium conditions at `(x, s, d)`.
pub fn check_equilibrium(
    p: &SpatialPriceProblem,
    x: &DenseMatrix,
    s: &[f64],
    d: &[f64],
) -> EquilibriumReport {
    let (m, n) = (p.m(), p.n());
    let mut max_price_violation: f64 = f64::NEG_INFINITY;
    let mut max_gap: f64 = 0.0;
    let mut active = 0usize;
    for i in 0..m {
        let pi = p.supply_price(i, s[i]);
        for j in 0..n {
            let xij = x.get(i, j);
            let margin = pi + p.transaction_cost(i, j, xij) - p.demand_price(j, d[j]);
            max_price_violation = max_price_violation.max(-margin);
            if xij > 0.0 {
                active += 1;
                max_gap = max_gap.max((xij * margin).abs());
            }
        }
    }
    let rs = x.row_sums();
    let cs = x.col_sums();
    let mut cons: f64 = 0.0;
    for i in 0..m {
        cons = cons.max((rs[i] - s[i]).abs());
    }
    for j in 0..n {
        cons = cons.max((cs[j] - d[j]).abs());
    }
    EquilibriumReport {
        max_price_violation,
        max_complementarity_gap: max_gap,
        max_conservation_violation: cons,
        total_flow: x.total(),
        active_links: active,
    }
}

/// A computed spatial equilibrium.
#[derive(Debug, Clone)]
pub struct SpeSolution {
    /// Trade flows.
    pub x: DenseMatrix,
    /// Supplies.
    pub s: Vec<f64>,
    /// Demands.
    pub d: Vec<f64>,
    /// Equilibrium diagnostics.
    pub report: EquilibriumReport,
    /// SEA iterations used.
    pub iterations: usize,
    /// Whether SEA converged.
    pub converged: bool,
    /// Wall clock.
    pub elapsed: Duration,
}

/// Compute the spatial equilibrium by transforming to a constrained matrix
/// problem and running SEA.
///
/// ```
/// use sea_core::SeaOptions;
/// use sea_spatial::{random_spe, solve_spe};
///
/// let problem = random_spe(4, 4, 7);
/// let sol = solve_spe(&problem, &SeaOptions::with_epsilon(1e-9)).unwrap();
/// assert!(sol.converged);
/// // Supply price + transport cost >= demand price on every route.
/// assert!(sol.report.max_price_violation < 1e-5);
/// ```
///
/// # Errors
/// Propagates validation and solver failures.
pub fn solve_spe(p: &SpatialPriceProblem, opts: &SeaOptions) -> Result<SpeSolution, SeaError> {
    let cmp = p.to_constrained_matrix()?;
    let sol = solve_diagonal(&cmp, opts)?;
    let report = check_equilibrium(p, &sol.x, &sol.s, &sol.d);
    Ok(SpeSolution {
        x: sol.x,
        s: sol.s,
        d: sol.d,
        report,
        iterations: sol.stats.iterations,
        converged: sol.stats.converged,
        elapsed: sol.stats.elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two markets each; cheap local shipping, expensive cross shipping.
    fn small_spe() -> SpatialPriceProblem {
        SpatialPriceProblem {
            supply_intercept: vec![5.0, 5.0],
            supply_slope: vec![1.0, 1.0],
            demand_intercept: vec![40.0, 40.0],
            demand_slope: vec![1.0, 1.0],
            cost_intercept: DenseMatrix::from_rows(&[vec![1.0, 15.0], vec![15.0, 1.0]]).unwrap(),
            cost_slope: DenseMatrix::filled(2, 2, 0.5).unwrap(),
        }
    }

    #[test]
    fn validation_catches_bad_slopes() {
        let mut p = small_spe();
        p.demand_slope[1] = 0.0;
        assert!(p.validate().is_err());
        let mut p = small_spe();
        p.supply_intercept.pop();
        assert!(p.validate().is_err());
    }

    #[test]
    fn equilibrium_conditions_hold_at_solution() {
        let p = small_spe();
        let sol = solve_spe(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        assert!(sol.converged);
        assert!(sol.report.total_flow > 0.0, "markets should trade");
        assert!(
            sol.report.max_price_violation < 1e-6,
            "price condition violated by {}",
            sol.report.max_price_violation
        );
        assert!(
            sol.report.max_complementarity_gap < 1e-5,
            "complementarity gap {}",
            sol.report.max_complementarity_gap
        );
        assert!(sol.report.max_conservation_violation < 1e-6);
    }

    #[test]
    fn symmetric_duopoly_ships_locally() {
        let p = small_spe();
        let sol = solve_spe(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        // Cross costs are high: local links dominate.
        assert!(sol.x.get(0, 0) > sol.x.get(0, 1));
        assert!(sol.x.get(1, 1) > sol.x.get(1, 0));
        // Symmetry.
        assert!((sol.x.get(0, 0) - sol.x.get(1, 1)).abs() < 1e-8);
    }

    #[test]
    fn single_market_pair_matches_hand_solution() {
        // π(s)=2+s, ρ(d)=20−d, t(x)=1+x. Equilibrium with one link:
        // s=d=x: 2+x +1+x = 20−x ⇒ 3x = 17 ⇒ x = 17/3.
        let p = SpatialPriceProblem {
            supply_intercept: vec![2.0],
            supply_slope: vec![1.0],
            demand_intercept: vec![20.0],
            demand_slope: vec![1.0],
            cost_intercept: DenseMatrix::filled(1, 1, 1.0).unwrap(),
            cost_slope: DenseMatrix::filled(1, 1, 1.0).unwrap(),
        };
        let sol = solve_spe(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        assert!((sol.x.get(0, 0) - 17.0 / 3.0).abs() < 1e-7);
        // Prices equalize.
        let pi = p.supply_price(0, sol.s[0]) + p.transaction_cost(0, 0, sol.x.get(0, 0));
        let rho = p.demand_price(0, sol.d[0]);
        assert!((pi - rho).abs() < 1e-6);
    }

    #[test]
    fn prohibitive_costs_shut_down_trade() {
        // Supply price at zero already exceeds what demanders will pay.
        let p = SpatialPriceProblem {
            supply_intercept: vec![100.0],
            supply_slope: vec![1.0],
            demand_intercept: vec![10.0],
            demand_slope: vec![1.0],
            cost_intercept: DenseMatrix::filled(1, 1, 5.0).unwrap(),
            cost_slope: DenseMatrix::filled(1, 1, 1.0).unwrap(),
        };
        let sol = solve_spe(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        assert!(sol.x.get(0, 0).abs() < 1e-9);
        assert_eq!(sol.report.active_links, 0);
        // The price condition still holds (π + t ≥ ρ strictly).
        assert!(sol.report.max_price_violation <= 0.0);
    }
}
