//! Asymmetric spatial price equilibrium — the variational-inequality
//! problem class beyond optimization.
//!
//! Section 2 of the paper points out that the general constrained matrix
//! formulation is related to *asymmetric* spatial price equilibrium
//! problems, "for which no equivalent optimization formulations exist":
//! when supply prices at market `i` depend on the supplies of *other*
//! markets (and demand prices likewise) with a non-symmetric Jacobian, the
//! equilibrium is a variational inequality, not a minimization. The
//! Dafermos (1983) diagonalization scheme still applies: freeze the
//! cross-market terms, solve the resulting **separable** SPE through the
//! constrained-matrix isomorphism with SEA, and iterate.
//!
//! Model: supply price `πᵢ(s) = aᵢ + Σₖ Bᵢₖ sₖ`, demand price
//! `ρⱼ(d) = cⱼ − Σₗ Eⱼₗ dₗ`, transaction cost `tᵢⱼ(x) = gᵢⱼ + hᵢⱼ xᵢⱼ`,
//! with `B`, `E` row-diagonally-dominant with positive diagonals (the
//! standard strong-monotonicity condition) but **not** necessarily
//! symmetric.

use crate::model::{EquilibriumReport, SpatialPriceProblem};
use rand::Rng;
use sea_core::{solve_diagonal, SeaError, SeaOptions};
use sea_linalg::DenseMatrix;
use std::time::{Duration, Instant};

/// An asymmetric SPE instance.
#[derive(Debug, Clone)]
pub struct AsymmetricSpe {
    /// Supply price intercepts `a` (length m).
    pub supply_intercept: Vec<f64>,
    /// Supply price Jacobian `B` (m×m, positive diagonal, need not be
    /// symmetric).
    pub supply_jacobian: DenseMatrix,
    /// Demand price intercepts `c` (length n).
    pub demand_intercept: Vec<f64>,
    /// Demand price Jacobian `E` (n×n, positive diagonal).
    pub demand_jacobian: DenseMatrix,
    /// Transaction cost intercepts `g` (m×n).
    pub cost_intercept: DenseMatrix,
    /// Transaction cost slopes `h > 0` (m×n).
    pub cost_slope: DenseMatrix,
}

impl AsymmetricSpe {
    /// Validate shapes, positive diagonals/slopes.
    ///
    /// # Errors
    /// [`SeaError::Shape`] / [`SeaError::NonPositiveWeight`].
    pub fn validate(&self) -> Result<(), SeaError> {
        let (m, n) = (self.cost_intercept.rows(), self.cost_intercept.cols());
        if self.supply_jacobian.rows() != m || self.supply_jacobian.cols() != m {
            return Err(SeaError::Shape {
                context: "asymmetric B shape",
                expected: m * m,
                actual: self.supply_jacobian.rows() * self.supply_jacobian.cols(),
            });
        }
        if self.demand_jacobian.rows() != n || self.demand_jacobian.cols() != n {
            return Err(SeaError::Shape {
                context: "asymmetric E shape",
                expected: n * n,
                actual: self.demand_jacobian.rows() * self.demand_jacobian.cols(),
            });
        }
        if self.supply_intercept.len() != m || self.demand_intercept.len() != n {
            return Err(SeaError::Shape {
                context: "asymmetric intercepts",
                expected: m + n,
                actual: self.supply_intercept.len() + self.demand_intercept.len(),
            });
        }
        for i in 0..m {
            if !(self.supply_jacobian.get(i, i) > 0.0) {
                return Err(SeaError::NonPositiveWeight {
                    which: "diag(B)",
                    index: i,
                    value: self.supply_jacobian.get(i, i),
                });
            }
        }
        for j in 0..n {
            if !(self.demand_jacobian.get(j, j) > 0.0) {
                return Err(SeaError::NonPositiveWeight {
                    which: "diag(E)",
                    index: j,
                    value: self.demand_jacobian.get(j, j),
                });
            }
        }
        for (k, &h) in self.cost_slope.as_slice().iter().enumerate() {
            if !(h > 0.0) {
                return Err(SeaError::NonPositiveWeight {
                    which: "cost slope",
                    index: k,
                    value: h,
                });
            }
        }
        Ok(())
    }

    /// Supply markets.
    pub fn m(&self) -> usize {
        self.cost_intercept.rows()
    }

    /// Demand markets.
    pub fn n(&self) -> usize {
        self.cost_intercept.cols()
    }

    /// Full supply price `πᵢ(s)`.
    pub fn supply_price(&self, i: usize, s: &[f64]) -> f64 {
        self.supply_intercept[i] + sea_linalg::vector::dot(self.supply_jacobian.row(i), s)
    }

    /// Full demand price `ρⱼ(d)`.
    pub fn demand_price(&self, j: usize, d: &[f64]) -> f64 {
        self.demand_intercept[j] - sea_linalg::vector::dot(self.demand_jacobian.row(j), d)
    }

    /// Transaction cost `tᵢⱼ(x)`.
    pub fn transaction_cost(&self, i: usize, j: usize, x: f64) -> f64 {
        self.cost_intercept.get(i, j) + self.cost_slope.get(i, j) * x
    }

    /// The separable SPE obtained by freezing the cross-market terms at
    /// `(s, d)`: intercepts absorb `Σ_{k≠i} Bᵢₖ sₖ` (resp. demand side),
    /// slopes are the Jacobian diagonals.
    fn diagonalized_at(&self, s: &[f64], d: &[f64]) -> SpatialPriceProblem {
        let (m, n) = (self.m(), self.n());
        let supply_intercept: Vec<f64> = (0..m)
            .map(|i| {
                self.supply_intercept[i] + sea_linalg::vector::dot(self.supply_jacobian.row(i), s)
                    - self.supply_jacobian.get(i, i) * s[i]
            })
            .collect();
        let supply_slope: Vec<f64> = (0..m).map(|i| self.supply_jacobian.get(i, i)).collect();
        let demand_intercept: Vec<f64> = (0..n)
            .map(|j| {
                self.demand_intercept[j] - sea_linalg::vector::dot(self.demand_jacobian.row(j), d)
                    + self.demand_jacobian.get(j, j) * d[j]
            })
            .collect();
        let demand_slope: Vec<f64> = (0..n).map(|j| self.demand_jacobian.get(j, j)).collect();
        SpatialPriceProblem {
            supply_intercept,
            supply_slope,
            demand_intercept,
            demand_slope,
            cost_intercept: self.cost_intercept.clone(),
            cost_slope: self.cost_slope.clone(),
        }
    }

    /// Evaluate the equilibrium conditions with the **full** asymmetric
    /// price functions.
    pub fn check_equilibrium(&self, x: &DenseMatrix, s: &[f64], d: &[f64]) -> EquilibriumReport {
        let (m, n) = (self.m(), self.n());
        let mut max_price_violation: f64 = f64::NEG_INFINITY;
        let mut max_gap: f64 = 0.0;
        let mut active = 0usize;
        for i in 0..m {
            let pi = self.supply_price(i, s);
            for j in 0..n {
                let xij = x.get(i, j);
                let margin = pi + self.transaction_cost(i, j, xij) - self.demand_price(j, d);
                max_price_violation = max_price_violation.max(-margin);
                if xij > 0.0 {
                    active += 1;
                    max_gap = max_gap.max((xij * margin).abs());
                }
            }
        }
        let rs = x.row_sums();
        let cs = x.col_sums();
        let mut cons: f64 = 0.0;
        for i in 0..m {
            cons = cons.max((rs[i] - s[i]).abs());
        }
        for j in 0..n {
            cons = cons.max((cs[j] - d[j]).abs());
        }
        EquilibriumReport {
            max_price_violation,
            max_complementarity_gap: max_gap,
            max_conservation_violation: cons,
            total_flow: x.total(),
            active_links: active,
        }
    }
}

/// Result of an asymmetric SPE solve.
#[derive(Debug, Clone)]
pub struct AsymmetricSolution {
    /// Equilibrium flows.
    pub x: DenseMatrix,
    /// Equilibrium supplies.
    pub s: Vec<f64>,
    /// Equilibrium demands.
    pub d: Vec<f64>,
    /// Diagonalization (outer VI) iterations.
    pub outer_iterations: usize,
    /// Whether the outer loop converged.
    pub converged: bool,
    /// Final outer change `maxᵢⱼ |Δxᵢⱼ|`.
    pub outer_residual: f64,
    /// Equilibrium diagnostics under the full asymmetric functions.
    pub report: EquilibriumReport,
    /// Wall clock.
    pub elapsed: Duration,
}

/// Solve an asymmetric SPE by diagonalization: each outer iteration solves
/// a separable SPE (via the constrained-matrix isomorphism and SEA) with
/// cross-market terms frozen at the previous iterate.
///
/// # Errors
/// Propagates validation and inner-solver failures.
pub fn solve_asymmetric_spe(
    p: &AsymmetricSpe,
    inner: &SeaOptions,
    outer_epsilon: f64,
    max_outer: usize,
) -> Result<AsymmetricSolution, SeaError> {
    p.validate()?;
    let start = Instant::now();
    let (m, n) = (p.m(), p.n());
    let mut x = DenseMatrix::zeros(m, n)?;
    let mut s = vec![0.0; m];
    let mut d = vec![0.0; n];
    let mut outer_iterations = 0;
    let mut converged = false;
    let mut outer_residual = f64::INFINITY;

    for t in 1..=max_outer {
        outer_iterations = t;
        let sep = p.diagonalized_at(&s, &d);
        let cmp = sep.to_constrained_matrix()?;
        let sol = solve_diagonal(&cmp, inner)?;
        let delta = sol.x.max_abs_diff(&x);
        x = sol.x;
        s = sol.s;
        d = sol.d;
        outer_residual = delta;
        if delta <= outer_epsilon {
            converged = true;
            break;
        }
    }

    let report = p.check_equilibrium(&x, &s, &d);
    Ok(AsymmetricSolution {
        x,
        s,
        d,
        outer_iterations,
        converged,
        outer_residual,
        report,
        elapsed: start.elapsed(),
    })
}

/// Random asymmetric SPE instance: diagonally dominant (strongly monotone)
/// Jacobians with genuinely asymmetric off-diagonals.
///
/// # Panics
/// Panics if `m` or `n` is zero.
pub fn random_asymmetric_spe(m: usize, n: usize, seed: u64) -> AsymmetricSpe {
    use rand::SeedableRng;
    assert!(m > 0 && n > 0);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xA5E_A5E);
    let base = crate::generate::random_spe(m, n, seed);
    let mut b = DenseMatrix::zeros(m, m).expect("nonempty");
    for i in 0..m {
        let diag = base.supply_slope[i];
        // Keep Σ off-diag below the diagonal: strong monotonicity.
        let budget = 0.6 * diag / (m.max(2) - 1) as f64;
        for k in 0..m {
            if k == i {
                b.set(i, i, diag);
            } else {
                b.set(i, k, rng.random_range(-0.3 * budget..budget));
            }
        }
    }
    let mut e = DenseMatrix::zeros(n, n).expect("nonempty");
    for j in 0..n {
        let diag = base.demand_slope[j];
        let budget = 0.6 * diag / (n.max(2) - 1) as f64;
        for l in 0..n {
            if l == j {
                e.set(j, j, diag);
            } else {
                e.set(j, l, rng.random_range(-0.3 * budget..budget));
            }
        }
    }
    AsymmetricSpe {
        supply_intercept: base.supply_intercept,
        supply_jacobian: b,
        demand_intercept: base.demand_intercept,
        demand_jacobian: e,
        cost_intercept: base.cost_intercept,
        cost_slope: base.cost_slope,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::solve_spe;

    #[test]
    fn diagonal_jacobians_reduce_to_separable_spe() {
        let sep = crate::generate::random_spe(5, 5, 3);
        let asym = AsymmetricSpe {
            supply_intercept: sep.supply_intercept.clone(),
            supply_jacobian: {
                let mut b = DenseMatrix::zeros(5, 5).unwrap();
                for i in 0..5 {
                    b.set(i, i, sep.supply_slope[i]);
                }
                b
            },
            demand_intercept: sep.demand_intercept.clone(),
            demand_jacobian: {
                let mut e = DenseMatrix::zeros(5, 5).unwrap();
                for j in 0..5 {
                    e.set(j, j, sep.demand_slope[j]);
                }
                e
            },
            cost_intercept: sep.cost_intercept.clone(),
            cost_slope: sep.cost_slope.clone(),
        };
        let a = solve_asymmetric_spe(&asym, &SeaOptions::with_epsilon(1e-10), 1e-8, 100).unwrap();
        let b = solve_spe(&sep, &SeaOptions::with_epsilon(1e-10)).unwrap();
        assert!(a.converged && b.converged);
        assert!(
            a.x.max_abs_diff(&b.x) < 1e-5,
            "diagonal-Jacobian asymmetric solve must match separable: {}",
            a.x.max_abs_diff(&b.x)
        );
    }

    #[test]
    fn asymmetric_equilibrium_conditions_hold() {
        let p = random_asymmetric_spe(6, 7, 11);
        // Verify the Jacobians are genuinely asymmetric.
        let b = &p.supply_jacobian;
        let asym = (0..6)
            .flat_map(|i| (0..6).map(move |k| (i, k)))
            .any(|(i, k)| i != k && (b.get(i, k) - b.get(k, i)).abs() > 1e-12);
        assert!(asym, "generator must produce an asymmetric Jacobian");

        let sol = solve_asymmetric_spe(&p, &SeaOptions::with_epsilon(1e-10), 1e-8, 500).unwrap();
        assert!(sol.converged, "residual {}", sol.outer_residual);
        assert!(sol.report.total_flow > 0.0);
        let scale = sol.report.total_flow.max(1.0);
        assert!(
            sol.report.max_price_violation < 1e-5,
            "price violation {}",
            sol.report.max_price_violation
        );
        assert!(sol.report.max_complementarity_gap / scale < 1e-5);
        assert!(sol.report.max_conservation_violation / scale < 1e-6);
    }

    #[test]
    fn cross_market_supply_coupling_shifts_the_equilibrium() {
        // Positive cross-elasticity: other markets' output raises my
        // marginal cost, shrinking total trade relative to the decoupled
        // problem.
        let sep = crate::generate::random_spe(4, 4, 9);
        let mut coupled = random_asymmetric_spe(4, 4, 9);
        // Force strictly positive off-diagonal supply coupling.
        for i in 0..4 {
            for k in 0..4 {
                if i != k {
                    coupled
                        .supply_jacobian
                        .set(i, k, 0.2 * sep.supply_slope[i] / 3.0);
                }
            }
        }
        let decoupled = solve_spe(&sep, &SeaOptions::with_epsilon(1e-10)).unwrap();
        let sol =
            solve_asymmetric_spe(&coupled, &SeaOptions::with_epsilon(1e-10), 1e-8, 500).unwrap();
        assert!(sol.converged);
        assert!(
            sol.report.total_flow < decoupled.report.total_flow,
            "coupling should reduce trade: {} vs {}",
            sol.report.total_flow,
            decoupled.report.total_flow
        );
    }

    #[test]
    fn validation_rejects_bad_jacobians() {
        let mut p = random_asymmetric_spe(3, 3, 1);
        p.supply_jacobian.set(1, 1, 0.0);
        assert!(p.validate().is_err());
        let mut p = random_asymmetric_spe(3, 3, 1);
        p.demand_intercept.pop();
        assert!(p.validate().is_err());
    }
}
