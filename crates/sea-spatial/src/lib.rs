//! # sea-spatial — spatial price equilibrium problems
//!
//! The classical spatial price equilibrium (SPE) problem of Enke (1951),
//! Samuelson (1952), and Takayama & Judge (1971): `m` supply markets and
//! `n` demand markets with linear separable supply price, demand price, and
//! transaction cost functions. The paper (after Stone 1951 and Nagurney
//! 1989) uses the **isomorphism between SPE and the constrained matrix
//! problem with unknown row and column totals**: SPE's equivalent
//! optimization objective
//!
//! ```text
//!   Σᵢ ∫₀^{sᵢ} πᵢ(u) du + Σᵢⱼ ∫₀^{xᵢⱼ} tᵢⱼ(u) du − Σⱼ ∫₀^{dⱼ} ρⱼ(u) du
//! ```
//!
//! is, for linear functions, exactly a diagonal elastic constrained matrix
//! objective (paper eq. 5) after completing the square — so SEA computes
//! spatial equilibria, and the SP experiments of Table 5 / Table 6 are
//! constrained matrix solves.
//!
//! * [`model`] — [`SpatialPriceProblem`], the transformation to a
//!   [`DiagonalProblem`](sea_core::DiagonalProblem), and equilibrium
//!   condition verification.
//! * [`generate`] — random instance generators (`SP50×50` … `SP750×750`).
//! * [`asymmetric`] — asymmetric SPE (cross-market price Jacobians): the
//!   variational-inequality class with *no* equivalent optimization
//!   formulation (paper §2), solved by diagonalization over separable SPE
//!   subproblems.

// Numeric-kernel idioms: indexed loops over multiple parallel arrays are
// clearer than zipped iterator chains in the equilibration math, and
// `!(w > 0.0)` deliberately treats NaN as invalid (a positive-weight check
// that `w <= 0.0` would pass NaN through).
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod asymmetric;
pub mod generate;
pub mod model;

pub use asymmetric::{
    random_asymmetric_spe, solve_asymmetric_spe, AsymmetricSolution, AsymmetricSpe,
};
pub use generate::random_spe;
pub use model::{
    check_equilibrium, solve_spe, EquilibriumReport, SpatialPriceProblem, SpeSolution,
};
