//! Random SPE instance generators (the paper's `SP50×50` … `SP750×750`
//! series: "linear supply price, demand price, and transportation cost
//! functions which are also separable", §4.1.2).
//!
//! Parameters are drawn so instances are economically active (demand
//! intercepts exceed supply intercepts plus typical transport costs, so a
//! substantial fraction of links trade) and deterministic given the seed.

use crate::model::SpatialPriceProblem;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_linalg::DenseMatrix;

/// Generate a random SPE instance with `m` supply and `n` demand markets.
///
/// Deterministic in `(m, n, seed)`.
///
/// # Panics
/// Panics if `m` or `n` is zero.
pub fn random_spe(m: usize, n: usize, seed: u64) -> SpatialPriceProblem {
    assert!(m > 0 && n > 0, "markets must be nonempty");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EA_5EA);
    let supply_intercept: Vec<f64> = (0..m).map(|_| rng.random_range(1.0..10.0)).collect();
    let supply_slope: Vec<f64> = (0..m).map(|_| rng.random_range(0.5..3.0)).collect();
    let demand_intercept: Vec<f64> = (0..n).map(|_| rng.random_range(150.0..300.0)).collect();
    let demand_slope: Vec<f64> = (0..n).map(|_| rng.random_range(1.0..5.0)).collect();
    let cost_intercept = DenseMatrix::from_vec(
        m,
        n,
        (0..m * n).map(|_| rng.random_range(1.0..25.0)).collect(),
    )
    .expect("nonempty dims");
    let cost_slope = DenseMatrix::from_vec(
        m,
        n,
        (0..m * n).map(|_| rng.random_range(0.01..0.5)).collect(),
    )
    .expect("nonempty dims");
    SpatialPriceProblem {
        supply_intercept,
        supply_slope,
        demand_intercept,
        demand_slope,
        cost_intercept,
        cost_slope,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::solve_spe;
    use sea_core::SeaOptions;

    #[test]
    fn generator_is_deterministic() {
        let a = random_spe(5, 7, 42);
        let b = random_spe(5, 7, 42);
        assert_eq!(a.supply_intercept, b.supply_intercept);
        assert_eq!(a.cost_slope, b.cost_slope);
        let c = random_spe(5, 7, 43);
        assert_ne!(a.supply_intercept, c.supply_intercept);
    }

    #[test]
    fn generated_instances_validate_and_trade() {
        let p = random_spe(10, 10, 7);
        p.validate().unwrap();
        let sol = solve_spe(&p, &SeaOptions::with_epsilon(1e-8)).unwrap();
        assert!(sol.converged);
        assert!(sol.report.total_flow > 0.0);
        assert!(sol.report.active_links > 10, "instance should be active");
        assert!(sol.report.max_price_violation < 1e-4);
    }

    #[test]
    fn rectangular_instances_work() {
        let p = random_spe(3, 8, 11);
        let sol = solve_spe(&p, &SeaOptions::with_epsilon(1e-8)).unwrap();
        assert!(sol.converged);
        assert_eq!(sol.x.rows(), 3);
        assert_eq!(sol.x.cols(), 8);
    }
}
