//! The RC equilibration algorithm (Nagurney, Kim & Robinson 1990).
//!
//! RC and SEA apply the same two ingredients — dual row/column splitting
//! and the Dafermos projection (diagonalization) method — but nested in
//! opposite orders (paper §5, Figs. 4 vs 6):
//!
//! * **SEA**: diagonalize once per outer iteration, then run the full
//!   diagonal SEA (row *and* column dual ascent) on the frozen subproblem.
//! * **RC**: alternate a *row equilibration* half-step and a *column
//!   equilibration* half-step at the outer level; inside each half-step the
//!   projection method runs **to convergence** on the general objective
//!   subject to only that side's constraints. Every projection iteration
//!   pays a dense `G` mat-vec *and a serial convergence verification* —
//!   the overheads responsible for RC's 3–4× serial disadvantage (Table 7)
//!   and its lower parallel efficiency (Table 9).
//!
//! For diagonal problems the projection step is exact, both nestings
//! collapse to the same iteration, and RC ≡ diagonal SEA (§3.1.3) — so
//! this module only implements the general, fixed-totals case the paper
//! benchmarks (Tables 7 and 9).

use sea_core::equilibrate::{equilibration_pass, PassInputs};
use sea_core::general::{GeneralProblem, GeneralTotalSpec};
use sea_core::knapsack::{KernelKind, TotalMode};
use sea_core::parallel::Parallelism;
use sea_core::trace::{ExecutionTrace, PhaseKind};
use sea_core::SeaError;
use sea_linalg::DenseMatrix;
use std::time::{Duration, Instant};

/// Options for [`solve_general_rc`].
#[derive(Debug, Clone)]
pub struct RcOptions {
    /// Outer stopping tolerance on `maxᵢⱼ |Δxᵢⱼ|` across a full
    /// row-phase + column-phase outer iteration (the paper's ε′).
    pub outer_epsilon: f64,
    /// Cap on outer iterations.
    pub max_outer: usize,
    /// Projection-method tolerance inside each half-step.
    pub projection_epsilon: f64,
    /// Cap on projection iterations per half-step.
    pub max_projection_iterations: usize,
    /// Fan-out strategy for the equilibration passes and mat-vecs.
    pub parallelism: Parallelism,
    /// Equilibration kernel for the half-step subproblems.
    pub kernel: KernelKind,
    /// Record a phase trace for the scheduling simulator.
    pub record_trace: bool,
}

impl Default for RcOptions {
    fn default() -> Self {
        Self {
            outer_epsilon: 1e-6,
            max_outer: 200,
            projection_epsilon: 1e-7,
            max_projection_iterations: 500,
            parallelism: Parallelism::Serial,
            kernel: KernelKind::default(),
            record_trace: false,
        }
    }
}

impl RcOptions {
    /// Paper-style options at tolerance `eps` (projection one decade
    /// tighter).
    pub fn with_epsilon(eps: f64) -> Self {
        Self {
            outer_epsilon: eps,
            projection_epsilon: eps * 0.1,
            ..Self::default()
        }
    }
}

/// Result of an RC solve.
#[derive(Debug, Clone)]
pub struct RcSolution {
    /// The matrix estimate.
    pub x: DenseMatrix,
    /// Row multipliers after the final row phase.
    pub lambda: Vec<f64>,
    /// Column multipliers after the final column phase.
    pub mu: Vec<f64>,
    /// Outer (row-phase + column-phase) iterations.
    pub outer_iterations: usize,
    /// Total projection-method iterations across all half-steps.
    pub projection_iterations: usize,
    /// Whether the outer loop converged.
    pub converged: bool,
    /// Final outer change.
    pub outer_residual: f64,
    /// Primal objective at the solution.
    pub objective: f64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Phase trace (present iff requested).
    pub trace: Option<ExecutionTrace>,
}

struct HalfStepBuffers {
    dev: Vec<f64>,
    g_dev: Vec<f64>,
    q: DenseMatrix,
    y: DenseMatrix,
    totals_tmp: Vec<f64>,
    costs: Vec<f64>,
}

/// One half-step: projection method to convergence on the general objective
/// subject to only this orientation's constraints.
///
/// `x` enters/leaves in *row orientation of this half-step* (the column
/// phase passes transposed data). `flatten` maps this orientation's flat
/// index to the canonical row-major index of `G`.
#[allow(clippy::too_many_arguments)]
fn half_step(
    p: &GeneralProblem,
    x: &mut DenseMatrix,
    x0: &DenseMatrix,
    gamma: &DenseMatrix,
    g_diag: &[f64],
    totals: &[f64],
    shift: &[f64],
    lambda_out: &mut [f64],
    transposed: bool,
    opts: &RcOptions,
    buf: &mut HalfStepBuffers,
    trace: &mut Option<ExecutionTrace>,
) -> Result<usize, SeaError> {
    let rows = x.rows();
    let cols = x.cols();
    let mn = rows * cols;
    let parallel = opts.parallelism.is_parallel();
    let mut projection_iterations = 0;

    for _ in 0..opts.max_projection_iterations {
        projection_iterations += 1;

        // --- Projection step: q = y − G(y − x0)/diag(G), in G's canonical
        // (row-major, untransposed) index space.
        let t0 = Instant::now();
        if transposed {
            // Map this orientation (n×m) back to canonical (m×n) flat order.
            for j in 0..rows {
                let xr = x.row(j);
                let x0r = x0.row(j);
                for i in 0..cols {
                    buf.dev[i * rows + j] = xr[i] - x0r[i];
                }
            }
        } else {
            for (d, (a, b)) in buf
                .dev
                .iter_mut()
                .zip(x.as_slice().iter().zip(x0.as_slice()))
            {
                *d = a - b;
            }
        }
        if parallel {
            p.g().matvec_parallel(&buf.dev, &mut buf.g_dev)?;
        } else {
            p.g().matvec(&buf.dev, &mut buf.g_dev)?;
        }
        if transposed {
            for j in 0..rows {
                let xr = x.row(j);
                let qr = buf.q.row_mut(j);
                for i in 0..cols {
                    let k = i * rows + j;
                    qr[i] = xr[i] - buf.g_dev[k] / g_diag[k];
                }
            }
        } else {
            let qs = buf.q.as_mut_slice();
            for k in 0..mn {
                qs[k] = x.as_slice()[k] - buf.g_dev[k] / g_diag[k];
            }
        }
        let proj_secs = t0.elapsed().as_secs_f64();
        if let Some(tr) = trace.as_mut() {
            // Coarse-chunked like a real parallel mat-vec (see general.rs).
            let chunks = mn.min(256);
            tr.push(
                PhaseKind::Projection,
                vec![proj_secs / chunks as f64; chunks],
            );
        }

        // --- Equilibration pass on this orientation only.
        let inputs = PassInputs {
            prior: &buf.q,
            gamma,
            support: None,
            shift,
            side: if transposed { "column" } else { "row" },
            kernel: opts.kernel,
            simd: sea_core::SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        let costs = opts.record_trace.then_some(&mut buf.costs);
        equilibration_pass(
            &inputs,
            &|i| TotalMode::Fixed { total: totals[i] },
            lambda_out,
            &mut buf.totals_tmp,
            &mut buf.y,
            opts.parallelism,
            costs,
            None,
            None,
            None,
        )?;
        if let Some(tr) = trace.as_mut() {
            tr.push(
                if transposed {
                    PhaseKind::ColumnEquilibration
                } else {
                    PhaseKind::RowEquilibration
                },
                buf.costs.clone(),
            );
        }

        // --- Serial projection-convergence verification (RC's extra
        // serial phase).
        let t0 = Instant::now();
        let delta = buf.y.max_abs_diff(x);
        std::mem::swap(x, &mut buf.y);
        let check_secs = t0.elapsed().as_secs_f64();
        if let Some(tr) = trace.as_mut() {
            tr.push(PhaseKind::ConvergenceCheck, vec![check_secs]);
        }
        if delta <= opts.projection_epsilon {
            break;
        }
    }
    Ok(projection_iterations)
}

/// Solve a general **fixed-totals** constrained matrix problem with the RC
/// algorithm.
///
/// # Errors
/// * [`SeaError::Shape`] if the problem's totals are not
///   [`GeneralTotalSpec::Fixed`] (RC, like B-K, was designed for the fixed
///   class — §5.1.1).
/// * Propagated equilibration failures.
pub fn solve_general_rc(p: &GeneralProblem, opts: &RcOptions) -> Result<RcSolution, SeaError> {
    let (s0, d0) = match p.totals() {
        GeneralTotalSpec::Fixed { s0, d0 } => (s0.clone(), d0.clone()),
        _ => {
            return Err(SeaError::Shape {
                context: "RC requires fixed totals",
                expected: 0,
                actual: 1,
            })
        }
    };
    let start = Instant::now();
    let (m, n) = (p.m(), p.n());
    let mn = m * n;
    let g_diag = p.g().diagonal();
    let gamma = DenseMatrix::from_vec(m, n, g_diag.iter().map(|&v| 0.5 * v).collect())?;
    let gamma_t = gamma.transposed();
    let x0 = p.x0().clone();
    let x0_t = x0.transposed();
    // diag(G) in transposed orientation lookup happens via index mapping in
    // half_step, so only the canonical vector is needed.

    let (mut x, _, _) = p.initial_feasible();
    let mut x_t = x.transposed();
    let mut lambda = vec![0.0; m];
    let mut mu = vec![0.0; n];

    let mut trace = opts.record_trace.then(ExecutionTrace::new);
    let mut buf_row = HalfStepBuffers {
        dev: vec![0.0; mn],
        g_dev: vec![0.0; mn],
        q: DenseMatrix::zeros(m, n)?,
        y: DenseMatrix::zeros(m, n)?,
        totals_tmp: vec![0.0; m],
        costs: Vec::new(),
    };
    let mut buf_col = HalfStepBuffers {
        dev: vec![0.0; mn],
        g_dev: vec![0.0; mn],
        q: DenseMatrix::zeros(n, m)?,
        y: DenseMatrix::zeros(n, m)?,
        totals_tmp: vec![0.0; n],
        costs: Vec::new(),
    };

    let mut outer_iterations = 0;
    let mut projection_iterations = 0;
    let mut converged = false;
    let mut outer_residual = f64::INFINITY;

    opts.parallelism.run(|| -> Result<(), SeaError> {
        let mut x_prev_outer = x.clone();
        for t in 1..=opts.max_outer {
            outer_iterations = t;

            // Row phase: general objective − Σⱼ μⱼ(Σᵢ xᵢⱼ − d⁰ⱼ), row
            // constraints only, projection to convergence.
            projection_iterations += half_step(
                p,
                &mut x,
                &x0,
                &gamma,
                &g_diag,
                &s0,
                &mu,
                &mut lambda,
                false,
                opts,
                &mut buf_row,
                &mut trace,
            )?;

            // Column phase on the transposed orientation.
            // Refresh x_t from x.
            x_t = x.transposed();
            projection_iterations += half_step(
                p,
                &mut x_t,
                &x0_t,
                &gamma_t,
                &g_diag,
                &d0,
                &lambda,
                &mut mu,
                true,
                opts,
                &mut buf_col,
                &mut trace,
            )?;
            x = x_t.transposed();

            // Outer convergence check (serial).
            let t0 = Instant::now();
            let delta = x.max_abs_diff(&x_prev_outer);
            x_prev_outer.as_mut_slice().copy_from_slice(x.as_slice());
            let secs = t0.elapsed().as_secs_f64();
            if let Some(tr) = trace.as_mut() {
                tr.push(PhaseKind::ConvergenceCheck, vec![secs]);
            }
            outer_residual = delta;
            if delta <= opts.outer_epsilon {
                converged = true;
                break;
            }
        }
        Ok(())
    })?;

    let objective = p.objective(&x, &s0, &d0);
    Ok(RcSolution {
        x,
        lambda,
        mu,
        outer_iterations,
        projection_iterations,
        converged,
        outer_residual,
        objective,
        elapsed: start.elapsed(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::general::{solve_general, GeneralSeaOptions};
    use sea_linalg::SymMatrix;

    fn dd_matrix(order: usize, diag: f64, off: f64) -> SymMatrix {
        let mut mtx = DenseMatrix::zeros(order, order).unwrap();
        for i in 0..order {
            for j in 0..order {
                mtx.set(i, j, if i == j { diag } else { -off });
            }
        }
        SymMatrix::from_dense(mtx, 1e-12).unwrap()
    }

    fn fixed_problem(off: f64) -> GeneralProblem {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        GeneralProblem::new(
            x0,
            dd_matrix(4, 10.0, off),
            GeneralTotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap()
    }

    #[test]
    fn rc_rejects_elastic_problems() {
        let x0 = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = GeneralProblem::new(
            x0,
            dd_matrix(4, 10.0, 0.5),
            GeneralTotalSpec::Elastic {
                a: dd_matrix(2, 2.0, 0.1),
                s0: vec![2.0, 2.0],
                b: dd_matrix(2, 2.0, 0.1),
                d0: vec![2.0, 2.0],
            },
        )
        .unwrap();
        assert!(solve_general_rc(&p, &RcOptions::default()).is_err());
    }

    #[test]
    fn rc_converges_and_is_feasible() {
        let p = fixed_problem(1.0);
        let sol = solve_general_rc(&p, &RcOptions::with_epsilon(1e-9)).unwrap();
        assert!(sol.converged);
        let rs = sol.x.row_sums();
        let cs = sol.x.col_sums();
        assert!((rs[0] - 4.0).abs() < 1e-6 && (rs[1] - 6.0).abs() < 1e-6);
        assert!((cs[0] - 5.0).abs() < 1e-6 && (cs[1] - 5.0).abs() < 1e-6);
        assert!(sol.x.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn rc_matches_sea_optimum() {
        let p = fixed_problem(1.5);
        let rc = solve_general_rc(&p, &RcOptions::with_epsilon(1e-10)).unwrap();
        let sea = solve_general(&p, &GeneralSeaOptions::with_epsilon(1e-10)).unwrap();
        assert!(rc.converged && sea.converged);
        assert!(
            rc.x.max_abs_diff(&sea.x) < 1e-5,
            "RC and SEA disagree by {}",
            rc.x.max_abs_diff(&sea.x)
        );
        assert!((rc.objective - sea.objective).abs() < 1e-6);
    }

    #[test]
    fn rc_does_more_projection_work_than_sea() {
        // The structural claim behind Table 7: RC pays projection
        // iterations inside *each* half step.
        let p = fixed_problem(1.0);
        let mut rc_opts = RcOptions::with_epsilon(1e-8);
        rc_opts.record_trace = true;
        let rc = solve_general_rc(&p, &rc_opts).unwrap();
        let mut sea_opts = GeneralSeaOptions::with_epsilon(1e-8);
        sea_opts.record_trace = true;
        let sea = solve_general(&p, &sea_opts).unwrap();
        let rc_mv = rc.trace.as_ref().unwrap().count(PhaseKind::Projection);
        let sea_mv = sea.trace.as_ref().unwrap().count(PhaseKind::Projection);
        assert!(
            rc_mv > sea_mv,
            "RC should need more G mat-vecs: rc={rc_mv} sea={sea_mv}"
        );
        // And more serial convergence checks.
        let rc_checks = rc
            .trace
            .as_ref()
            .unwrap()
            .count(PhaseKind::ConvergenceCheck);
        let sea_checks = sea
            .trace
            .as_ref()
            .unwrap()
            .count(PhaseKind::ConvergenceCheck);
        assert!(rc_checks > sea_checks);
    }

    #[test]
    fn rc_parallel_matches_serial() {
        let p = fixed_problem(1.0);
        let serial = solve_general_rc(&p, &RcOptions::with_epsilon(1e-9)).unwrap();
        let mut opts = RcOptions::with_epsilon(1e-9);
        opts.parallelism = Parallelism::RayonThreads(2);
        let par = solve_general_rc(&p, &opts).unwrap();
        assert!(serial.x.max_abs_diff(&par.x) < 1e-9);
    }
}
