//! The Bachem–Korte (1978) algorithm for quadratic optimization over
//! transportation polytopes, realized as **Frank–Wolfe (conditional
//! gradient) with exact transportation-LP subproblems** — the standard
//! 1970s technology for quadratic programs whose feasible set admits a
//! fast linear oracle (see DESIGN.md substitution S3).
//!
//! Each iteration linearizes the quadratic objective at the current
//! feasible point, solves the resulting *linear* transportation problem
//! exactly with the [`crate::transport_lp`] simplex, and takes the optimal
//! quadratic step toward the LP vertex. Iterates are always feasible
//! (margins hold exactly, entries nonnegative) and the Frank–Wolfe gap
//! `∇f(x)ᵀ(x − y)` certifies optimality.
//!
//! The method's **sublinear O(1/k) rate** — thousands of LP solves to reach
//! the paper's ε′ = .001 — is precisely why Table 7 shows B-K one to two
//! orders of magnitude behind SEA and why the paper abandoned it beyond
//! `G = 900×900` ("prohibitively expensive"). For **general** problems the
//! comparison wraps the diagonal kernel in the same Dafermos
//! diagonalization outer loop used by SEA and RC ([`solve_general_bk`]).

use crate::transport_lp::TransportSolver;
use sea_core::general::{GeneralProblem, GeneralTotalSpec};
use sea_core::problem::{DiagonalProblem, TotalSpec};
use sea_core::SeaError;
use sea_linalg::DenseMatrix;
use std::time::{Duration, Instant};

/// Stopping rule for the Frank–Wolfe iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BkCriterion {
    /// Stop when `maxₖ |xₖ⁺¹ − xₖ| ≤ ε` — the criterion the paper applies
    /// uniformly to B-K, RC, and SEA ("the same convergence criterion was
    /// used ... with ε′ = .001").
    IterateChange,
    /// Stop when the relative Frank–Wolfe gap
    /// `∇f(x)ᵀ(x − y)/max(f(x),1) ≤ ε` — a certified optimality gap,
    /// much more expensive for a sublinear method.
    RelativeGap,
}

/// Options for the B-K solvers.
#[derive(Debug, Clone)]
pub struct BkOptions {
    /// Stopping tolerance (see [`BkCriterion`]).
    pub epsilon: f64,
    /// Which stopping rule to apply.
    pub criterion: BkCriterion,
    /// Cap on Frank–Wolfe iterations (LP solves) per diagonal solve.
    pub max_iterations: usize,
    /// Outer (diagonalization) tolerance for [`solve_general_bk`].
    pub outer_epsilon: f64,
    /// Cap on outer iterations for [`solve_general_bk`].
    pub max_outer: usize,
}

impl Default for BkOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-6,
            criterion: BkCriterion::IterateChange,
            max_iterations: 500_000,
            outer_epsilon: 1e-6,
            max_outer: 200,
        }
    }
}

impl BkOptions {
    /// Paper-style options at tolerance `eps`.
    pub fn with_epsilon(eps: f64) -> Self {
        Self {
            epsilon: eps,
            outer_epsilon: eps,
            ..Self::default()
        }
    }
}

/// Result of a B-K solve.
#[derive(Debug, Clone)]
pub struct BkSolution {
    /// The estimate (always exactly feasible).
    pub x: DenseMatrix,
    /// Frank–Wolfe iterations = transportation LP solves (summed over the
    /// outer loop for general problems).
    pub sweeps: usize,
    /// Outer diagonalization iterations (1 for diagonal problems).
    pub outer_iterations: usize,
    /// Whether the gap tolerance was met.
    pub converged: bool,
    /// Final relative Frank–Wolfe gap.
    pub residual: f64,
    /// Objective value of the posed problem.
    pub objective: f64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

/// Frank–Wolfe on `min Σ γ_k (x_k − q_k)²` over the transportation
/// polytope `{margins (s⁰, d⁰), x ≥ 0}`. Returns
/// `(x, lp_solves, converged, relative gap)`.
fn frank_wolfe(
    q: &DenseMatrix,
    gamma: &DenseMatrix,
    s0: &[f64],
    d0: &[f64],
    opts: &BkOptions,
    warm_start: Option<DenseMatrix>,
) -> Result<(DenseMatrix, usize, bool, f64), SeaError> {
    let (m, n) = (q.rows(), q.cols());
    let total: f64 = s0.iter().sum();

    // Feasible start: proportional fill (or the caller's warm start).
    let mut x = match warm_start {
        Some(x) => x,
        None => {
            let mut x = DenseMatrix::zeros(m, n)?;
            if total > 0.0 {
                for i in 0..m {
                    let row = x.row_mut(i);
                    for (j, r) in row.iter_mut().enumerate() {
                        *r = s0[i] * d0[j] / total;
                    }
                }
            }
            x
        }
    };

    let mut lp_solver = TransportSolver::new(s0, d0)?;
    let mut grad = DenseMatrix::zeros(m, n)?;
    let mut y = DenseMatrix::zeros(m, n)?;
    let mut converged = false;
    let mut rel_gap = f64::INFINITY;
    let mut iters = 0usize;

    for t in 1..=opts.max_iterations {
        iters = t;
        // ∇f(x) = 2γ ⊙ (x − q).
        for ((g, &xv), (&qv, &gv)) in grad
            .as_mut_slice()
            .iter_mut()
            .zip(x.as_slice())
            .zip(q.as_slice().iter().zip(gamma.as_slice()))
        {
            *g = 2.0 * gv * (xv - qv);
        }
        // Linear oracle: exact transportation simplex, warm-started from
        // the previous iteration's basis (allocation-free).
        lp_solver.solve_into(&grad, &mut y)?;
        // Direction d = y − x; FW gap = −∇fᵀd = ∇fᵀ(x − y) ≥ 0.
        let mut gap = 0.0;
        let mut gtd = 0.0;
        let mut dgd = 0.0; // Σ γ d².
        for k in 0..m * n {
            let d = y.as_slice()[k] - x.as_slice()[k];
            let g = grad.as_slice()[k];
            gtd += g * d;
            gap -= g * d;
            dgd += gamma.as_slice()[k] * d * d;
        }
        // Objective scale for the relative gap.
        let f: f64 = x
            .as_slice()
            .iter()
            .zip(q.as_slice().iter().zip(gamma.as_slice()))
            .map(|(&xv, (&qv, &gv))| gv * (xv - qv) * (xv - qv))
            .sum();
        rel_gap = gap / f.abs().max(1.0);
        if opts.criterion == BkCriterion::RelativeGap && rel_gap <= opts.epsilon {
            converged = true;
            break;
        }
        // Exact line search for the quadratic: τ* = −∇fᵀd / (2 Σ γ d²).
        let tau = if dgd > 0.0 {
            (-gtd / (2.0 * dgd)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        if tau == 0.0 {
            // Already at a vertex-optimal point for this direction.
            converged = opts.criterion == BkCriterion::IterateChange;
            break;
        }
        let mut step_inf: f64 = 0.0;
        for (xv, &yv) in x.as_mut_slice().iter_mut().zip(y.as_slice()) {
            let dx = tau * (yv - *xv);
            step_inf = step_inf.max(dx.abs());
            *xv += dx;
        }
        if opts.criterion == BkCriterion::IterateChange && step_inf <= opts.epsilon {
            converged = true;
            break;
        }
    }
    Ok((x, iters, converged, rel_gap))
}

/// Solve a **fixed-totals diagonal** problem with B-K (Frank–Wolfe over
/// the transportation polytope).
///
/// # Errors
/// [`SeaError::Shape`] if the problem is not of the fixed-totals class;
/// propagated LP failures.
pub fn solve_diagonal_bk(p: &DiagonalProblem, opts: &BkOptions) -> Result<BkSolution, SeaError> {
    let (s0, d0) = match p.totals() {
        TotalSpec::Fixed { s0, d0 } => (s0.clone(), d0.clone()),
        _ => {
            return Err(SeaError::Shape {
                context: "B-K requires fixed totals",
                expected: 0,
                actual: 1,
            })
        }
    };
    let start = Instant::now();
    let (x, sweeps, converged, residual) = frank_wolfe(p.x0(), p.gamma(), &s0, &d0, opts, None)?;
    let objective = p.objective(&x, &s0, &d0);
    Ok(BkSolution {
        x,
        sweeps,
        outer_iterations: 1,
        converged,
        residual,
        objective,
        elapsed: start.elapsed(),
    })
}

/// Solve a **general fixed-totals** problem with B-K inside a Dafermos
/// diagonalization outer loop (the wrapper the paper's comparison uses).
///
/// # Errors
/// [`SeaError::Shape`] for non-fixed totals; propagated failures.
pub fn solve_general_bk(p: &GeneralProblem, opts: &BkOptions) -> Result<BkSolution, SeaError> {
    let (s0, d0) = match p.totals() {
        GeneralTotalSpec::Fixed { s0, d0 } => (s0.clone(), d0.clone()),
        _ => {
            return Err(SeaError::Shape {
                context: "B-K requires fixed totals",
                expected: 0,
                actual: 1,
            })
        }
    };
    let start = Instant::now();
    let (m, n) = (p.m(), p.n());
    let mn = m * n;
    let g_diag = p.g().diagonal();
    let gamma = DenseMatrix::from_vec(m, n, g_diag.iter().map(|&v| 0.5 * v).collect())?;

    let (mut x, _, _) = p.initial_feasible();
    let mut sweeps_total = 0;
    let mut outer_iterations = 0;
    let mut converged = false;
    let mut residual = f64::INFINITY;
    let mut dev = vec![0.0; mn];
    let mut g_dev = vec![0.0; mn];

    for t in 1..=opts.max_outer {
        outer_iterations = t;
        for (dv, (a, b)) in dev
            .iter_mut()
            .zip(x.as_slice().iter().zip(p.x0().as_slice()))
        {
            *dv = a - b;
        }
        p.g().matvec(&dev, &mut g_dev).expect("validated dims");
        let q_flat: Vec<f64> = (0..mn)
            .map(|k| x.as_slice()[k] - g_dev[k] / g_diag[k])
            .collect();
        let q = DenseMatrix::from_vec(m, n, q_flat)?;

        // Warm-start each inner solve from the current feasible iterate.
        let (x_new, sweeps, _ok, _res) = frank_wolfe(&q, &gamma, &s0, &d0, opts, Some(x.clone()))?;
        sweeps_total += sweeps;
        let delta = x_new.max_abs_diff(&x);
        x = x_new;
        residual = delta;
        if delta <= opts.outer_epsilon {
            converged = true;
            break;
        }
    }

    let objective = p.objective(&x, &s0, &d0);
    Ok(BkSolution {
        x,
        sweeps: sweeps_total,
        outer_iterations,
        converged,
        residual,
        objective,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::{solve_diagonal, SeaOptions};
    use sea_linalg::SymMatrix;

    fn diagonal_problem() -> DiagonalProblem {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        gamma.set(0, 0, 3.0);
        gamma.set(1, 1, 0.5);
        DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap()
    }

    #[test]
    fn bk_rejects_elastic() {
        let x0 = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Elastic {
                alpha: vec![1.0; 2],
                s0: vec![2.0; 2],
                beta: vec![1.0; 2],
                d0: vec![2.0; 2],
            },
        )
        .unwrap();
        assert!(solve_diagonal_bk(&p, &BkOptions::default()).is_err());
    }

    #[test]
    fn bk_matches_sea_on_diagonal_problem() {
        let p = diagonal_problem();
        let bk = solve_diagonal_bk(&p, &BkOptions::with_epsilon(1e-8)).unwrap();
        let sea = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        assert!(bk.converged);
        assert!(
            bk.x.max_abs_diff(&sea.x) < 1e-3,
            "B-K and SEA disagree by {}",
            bk.x.max_abs_diff(&sea.x)
        );
        // Objectives agree much more tightly than iterates (FW is flat
        // near the optimum).
        assert!((bk.objective - sea.stats.objective).abs() < 1e-6 * sea.stats.objective.max(1.0));
    }

    #[test]
    fn bk_iterates_stay_feasible() {
        let p = diagonal_problem();
        let bk = solve_diagonal_bk(&p, &BkOptions::with_epsilon(1e-6)).unwrap();
        let rs = bk.x.row_sums();
        let cs = bk.x.col_sums();
        assert!((rs[0] - 4.0).abs() < 1e-9);
        assert!((rs[1] - 6.0).abs() < 1e-9);
        assert!((cs[0] - 5.0).abs() < 1e-9);
        assert!(bk.x.as_slice().iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn bk_needs_far_more_iterations_than_sea() {
        // The Table 7 story in miniature: same optimum, orders of
        // magnitude more work at a tight tolerance.
        let x0 = DenseMatrix::from_rows(&[
            vec![10.0, 1.0, 5.0],
            vec![1.0, 8.0, 2.0],
            vec![4.0, 2.0, 9.0],
        ])
        .unwrap();
        let mut gamma = DenseMatrix::filled(3, 3, 1.0).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                gamma.set(i, j, 1.0 / x0.get(i, j));
            }
        }
        let row_growth = [2.0, 0.6, 1.3];
        let s0: Vec<f64> = x0
            .row_sums()
            .iter()
            .zip(row_growth)
            .map(|(v, g)| g * v)
            .collect();
        let col_growth = [0.7, 1.8, 1.1];
        let mut d0: Vec<f64> = x0
            .col_sums()
            .iter()
            .zip(col_growth)
            .map(|(v, g)| g * v)
            .collect();
        let scale: f64 = s0.iter().sum::<f64>() / d0.iter().sum::<f64>();
        for v in &mut d0 {
            *v *= scale;
        }
        let p = DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 }).unwrap();
        // Frank-Wolfe's O(1/k) rate means even 1e-4 relative gap takes
        // hundreds to thousands of LP solves.
        let bk = solve_diagonal_bk(&p, &BkOptions::with_epsilon(1e-4)).unwrap();
        let sea = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-6)).unwrap();
        assert!(bk.converged && sea.stats.converged);
        assert!(
            bk.sweeps > 10 * sea.stats.iterations,
            "expected B-K ({}) to need far more iterations than SEA ({})",
            bk.sweeps,
            sea.stats.iterations
        );
    }

    #[test]
    fn general_bk_matches_general_sea() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut g = DenseMatrix::zeros(4, 4).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                g.set(i, j, if i == j { 10.0 } else { -1.0 });
            }
        }
        let p = GeneralProblem::new(
            x0,
            SymMatrix::from_dense(g, 1e-12).unwrap(),
            GeneralTotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let bk = solve_general_bk(&p, &BkOptions::with_epsilon(1e-7)).unwrap();
        let sea =
            sea_core::solve_general(&p, &sea_core::GeneralSeaOptions::with_epsilon(1e-9)).unwrap();
        assert!(bk.converged);
        assert!(
            bk.x.max_abs_diff(&sea.x) < 1e-3,
            "disagreement {}",
            bk.x.max_abs_diff(&sea.x)
        );
        assert!((bk.objective - sea.objective).abs() < 1e-4 * sea.objective.max(1.0));
    }
}
