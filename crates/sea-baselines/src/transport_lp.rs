//! Exact transportation-problem LP solver (the classical transportation
//! simplex / MODI method).
//!
//! Solves `min Σᵢⱼ cᵢⱼ xᵢⱼ` subject to `Σⱼ xᵢⱼ = aᵢ`, `Σᵢ xᵢⱼ = bⱼ`,
//! `x ≥ 0` with `Σa = Σb`. This is the linear subproblem of the
//! Frank–Wolfe realization of the Bachem–Korte (1978) comparator: 1970s QP
//! technology attacked quadratic transportation problems by repeated
//! linearization, and the linear transportation problem was *the* problem
//! the simplex specialization of Dantzig (northwest-corner start, basis
//! tree, u–v duals, cycle pivots) was built for.
//!
//! The implementation maintains the basis as a spanning tree over the
//! `m + n` row/column nodes, computes duals by tree traversal, prices out
//! the entering cell, and pivots around the unique basis cycle. Degeneracy
//! is handled by keeping exactly `m + n − 1` basic cells (zero flows
//! allowed) with a deterministic leaving rule plus an iteration cap.

use sea_core::SeaError;
use sea_linalg::DenseMatrix;

/// Result of a transportation LP solve.
#[derive(Debug, Clone)]
pub struct TransportSolution {
    /// Optimal flows (m×n).
    pub x: DenseMatrix,
    /// Row duals `u`.
    pub u: Vec<f64>,
    /// Column duals `v`.
    pub v: Vec<f64>,
    /// Optimal objective `cᵀx`.
    pub objective: f64,
    /// Simplex pivots performed.
    pub pivots: usize,
}

/// Tolerance for reduced-cost optimality (relative to the cost scale).
const PRICE_TOL: f64 = 1e-10;

/// A reusable transportation solver bound to fixed margins.
///
/// Frank–Wolfe solves thousands of transportation LPs whose costs change
/// only gradually while the margins stay fixed — exactly the situation
/// the transportation simplex warm-starts beautifully: the previous basis
/// remains primal feasible for the new costs, so re-optimization takes a
/// handful of pivots instead of a cold start.
pub struct TransportSolver {
    supply: Vec<f64>,
    demand: Vec<f64>,
    state: Basis,
    u: Vec<f64>,
    v: Vec<f64>,
}

impl TransportSolver {
    /// Create a solver for the given margins.
    ///
    /// # Errors
    /// * [`SeaError::InconsistentTotals`] if `Σa ≠ Σb`.
    /// * [`SeaError::NegativeTotal`] for negative supplies/demands.
    /// * [`SeaError::Shape`] for empty margins.
    pub fn new(supply: &[f64], demand: &[f64]) -> Result<Self, SeaError> {
        let (m, n) = (supply.len(), demand.len());
        if m == 0 || n == 0 {
            return Err(SeaError::Shape {
                context: "transport margins",
                expected: 1,
                actual: 0,
            });
        }
        for (i, &s) in supply.iter().enumerate() {
            if s < 0.0 {
                return Err(SeaError::NegativeTotal {
                    side: "row",
                    index: i,
                    value: s,
                });
            }
        }
        for (j, &d) in demand.iter().enumerate() {
            if d < 0.0 {
                return Err(SeaError::NegativeTotal {
                    side: "column",
                    index: j,
                    value: d,
                });
            }
        }
        let sa: f64 = supply.iter().sum();
        let sb: f64 = demand.iter().sum();
        if (sa - sb).abs() > 1e-9 * sa.abs().max(sb.abs()).max(1.0) {
            return Err(SeaError::InconsistentTotals {
                row_total: sa,
                col_total: sb,
            });
        }
        let state = Basis::northwest(supply, demand);
        Ok(Self {
            supply: supply.to_vec(),
            demand: demand.to_vec(),
            state,
            u: vec![0.0; m],
            v: vec![0.0; n],
        })
    }

    /// Solve for the given costs, warm-starting from the current basis.
    ///
    /// # Errors
    /// * [`SeaError::Shape`] on cost-matrix shape mismatch.
    /// * [`SeaError::NumericalBreakdown`] if the pivot cap is hit.
    pub fn solve(&mut self, cost: &DenseMatrix) -> Result<TransportSolution, SeaError> {
        let (m, n) = (self.supply.len(), self.demand.len());
        if cost.rows() != m || cost.cols() != n {
            return Err(SeaError::Shape {
                context: "transport cost shape",
                expected: m * n,
                actual: cost.rows() * cost.cols(),
            });
        }
        let cost_scale = cost
            .as_slice()
            .iter()
            .fold(1.0_f64, |acc, &c| acc.max(c.abs()));
        let tol = PRICE_TOL * cost_scale;

        // Generous pivot cap: transportation problems almost always finish
        // in O(m·n) pivots; the cap only guards against degenerate cycling.
        let cap = 50 * (m + n) * (m + n) + 1000;
        let mut pivots = 0usize;

        loop {
            self.state.compute_duals(cost, &mut self.u, &mut self.v);
            // Price out: most negative reduced cost.
            let mut best = (usize::MAX, usize::MAX);
            let mut best_r = -tol;
            for i in 0..m {
                let crow = cost.row(i);
                for j in 0..n {
                    if !self.state.is_basic(i, j) {
                        let r = crow[j] - self.u[i] - self.v[j];
                        if r < best_r {
                            best_r = r;
                            best = (i, j);
                        }
                    }
                }
            }
            if best.0 == usize::MAX {
                break; // optimal
            }
            pivots += 1;
            if pivots > cap {
                return Err(SeaError::NumericalBreakdown { iteration: pivots });
            }
            self.state.pivot(best.0, best.1);
        }

        let x = self.state.flows_matrix(m, n);
        let objective = x
            .as_slice()
            .iter()
            .zip(cost.as_slice())
            .map(|(x, c)| x * c)
            .sum();
        Ok(TransportSolution {
            x,
            u: self.u.clone(),
            v: self.v.clone(),
            objective,
            pivots,
        })
    }

    /// Allocation-free variant of [`TransportSolver::solve`]: writes the
    /// optimal flows into `x_out` and returns the pivot count. Used by the
    /// Frank–Wolfe hot loop.
    ///
    /// # Errors
    /// Same as [`TransportSolver::solve`].
    pub fn solve_into(
        &mut self,
        cost: &DenseMatrix,
        x_out: &mut DenseMatrix,
    ) -> Result<usize, SeaError> {
        let (m, n) = (self.supply.len(), self.demand.len());
        if cost.rows() != m || cost.cols() != n || x_out.rows() != m || x_out.cols() != n {
            return Err(SeaError::Shape {
                context: "transport solve_into shape",
                expected: m * n,
                actual: cost.rows() * cost.cols(),
            });
        }
        let cost_scale = cost
            .as_slice()
            .iter()
            .fold(1.0_f64, |acc, &c| acc.max(c.abs()));
        let tol = PRICE_TOL * cost_scale;
        let cap = 50 * (m + n) * (m + n) + 1000;
        let mut pivots = 0usize;
        loop {
            self.state.compute_duals(cost, &mut self.u, &mut self.v);
            let mut best = (usize::MAX, usize::MAX);
            let mut best_r = -tol;
            for i in 0..m {
                let crow = cost.row(i);
                for j in 0..n {
                    if !self.state.is_basic(i, j) {
                        let r = crow[j] - self.u[i] - self.v[j];
                        if r < best_r {
                            best_r = r;
                            best = (i, j);
                        }
                    }
                }
            }
            if best.0 == usize::MAX {
                break;
            }
            pivots += 1;
            if pivots > cap {
                return Err(SeaError::NumericalBreakdown { iteration: pivots });
            }
            self.state.pivot(best.0, best.1);
        }
        x_out.as_mut_slice().fill(0.0);
        for &(i, j, f) in &self.state.cells {
            x_out.set(i as usize, j as usize, f.max(0.0));
        }
        Ok(pivots)
    }
}

/// Solve one transportation problem from a cold start.
///
/// ```
/// use sea_baselines::transport_lp::solve_transport;
/// use sea_linalg::DenseMatrix;
///
/// // Ship 10 units; the diagonal is cheap, so everything stays local.
/// let cost = DenseMatrix::from_rows(&[vec![1.0, 9.0], vec![9.0, 1.0]]).unwrap();
/// let sol = solve_transport(&cost, &[5.0, 5.0], &[5.0, 5.0]).unwrap();
/// assert_eq!(sol.objective, 10.0);
/// assert_eq!(sol.x.get(0, 0), 5.0);
/// ```
///
/// # Errors
/// See [`TransportSolver::new`] and [`TransportSolver::solve`], plus
/// [`SeaError::Shape`] for dimension mismatches.
pub fn solve_transport(
    cost: &DenseMatrix,
    supply: &[f64],
    demand: &[f64],
) -> Result<TransportSolution, SeaError> {
    if supply.len() != cost.rows() {
        return Err(SeaError::Shape {
            context: "transport supply",
            expected: cost.rows(),
            actual: supply.len(),
        });
    }
    if demand.len() != cost.cols() {
        return Err(SeaError::Shape {
            context: "transport demand",
            expected: cost.cols(),
            actual: demand.len(),
        });
    }
    TransportSolver::new(supply, demand)?.solve(cost)
}

/// Basis: a spanning tree over `m + n` nodes (rows `0..m`, columns
/// `m..m+n`) whose edges are the `m + n − 1` basic cells.
struct Basis {
    m: usize,
    n: usize,
    /// Adjacency: for each node, (neighbor node, flow index into `cells`).
    adj: Vec<Vec<(u32, u32)>>,
    /// Basic cells as (i, j, flow).
    cells: Vec<(u32, u32, f64)>,
}

impl Basis {
    /// Northwest-corner initial basic feasible solution.
    fn northwest(supply: &[f64], demand: &[f64]) -> Self {
        let (m, n) = (supply.len(), demand.len());
        let mut a = supply.to_vec();
        let mut b = demand.to_vec();
        let mut cells: Vec<(u32, u32, f64)> = Vec::with_capacity(m + n - 1);
        let (mut i, mut j) = (0usize, 0usize);
        while i < m && j < n {
            let q = a[i].min(b[j]);
            cells.push((i as u32, j as u32, q));
            a[i] -= q;
            b[j] -= q;
            // Advance along the smaller residual; on ties advance the row
            // only, keeping the basis at exactly m+n−1 cells.
            if i == m - 1 && j == n - 1 {
                break;
            }
            if a[i] <= b[j] && i < m - 1 {
                i += 1;
            } else if j < n - 1 {
                j += 1;
            } else {
                i += 1;
            }
        }
        debug_assert_eq!(cells.len(), m + n - 1, "NW corner must give a tree");
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); m + n];
        for (k, &(ci, cj, _)) in cells.iter().enumerate() {
            adj[ci as usize].push(((m as u32) + cj, k as u32));
            adj[m + cj as usize].push((ci, k as u32));
        }
        Self { m, n, adj, cells }
    }

    fn is_basic(&self, i: usize, j: usize) -> bool {
        let target = (self.m + j) as u32;
        self.adj[i].iter().any(|&(nb, _)| nb == target)
    }

    /// Solve `uᵢ + vⱼ = cᵢⱼ` over the basis tree (BFS from row 0, u₀ = 0).
    fn compute_duals(&self, cost: &DenseMatrix, u: &mut [f64], v: &mut [f64]) {
        let total = self.m + self.n;
        let mut known = vec![false; total];
        let mut stack = Vec::with_capacity(total);
        u[0] = 0.0;
        known[0] = true;
        stack.push(0usize);
        while let Some(node) = stack.pop() {
            for &(nb, cell) in &self.adj[node] {
                let nb = nb as usize;
                if !known[nb] {
                    known[nb] = true;
                    let (ci, cj, _) = self.cells[cell as usize];
                    let c = cost.get(ci as usize, cj as usize);
                    if nb >= self.m {
                        // nb is a column: v_j = c − u_i.
                        v[nb - self.m] = c - u[ci as usize];
                    } else {
                        // nb is a row: u_i = c − v_j.
                        u[nb] = c - v[cj as usize];
                    }
                    stack.push(nb);
                }
            }
        }
    }

    /// Path from `from` to `to` in the basis tree, as a list of cell
    /// indices.
    fn tree_path(&self, from: usize, to: usize) -> Vec<u32> {
        let total = self.m + self.n;
        let mut parent_edge: Vec<u32> = vec![u32::MAX; total];
        let mut parent_node: Vec<u32> = vec![u32::MAX; total];
        let mut visited = vec![false; total];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(node) = queue.pop_front() {
            if node == to {
                break;
            }
            for &(nb, cell) in &self.adj[node] {
                let nb = nb as usize;
                if !visited[nb] {
                    visited[nb] = true;
                    parent_edge[nb] = cell;
                    parent_node[nb] = node as u32;
                    queue.push_back(nb);
                }
            }
        }
        debug_assert!(visited[to], "basis must be a connected tree");
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            path.push(parent_edge[cur]);
            cur = parent_node[cur] as usize;
        }
        path.reverse();
        path
    }

    /// Pivot: bring cell `(ei, ej)` into the basis around the unique cycle.
    fn pivot(&mut self, ei: usize, ej: usize) {
        // Cycle = entering edge (row ei → col ej) + tree path col ej → row ei.
        // Orientation: traversing the cycle starting with the entering edge,
        // edges alternate +, −, +, − … where the sign of a tree edge is +
        // when traversed row→col (same direction as the entering edge).
        let path = self.tree_path(self.m + ej, ei);
        // Walk the path keeping node orientation.
        let mut signs: Vec<f64> = Vec::with_capacity(path.len());
        let mut at = self.m + ej; // current node
        for &cell in &path {
            let (ci, cj, _) = self.cells[cell as usize];
            let (ri, cjn) = (ci as usize, self.m + cj as usize);
            // Entering edge goes row→col; the next edge leaves the column,
            // i.e. col→row, which is a − edge; signs alternate from there,
            // but orientation handles irregular paths robustly:
            let sign = if at == cjn {
                // Traversing col → row: this tree edge is a "−" position.
                at = ri;
                -1.0
            } else {
                // Traversing row → col: a "+" position.
                at = cjn;
                1.0
            };
            signs.push(sign);
        }
        // θ = min flow over the − edges.
        let mut theta = f64::INFINITY;
        let mut leaving: usize = usize::MAX;
        for (k, &cell) in path.iter().enumerate() {
            if signs[k] < 0.0 {
                let flow = self.cells[cell as usize].2;
                if flow < theta {
                    theta = flow;
                    leaving = cell as usize;
                }
            }
        }
        debug_assert!(leaving != usize::MAX, "cycle must contain a minus edge");
        // Apply the flow change.
        for (k, &cell) in path.iter().enumerate() {
            self.cells[cell as usize].2 += signs[k] * theta;
        }
        // Replace the leaving cell with the entering cell (reuse the slot).
        let (li, lj, _) = self.cells[leaving];
        self.detach(li as usize, self.m + lj as usize, leaving as u32);
        self.cells[leaving] = (ei as u32, ej as u32, theta);
        self.adj[ei].push(((self.m + ej) as u32, leaving as u32));
        self.adj[self.m + ej].push((ei as u32, leaving as u32));
    }

    fn detach(&mut self, a: usize, b: usize, cell: u32) {
        self.adj[a].retain(|&(_, c)| c != cell);
        self.adj[b].retain(|&(_, c)| c != cell);
    }

    fn flows_matrix(&self, m: usize, n: usize) -> DenseMatrix {
        let mut x = DenseMatrix::zeros(m, n).expect("nonempty");
        for &(i, j, f) in &self.cells {
            // Clamp the tiny negatives degeneracy can leave behind.
            x.set(i as usize, j as usize, f.max(0.0));
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_optimal(cost: &DenseMatrix, supply: &[f64], demand: &[f64], sol: &TransportSolution) {
        let (m, n) = (cost.rows(), cost.cols());
        // Primal feasibility.
        let rs = sol.x.row_sums();
        let cs = sol.x.col_sums();
        let scale: f64 = supply.iter().sum::<f64>().max(1.0);
        for i in 0..m {
            assert!((rs[i] - supply[i]).abs() / scale < 1e-9, "row {i}");
        }
        for j in 0..n {
            assert!((cs[j] - demand[j]).abs() / scale < 1e-9, "col {j}");
        }
        assert!(sol.x.as_slice().iter().all(|&v| v >= 0.0));
        // Dual feasibility + complementary slackness ⇒ LP optimality.
        let cscale = cost.as_slice().iter().fold(1.0_f64, |a, &c| a.max(c.abs()));
        for i in 0..m {
            for j in 0..n {
                let r = cost.get(i, j) - sol.u[i] - sol.v[j];
                assert!(r >= -1e-8 * cscale, "dual infeasible at ({i},{j}): {r}");
                if sol.x.get(i, j) > 1e-9 * scale {
                    assert!(r.abs() <= 1e-7 * cscale, "slackness at ({i},{j}): {r}");
                }
            }
        }
    }

    #[test]
    fn solves_textbook_example() {
        // Classic 3x3: optimal cost known by hand.
        let cost = DenseMatrix::from_rows(&[
            vec![4.0, 6.0, 8.0],
            vec![5.0, 3.0, 7.0],
            vec![6.0, 4.0, 2.0],
        ])
        .unwrap();
        let supply = [20.0, 30.0, 50.0];
        let demand = [40.0, 30.0, 30.0];
        let sol = solve_transport(&cost, &supply, &demand).unwrap();
        check_optimal(&cost, &supply, &demand, &sol);
        // Greedy inspection: ship 20@4, then 20@5 + 10@3, then 20@4+30@2…
        // the solver's certified optimum:
        let brute = brute_force_min(&cost, &supply, &demand);
        assert!(
            (sol.objective - brute).abs() < 1e-6,
            "{} vs {brute}",
            sol.objective
        );
    }

    /// Tiny-instance brute force: solve by enumerating vertices via
    /// repeated LP relaxation is overkill; instead verify against a fine
    /// grid search over the 2 free variables of a 2x2, and against a
    /// direct simplex on small random instances through duality (already
    /// checked). For 3x3 use a coarse random search refined locally.
    fn brute_force_min(cost: &DenseMatrix, supply: &[f64], demand: &[f64]) -> f64 {
        // Monte-Carlo + projection: sample many feasible points via random
        // vertex-ish greedy fills over random cost perturbations; the
        // minimum over samples upper-bounds the optimum and equals it with
        // high probability for small instances (vertices are greedy fills
        // of *some* cost ordering).
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let (m, n) = (cost.rows(), cost.cols());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let mut cells: Vec<(usize, usize)> =
            (0..m).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
        let mut best = f64::INFINITY;
        for _ in 0..2000 {
            cells.shuffle(&mut rng);
            let mut a = supply.to_vec();
            let mut b = demand.to_vec();
            let mut obj = 0.0;
            for &(i, j) in &cells {
                let q = a[i].min(b[j]);
                if q > 0.0 {
                    obj += q * cost.get(i, j);
                    a[i] -= q;
                    b[j] -= q;
                }
            }
            if a.iter().all(|&v| v.abs() < 1e-9) {
                best = best.min(obj);
            }
        }
        best
    }

    #[test]
    fn handles_degenerate_supplies() {
        let cost = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]).unwrap();
        // Degenerate: supplies/demands force zero basic flows.
        let supply = [10.0, 10.0];
        let demand = [10.0, 10.0];
        let sol = solve_transport(&cost, &supply, &demand).unwrap();
        check_optimal(&cost, &supply, &demand, &sol);
        assert!((sol.objective - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_supply_rows_are_fine() {
        let cost = DenseMatrix::from_rows(&[vec![5.0, 1.0], vec![2.0, 4.0]]).unwrap();
        let supply = [0.0, 10.0];
        let demand = [4.0, 6.0];
        let sol = solve_transport(&cost, &supply, &demand).unwrap();
        check_optimal(&cost, &supply, &demand, &sol);
        assert_eq!(sol.x.row_sums()[0], 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let cost = DenseMatrix::filled(2, 2, 1.0).unwrap();
        assert!(solve_transport(&cost, &[1.0], &[1.0, 0.0]).is_err());
        assert!(solve_transport(&cost, &[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(solve_transport(&cost, &[-1.0, 3.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn negative_costs_are_supported() {
        // Frank–Wolfe gradients can be negative.
        let cost = DenseMatrix::from_rows(&[vec![-3.0, 2.0], vec![1.0, -4.0]]).unwrap();
        let supply = [5.0, 5.0];
        let demand = [5.0, 5.0];
        let sol = solve_transport(&cost, &supply, &demand).unwrap();
        check_optimal(&cost, &supply, &demand, &sol);
        // Clearly optimal: ship everything on the negative arcs.
        assert!((sol.x.get(0, 0) - 5.0).abs() < 1e-9);
        assert!((sol.x.get(1, 1) - 5.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_instances_reach_certified_optimality(
            m in 1usize..7,
            n in 1usize..7,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let cost = DenseMatrix::from_vec(m, n,
                (0..m*n).map(|_| rng.random_range(-10.0..10.0)).collect()).unwrap();
            let supply: Vec<f64> = (0..m).map(|_| rng.random_range(0.0..20.0)).collect();
            let total: f64 = supply.iter().sum();
            let mut demand: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..20.0)).collect();
            let dt: f64 = demand.iter().sum();
            for d in &mut demand { *d *= total / dt; }
            let sol = solve_transport(&cost, &supply, &demand).unwrap();
            // Optimality via duality & slackness.
            let scale = total.max(1.0);
            let rs = sol.x.row_sums();
            for i in 0..m {
                prop_assert!((rs[i] - supply[i]).abs() / scale < 1e-8);
            }
            let cscale = cost.as_slice().iter().fold(1.0_f64, |a, &c| a.max(c.abs()));
            for i in 0..m {
                for j in 0..n {
                    let r = cost.get(i, j) - sol.u[i] - sol.v[j];
                    prop_assert!(r >= -1e-7 * cscale);
                    if sol.x.get(i, j) > 1e-8 * scale {
                        prop_assert!(r.abs() <= 1e-6 * cscale);
                    }
                }
            }
        }
    }
}
