//! # sea-baselines — comparator algorithms for constrained matrix problems
//!
//! The algorithms the paper evaluates SEA against, plus the RAS method its
//! introduction positions SEA as superseding:
//!
//! * [`rc`] — the **RC equilibration algorithm** of Nagurney, Kim &
//!   Robinson (1990). For general problems RC nests the splitting the other
//!   way around from SEA: the dual row/column alternation is *outside* and
//!   the projection (diagonalization) method runs to convergence *inside*
//!   each half-step, paying one dense `G` mat-vec plus one serial
//!   convergence verification per projection iteration (Fig. 6). For
//!   diagonal problems RC coincides with diagonal SEA (§3.1.3).
//! * [`bachem_korte`] — the **B-K algorithm** (Bachem & Korte 1978) for
//!   quadratic optimization over transportation polytopes, realized here as
//!   Frank–Wolfe with exact transportation-LP subproblems (see DESIGN.md
//!   substitution S3): era-faithful, exactly feasible iterates, and a
//!   sublinear rate that makes it one to two orders of magnitude slower
//!   than SEA on the paper's dense instances — the Table 7 gap.
//! * [`transport_lp`] — the classical **transportation simplex** (MODI)
//!   solving B-K's linear subproblems exactly; a reusable substrate in its
//!   own right.
//! * [`projections`] — **Dykstra's alternating weighted projections**, an
//!   additional primal baseline for the fixed-totals class.
//! * [`ras`] — the **RAS / iterative proportional fitting** method of
//!   Deming & Stephan (1940): the most widely used practical method, with
//!   the non-convergence failure modes (Mohr, Crown & Polenske 1987) that
//!   motivate a robust quadratic approach.

// Numeric-kernel idioms: indexed loops over multiple parallel arrays are
// clearer than zipped iterator chains in the equilibration math, and
// `!(w > 0.0)` deliberately treats NaN as invalid (a positive-weight check
// that `w <= 0.0` would pass NaN through).
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod bachem_korte;
pub mod projections;
pub mod ras;
pub mod rc;
pub mod transport_lp;

pub use bachem_korte::{solve_diagonal_bk, solve_general_bk, BkCriterion, BkOptions, BkSolution};
pub use projections::{solve_diagonal_dykstra, DykstraSolution};
pub use ras::{ras_balance, RasFailure, RasOptions, RasOutcome};
pub use rc::{solve_general_rc, RcOptions, RcSolution};
pub use transport_lp::{solve_transport, TransportSolution};
