//! RAS / iterative proportional fitting (Deming & Stephan 1940).
//!
//! The paper's introduction singles RAS out as "the most widely applied
//! computational method in practice" for fixed-totals constrained matrix
//! problems — and notes its two limitations that motivate SEA: it commits
//! to one specific (biproportional / entropy-like) objective, and it can
//! fail to converge on matrices whose zero structure makes the target
//! margins unattainable (Mohr, Crown & Polenske 1987). Both behaviours are
//! implemented here: classic row/column scaling plus an explicit
//! non-convergence diagnosis.

use sea_core::SeaError;
use sea_linalg::DenseMatrix;
use std::time::{Duration, Instant};

/// Options for [`ras_balance`].
#[derive(Debug, Clone)]
pub struct RasOptions {
    /// Relative margin tolerance.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for RasOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-8,
            max_iterations: 100_000,
        }
    }
}

/// Why RAS failed, when it did.
#[derive(Debug, Clone, PartialEq)]
pub enum RasFailure {
    /// A row (`true`) or column (`false`) has a positive target but no
    /// positive entries to scale — structurally infeasible.
    EmptySupport {
        /// True for a row, false for a column.
        is_row: bool,
        /// Index of the offending line.
        index: usize,
    },
    /// The iteration cap was reached with the residual stalled — the
    /// oscillatory non-convergence mode of infeasible RAS problems.
    Stalled {
        /// Residual at the last iteration.
        residual: f64,
        /// Residual `max_iterations/2` earlier, for comparison.
        earlier_residual: f64,
    },
}

/// Outcome of a RAS balancing run.
#[derive(Debug, Clone)]
pub struct RasOutcome {
    /// The scaled matrix (zeros of the prior preserved exactly).
    pub x: DenseMatrix,
    /// Row multipliers `r` (the "R" of RAS).
    pub r: Vec<f64>,
    /// Column multipliers `s` (the "S" of RAS).
    pub s: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the margins were met within tolerance.
    pub converged: bool,
    /// Final relative margin residual.
    pub residual: f64,
    /// Diagnosis when not converged.
    pub failure: Option<RasFailure>,
    /// Wall clock.
    pub elapsed: Duration,
}

/// Balance `x0 ≥ 0` to row totals `s0` and column totals `d0` by RAS.
///
/// ```
/// use sea_baselines::ras::{ras_balance, RasOptions};
/// use sea_linalg::DenseMatrix;
///
/// let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let out = ras_balance(&x0, &[6.0, 14.0], &[8.0, 12.0], &RasOptions::default()).unwrap();
/// assert!(out.converged);
/// assert!((out.x.row_sums()[0] - 6.0).abs() < 1e-6);
/// ```
///
/// # Errors
/// * [`SeaError::Shape`] on dimension mismatches.
/// * [`SeaError::NonFinite`] for negative or non-finite priors.
/// * [`SeaError::InconsistentTotals`] when `Σ s⁰ ≠ Σ d⁰`.
pub fn ras_balance(
    x0: &DenseMatrix,
    s0: &[f64],
    d0: &[f64],
    opts: &RasOptions,
) -> Result<RasOutcome, SeaError> {
    let (m, n) = (x0.rows(), x0.cols());
    if s0.len() != m {
        return Err(SeaError::Shape {
            context: "RAS s0",
            expected: m,
            actual: s0.len(),
        });
    }
    if d0.len() != n {
        return Err(SeaError::Shape {
            context: "RAS d0",
            expected: n,
            actual: d0.len(),
        });
    }
    if x0.as_slice().iter().any(|&v| v < 0.0 || !v.is_finite()) {
        return Err(SeaError::NonFinite {
            context: "RAS prior",
        });
    }
    let rs: f64 = s0.iter().sum();
    let cs: f64 = d0.iter().sum();
    if (rs - cs).abs() > 1e-9 * rs.abs().max(cs.abs()).max(1.0) {
        return Err(SeaError::InconsistentTotals {
            row_total: rs,
            col_total: cs,
        });
    }

    let start = Instant::now();
    let mut x = x0.clone();
    let mut r = vec![1.0; m];
    let mut s = vec![1.0; n];

    // Structural feasibility: positive target on an all-zero line can never
    // be met by scaling.
    for (i, &t) in s0.iter().enumerate() {
        if t > 0.0 && x0.row(i).iter().all(|&v| v == 0.0) {
            return Ok(RasOutcome {
                x,
                r,
                s,
                iterations: 0,
                converged: false,
                residual: f64::INFINITY,
                failure: Some(RasFailure::EmptySupport {
                    is_row: true,
                    index: i,
                }),
                elapsed: start.elapsed(),
            });
        }
    }
    let col_sums0 = x0.col_sums();
    for (j, &t) in d0.iter().enumerate() {
        if t > 0.0 && col_sums0[j] == 0.0 {
            return Ok(RasOutcome {
                x,
                r,
                s,
                iterations: 0,
                converged: false,
                residual: f64::INFINITY,
                failure: Some(RasFailure::EmptySupport {
                    is_row: false,
                    index: j,
                }),
                elapsed: start.elapsed(),
            });
        }
    }

    let mut iterations = 0;
    let mut converged = false;
    let mut residual = f64::INFINITY;
    let mut residual_history: Vec<f64> = Vec::new();

    for t in 1..=opts.max_iterations {
        iterations = t;
        // Row scaling.
        for i in 0..m {
            let sum: f64 = x.row(i).iter().sum();
            if sum > 0.0 {
                let f = s0[i] / sum;
                r[i] *= f;
                for v in x.row_mut(i) {
                    *v *= f;
                }
            }
        }
        // Column scaling.
        let mut col_sums = vec![0.0; n];
        for i in 0..m {
            for (cs, &v) in col_sums.iter_mut().zip(x.row(i)) {
                *cs += v;
            }
        }
        let factors: Vec<f64> = (0..n)
            .map(|j| {
                if col_sums[j] > 0.0 {
                    d0[j] / col_sums[j]
                } else {
                    1.0
                }
            })
            .collect();
        for (sj, &f) in s.iter_mut().zip(&factors) {
            *sj *= f;
        }
        for i in 0..m {
            for (v, &f) in x.row_mut(i).iter_mut().zip(&factors) {
                *v *= f;
            }
        }
        // Residual: rows were scaled before columns, so only rows can be
        // off now.
        let row_sums = x.row_sums();
        let mut rel: f64 = 0.0;
        for i in 0..m {
            rel = rel.max((row_sums[i] - s0[i]).abs() / s0[i].abs().max(1e-12));
        }
        residual = rel;
        residual_history.push(rel);
        if rel <= opts.epsilon {
            converged = true;
            break;
        }
    }

    let failure = if converged {
        None
    } else {
        let half = residual_history.len() / 2;
        let earlier = residual_history.get(half).copied().unwrap_or(f64::INFINITY);
        Some(RasFailure::Stalled {
            residual,
            earlier_residual: earlier,
        })
    };

    Ok(RasOutcome {
        x,
        r,
        s,
        iterations,
        converged,
        residual,
        failure,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ras_balances_positive_matrix() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let out = ras_balance(&x0, &[6.0, 14.0], &[8.0, 12.0], &RasOptions::default()).unwrap();
        assert!(out.converged);
        let rs = out.x.row_sums();
        let cs = out.x.col_sums();
        assert!((rs[0] - 6.0).abs() < 1e-6);
        assert!((cs[0] - 8.0).abs() < 1e-6);
        // Biproportionality: x = diag(r) x0 diag(s).
        for i in 0..2 {
            for j in 0..2 {
                let expect = out.r[i] * x0.get(i, j) * out.s[j];
                assert!((out.x.get(i, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ras_preserves_zeros() {
        let x0 = DenseMatrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let out = ras_balance(&x0, &[3.0, 6.0], &[4.0, 5.0], &RasOptions::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.x.get(0, 0), 0.0);
    }

    #[test]
    fn ras_detects_empty_support() {
        let x0 = DenseMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]).unwrap();
        let out = ras_balance(&x0, &[3.0, 6.0], &[4.0, 5.0], &RasOptions::default()).unwrap();
        assert!(!out.converged);
        assert_eq!(
            out.failure,
            Some(RasFailure::EmptySupport {
                is_row: true,
                index: 0
            })
        );
    }

    #[test]
    fn ras_stalls_on_structurally_infeasible_margins() {
        // Zero diagonal forces x12 = row1 total and x21 = row2 total; the
        // requested margins contradict that, so RAS oscillates.
        let x0 = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        // Need col1 sum = 5 but col1 only receives from row 2 whose total
        // is 1: infeasible.
        let opts = RasOptions {
            epsilon: 1e-10,
            max_iterations: 500,
        };
        let out = ras_balance(&x0, &[4.0, 1.0], &[5.0, 0.0], &opts).unwrap();
        assert!(!out.converged);
        assert!(matches!(out.failure, Some(RasFailure::Stalled { .. })));
    }

    #[test]
    fn ras_validates_inputs() {
        let x0 = DenseMatrix::filled(2, 2, 1.0).unwrap();
        assert!(ras_balance(&x0, &[1.0], &[1.0, 1.0], &RasOptions::default()).is_err());
        assert!(ras_balance(&x0, &[1.0, 1.0], &[1.0, 2.0], &RasOptions::default()).is_err());
        let neg = DenseMatrix::from_rows(&[vec![-1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert!(ras_balance(&neg, &[0.0, 2.0], &[0.0, 2.0], &RasOptions::default()).is_err());
    }

    #[test]
    fn ras_agrees_with_chi_square_sea_on_proportional_growth() {
        // Uniform doubling: both RAS and chi-square SEA double every entry.
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let s0: Vec<f64> = x0.row_sums().iter().map(|v| 2.0 * v).collect();
        let d0: Vec<f64> = x0.col_sums().iter().map(|v| 2.0 * v).collect();
        let out = ras_balance(&x0, &s0, &d0, &RasOptions::default()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((out.x.get(i, j) - 2.0 * x0.get(i, j)).abs() < 1e-6);
            }
        }
    }
}
