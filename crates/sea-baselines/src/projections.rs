//! Dykstra's method of alternating weighted projections — an additional
//! primal baseline for the fixed-totals diagonal problem.
//!
//! Repeatedly project the iterate onto the row-sum affine subspace, the
//! column-sum affine subspace, and the nonnegative orthant in the
//! `Γ`-weighted norm, carrying Boyle–Dykstra correction vectors for the
//! non-affine orthant so the iteration converges to the *constrained
//! minimizer* (not merely a feasible point). Converges linearly at a rate
//! set by the angle between the constraint subspaces — fast on
//! well-conditioned instances, slow when margins conflict strongly.

use sea_core::problem::{DiagonalProblem, TotalSpec};
use sea_core::SeaError;
use sea_linalg::DenseMatrix;
use std::time::{Duration, Instant};

/// Result of a Dykstra solve.
#[derive(Debug, Clone)]
pub struct DykstraSolution {
    /// The estimate.
    pub x: DenseMatrix,
    /// Projection sweeps performed.
    pub sweeps: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Final relative balance residual.
    pub residual: f64,
    /// Objective value.
    pub objective: f64,
    /// Wall clock.
    pub elapsed: Duration,
}

/// Weighted projection onto the row-sum affine subspace, in place.
fn project_rows(
    x: &mut DenseMatrix,
    inv_gamma: &DenseMatrix,
    inv_gamma_rowsum: &[f64],
    s0: &[f64],
) {
    for i in 0..x.rows() {
        let row_sum: f64 = x.row(i).iter().sum();
        let corr = (s0[i] - row_sum) / inv_gamma_rowsum[i];
        let wr = inv_gamma.row(i);
        for (xv, &w) in x.row_mut(i).iter_mut().zip(wr) {
            *xv += corr * w;
        }
    }
}

/// Weighted projection onto the column-sum affine subspace, in place.
fn project_cols(
    x: &mut DenseMatrix,
    inv_gamma: &DenseMatrix,
    inv_gamma_colsum: &[f64],
    d0: &[f64],
) {
    let n = x.cols();
    let mut col_sums = vec![0.0; n];
    for i in 0..x.rows() {
        for (cs, &v) in col_sums.iter_mut().zip(x.row(i)) {
            *cs += v;
        }
    }
    let corr: Vec<f64> = (0..n)
        .map(|j| (d0[j] - col_sums[j]) / inv_gamma_colsum[j])
        .collect();
    for i in 0..x.rows() {
        let wr = inv_gamma.row(i);
        for ((xv, &w), &c) in x.row_mut(i).iter_mut().zip(wr).zip(&corr) {
            *xv += c * w;
        }
    }
}

/// Core Dykstra loop on `min Σ γ(x−q)² s.t. margins (s⁰, d⁰), x ≥ 0`.
/// Returns `(x, sweeps, converged, residual)`. Shared with the B-K module's
/// tests and the general diagonalization wrapper.
pub(crate) fn dykstra_core(
    q: &DenseMatrix,
    gamma: &DenseMatrix,
    s0: &[f64],
    d0: &[f64],
    epsilon: f64,
    max_sweeps: usize,
) -> (DenseMatrix, usize, bool, f64) {
    let (m, n) = (q.rows(), q.cols());
    let inv_gamma = {
        let data: Vec<f64> = gamma.as_slice().iter().map(|&g| 1.0 / g).collect();
        DenseMatrix::from_vec(m, n, data).expect("same shape")
    };
    let inv_gamma_rowsum = inv_gamma.row_sums();
    let inv_gamma_colsum = inv_gamma.col_sums();

    let mut x = q.clone();
    // Correction only for the (non-affine) orthant; affine sets need none.
    let mut z = vec![0.0_f64; m * n];
    let mut converged = false;
    let mut residual = f64::INFINITY;
    let mut sweeps = 0;

    let scale: f64 = s0
        .iter()
        .map(|v| v.abs())
        .fold(0.0_f64, f64::max)
        .max(1e-12);

    for sweep in 1..=max_sweeps {
        sweeps = sweep;
        project_rows(&mut x, &inv_gamma, &inv_gamma_rowsum, s0);
        project_cols(&mut x, &inv_gamma, &inv_gamma_colsum, d0);
        let xs = x.as_mut_slice();
        for (xv, zv) in xs.iter_mut().zip(z.iter_mut()) {
            let w = *xv + *zv;
            let clipped = w.max(0.0);
            *zv = w - clipped;
            *xv = clipped;
        }
        let rs = x.row_sums();
        let cs = x.col_sums();
        let mut worst: f64 = 0.0;
        for i in 0..m {
            worst = worst.max((rs[i] - s0[i]).abs() / s0[i].abs().max(scale * 1e-6));
        }
        for j in 0..n {
            worst = worst.max((cs[j] - d0[j]).abs() / d0[j].abs().max(scale * 1e-6));
        }
        residual = worst;
        if worst <= epsilon {
            converged = true;
            break;
        }
    }
    (x, sweeps, converged, residual)
}

/// Solve a fixed-totals diagonal problem by Dykstra alternating
/// projections.
///
/// # Errors
/// [`SeaError::Shape`] if the problem is not of the fixed-totals class.
pub fn solve_diagonal_dykstra(
    p: &DiagonalProblem,
    epsilon: f64,
    max_sweeps: usize,
) -> Result<DykstraSolution, SeaError> {
    let (s0, d0) = match p.totals() {
        TotalSpec::Fixed { s0, d0 } => (s0.clone(), d0.clone()),
        _ => {
            return Err(SeaError::Shape {
                context: "Dykstra requires fixed totals",
                expected: 0,
                actual: 1,
            })
        }
    };
    let start = Instant::now();
    let (x, sweeps, converged, residual) =
        dykstra_core(p.x0(), p.gamma(), &s0, &d0, epsilon, max_sweeps);
    let objective = p.objective(&x, &s0, &d0);
    Ok(DykstraSolution {
        x,
        sweeps,
        converged,
        residual,
        objective,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::{solve_diagonal, SeaOptions};

    fn problem() -> DiagonalProblem {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        gamma.set(0, 0, 3.0);
        gamma.set(1, 1, 0.5);
        DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap()
    }

    #[test]
    fn dykstra_matches_sea() {
        let p = problem();
        let dy = solve_diagonal_dykstra(&p, 1e-10, 1_000_000).unwrap();
        let sea = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        assert!(dy.converged);
        assert!(dy.x.max_abs_diff(&sea.x) < 1e-5);
    }

    #[test]
    fn dykstra_rejects_elastic() {
        let x0 = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Elastic {
                alpha: vec![1.0; 2],
                s0: vec![2.0; 2],
                beta: vec![1.0; 2],
                d0: vec![2.0; 2],
            },
        )
        .unwrap();
        assert!(solve_diagonal_dykstra(&p, 1e-8, 100).is_err());
    }

    #[test]
    fn dykstra_respects_nonnegativity() {
        let x0 = DenseMatrix::from_rows(&[vec![50.0, 1.0], vec![1.0, 50.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![2.0, 51.0],
                d0: vec![1.0, 52.0],
            },
        )
        .unwrap();
        let dy = solve_diagonal_dykstra(&p, 1e-9, 1_000_000).unwrap();
        assert!(dy.converged);
        assert!(dy.x.as_slice().iter().all(|&v| v >= -1e-12));
        let sea = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        assert!(dy.x.max_abs_diff(&sea.x) < 1e-4);
    }
}
