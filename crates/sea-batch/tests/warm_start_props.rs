//! Warm-start correctness properties.
//!
//! Seeding a solve with cached multipliers is an *accelerator*, never an
//! *approximator*: a warm solve must land on a solution certifying against
//! the same KKT tolerance as the cold one, and on an identical repeated
//! instance it must consume no more kernel work. Instances come from the
//! shared generator's heterogeneous family — unit-weight fixtures converge
//! in a couple of sweeps, which would make both properties vacuous.

#[path = "../../sea-core/tests/common/generator.rs"]
mod generator;

use proptest::prelude::*;
use sea_batch::{BatchEngine, BatchInstance, BatchOptions, BatchProblem, BatchSolution, WarmStart};
use sea_core::{verify_solution, NullObserver};

/// KKT certification tolerance: one decade looser than the solve tolerance
/// (the convergence criterion measures residuals, the certificate measures
/// scaled stationarity; they agree only up to conditioning).
const SOLVE_EPS: f64 = 1e-10;
const KKT_TOL: f64 = 1e-6;

fn instance(seed: u64, m: usize, n: usize) -> BatchInstance {
    BatchInstance {
        id: format!("prop-{seed}"),
        family: Some(format!("fam-{seed}")),
        problem: BatchProblem::Diagonal(generator::heterogeneous(seed, m, n)),
    }
}

fn options() -> BatchOptions {
    BatchOptions {
        epsilon: SOLVE_EPS,
        max_iterations: 50_000,
        ..BatchOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn warm_start_reaches_the_same_kkt_certificate(
        seed in 0u64..1 << 48,
        m in 2usize..6,
        n in 2usize..6,
    ) {
        let inst = instance(seed, m, n);
        let BatchProblem::Diagonal(problem) = &inst.problem else {
            unreachable!("diagonal by construction")
        };
        let mut engine = BatchEngine::new(options());
        let batch = std::slice::from_ref(&inst);

        let cold = engine.solve_batch(batch, &mut NullObserver);
        prop_assert!(cold.all_converged(), "cold solve must converge");
        let warm = engine.solve_batch(batch, &mut NullObserver);
        prop_assert!(warm.all_converged(), "warm solve must converge");
        prop_assert_eq!(warm.items[0].warm_start, WarmStart::Hit);

        for (tag, report) in [("cold", &cold), ("warm", &warm)] {
            let Some(Ok(BatchSolution::Diagonal(sol))) = report.items.first().map(|i| &i.outcome)
            else {
                return Err("diagonal outcome missing".to_string());
            };
            let kkt = verify_solution(problem, &sol.solution);
            prop_assert!(
                kkt.is_optimal(KKT_TOL),
                "{tag} solve fails the KKT certificate: {kkt:?}"
            );
        }
    }

    #[test]
    fn repeated_identical_instance_never_costs_more_kernel_work(
        seed in 0u64..1 << 48,
        m in 2usize..6,
        n in 2usize..6,
    ) {
        let inst = instance(seed, m, n);
        let mut engine = BatchEngine::new(options());
        let batch = std::slice::from_ref(&inst);
        let cold = engine.solve_batch(batch, &mut NullObserver);
        prop_assert!(cold.all_converged());
        let warm = engine.solve_batch(batch, &mut NullObserver);
        prop_assert!(warm.all_converged());
        prop_assert_eq!(warm.items[0].warm_start, WarmStart::Hit);
        prop_assert!(
            warm.kernel_work <= cold.kernel_work,
            "warm start did more work than cold: {} > {}",
            warm.kernel_work,
            cold.kernel_work
        );
        prop_assert_eq!(
            warm.work_saved,
            cold.kernel_work - warm.kernel_work,
            "work_saved must equal the measured difference"
        );
    }
}
