//! Bitwise determinism of batch results.
//!
//! Two invariances, both downstream of the engine's snapshot-cache design
//! and the solvers' parallelism invariance:
//!
//! * **Scheduling**: all five [`BatchParallelism`] policies produce
//!   identical bits per instance — same solutions, same iteration counts,
//!   same cache outcomes and work counters.
//! * **Submission order**: permuting the instances permutes the reports
//!   but changes no per-id result, *including* cache contents carried to
//!   the next batch (updates apply in submission order, but distinct
//!   families never collide, and same-family instances in one batch all
//!   see the same snapshot).

#[path = "../../sea-core/tests/common/generator.rs"]
mod generator;

use sea_batch::{
    BatchEngine, BatchInstance, BatchOptions, BatchParallelism, BatchProblem, BatchReport,
    BatchSolution,
};
use sea_core::NullObserver;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Everything comparable about one instance's outcome, as bit patterns.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    id: String,
    warm: &'static str,
    kernel_work: u64,
    work_saved: u64,
    stop: String,
    iterations: usize,
    x: Vec<u64>,
    mu: Vec<u64>,
}

fn fingerprints(report: &BatchReport) -> Vec<Fingerprint> {
    report
        .items
        .iter()
        .map(|item| {
            let sol = item.outcome.as_ref().expect("instance solved");
            let (x, mu) = match sol {
                BatchSolution::Diagonal(s) => (bits(s.solution.x.as_slice()), bits(&s.solution.mu)),
                BatchSolution::SparseDiagonal(s) => {
                    (bits(s.solution.x.vals()), bits(&s.solution.mu))
                }
                BatchSolution::Bounded(s) => (bits(s.solution.x.as_slice()), bits(&s.solution.mu)),
                BatchSolution::General(s) => (bits(s.solution.x.as_slice()), bits(&s.solution.mu)),
            };
            Fingerprint {
                id: item.id.clone(),
                warm: item.warm_start.name(),
                kernel_work: item.kernel_work,
                work_saved: item.work_saved,
                stop: format!("{:?}", sol.stop()),
                iterations: sol.iterations(),
                x,
                mu,
            }
        })
        .collect()
}

fn workload() -> Vec<BatchInstance> {
    let mut batch: Vec<BatchInstance> = (0..4)
        .map(|i| BatchInstance {
            id: format!("diag-{i}"),
            family: Some(format!("fam-{i}")),
            problem: BatchProblem::Diagonal(generator::heterogeneous(100 + i, 4, 5)),
        })
        .collect();
    batch.push(BatchInstance {
        id: "bounded".to_string(),
        family: Some("fam-b".to_string()),
        problem: BatchProblem::Bounded(
            generator::try_bounded(7, 3, 3, 2, 1.0).expect("feasible bounded instance"),
        ),
    });
    batch.push(BatchInstance {
        id: "general".to_string(),
        family: Some("fam-g".to_string()),
        problem: BatchProblem::General(
            generator::try_general(11, 2, 2, 2).expect("SPD general instance"),
        ),
    });
    batch
}

fn options(parallelism: BatchParallelism) -> BatchOptions {
    BatchOptions {
        epsilon: 1e-9,
        max_iterations: 20_000,
        parallelism,
        ..BatchOptions::default()
    }
}

/// Two epochs (cold, then warm) under one policy, fingerprinting both.
fn run_two_epochs(
    parallelism: BatchParallelism,
    batch: &[BatchInstance],
) -> (Vec<Fingerprint>, Vec<Fingerprint>) {
    let mut engine = BatchEngine::new(options(parallelism));
    let cold = engine.solve_batch(batch, &mut NullObserver);
    let warm = engine.solve_batch(batch, &mut NullObserver);
    (fingerprints(&cold), fingerprints(&warm))
}

#[test]
fn all_parallelism_policies_are_bitwise_identical() {
    let batch = workload();
    let reference = run_two_epochs(BatchParallelism::Serial, &batch);
    for policy in [
        BatchParallelism::Outer,
        BatchParallelism::OuterThreads(1),
        BatchParallelism::OuterThreads(2),
        BatchParallelism::OuterThreads(4),
        BatchParallelism::Inner,
        BatchParallelism::InnerThreads(2),
    ] {
        let got = run_two_epochs(policy, &batch);
        assert_eq!(
            got.0, reference.0,
            "{policy:?}: cold-epoch results diverged from serial"
        );
        assert_eq!(
            got.1, reference.1,
            "{policy:?}: warm-epoch results diverged from serial"
        );
    }
}

#[test]
fn submission_order_does_not_change_per_id_results() {
    let batch = workload();
    let mut reversed = batch.clone();
    reversed.reverse();
    // Also an interleaving that is neither forward nor reverse.
    let mut shuffled = batch.clone();
    shuffled.swap(0, 3);
    shuffled.swap(1, 5);

    let by_id = |fps: Vec<Fingerprint>| {
        let mut fps = fps;
        fps.sort_by(|a, b| a.id.cmp(&b.id));
        fps
    };
    let reference = run_two_epochs(BatchParallelism::OuterThreads(2), &batch);
    let reference = (by_id(reference.0), by_id(reference.1));
    for order in [&reversed, &shuffled] {
        let got = run_two_epochs(BatchParallelism::OuterThreads(2), order);
        let got = (by_id(got.0), by_id(got.1));
        assert_eq!(got.0, reference.0, "cold epoch depends on submission order");
        assert_eq!(got.1, reference.1, "warm epoch depends on submission order");
    }
}

#[test]
fn event_streams_are_identical_across_scheduling_policies() {
    let batch = workload();
    let record = |policy: BatchParallelism| {
        let mut engine = BatchEngine::new(options(policy));
        let mut obs = sea_core::VecObserver::new();
        engine.solve_batch(&batch, &mut obs);
        // Timing fields differ run to run; compare the structural stream.
        obs.events
            .iter()
            .map(|e| e.kind())
            .collect::<Vec<&'static str>>()
    };
    let reference = record(BatchParallelism::Serial);
    for policy in [BatchParallelism::Outer, BatchParallelism::OuterThreads(3)] {
        assert_eq!(
            record(policy),
            reference,
            "{policy:?}: replayed event stream diverged"
        );
    }
}
