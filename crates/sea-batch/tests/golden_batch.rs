//! Golden-fixture audit of the batch event stream.
//!
//! A tiny deterministic 3-instance batch (two cached families plus one
//! cache bypass) is solved for two epochs through one engine — epoch one
//! all misses, epoch two all hits — and the full JSONL event stream is
//! compared line by line against `tests/fixtures/golden_batch.jsonl`.
//! Wall-clock and numeric-result fields are zeroed before comparison;
//! everything structural — batch lifecycle framing, replay order, cache
//! outcomes, kernel-work counters — must match the committed fixture.

use sea_batch::{BatchEngine, BatchInstance, BatchOptions, BatchProblem};
use sea_core::{DiagonalProblem, Event, TotalSpec};
use sea_linalg::DenseMatrix;
use sea_observe::jsonl::{encode_event, parse_events, JsonlObserver};

/// Zero every wall-clock / numeric-result field, keeping structure.
fn normalized(event: &Event) -> Event {
    let mut e = event.clone();
    match &mut e {
        Event::PhaseEnd {
            seconds,
            task_seconds,
            ..
        } => {
            *seconds = 0.0;
            task_seconds.iter_mut().for_each(|t| *t = 0.0);
        }
        Event::ConvergenceCheck {
            residual,
            dual_value,
            ..
        } => {
            *residual = 0.0;
            *dual_value = dual_value.map(|_| 0.0);
        }
        Event::MultiplierBound { bound, .. } => *bound = 0.0,
        Event::OuterIteration { outer_residual, .. } => *outer_residual = 0.0,
        Event::SolveEnd {
            residual,
            objective,
            dual_value,
            seconds,
            ..
        } => {
            *residual = 0.0;
            *objective = 0.0;
            *dual_value = dual_value.map(|_| 0.0);
            *seconds = 0.0;
        }
        Event::BatchEnd { seconds, .. } => *seconds = 0.0,
        Event::Meta { .. }
        | Event::SolveStart { .. }
        | Event::PhaseStart { .. }
        | Event::KernelCounters { .. }
        | Event::FallbackTriggered { .. }
        | Event::CheckpointWritten { .. }
        | Event::SupervisorStop { .. }
        | Event::BatchStart { .. }
        | Event::BatchInstance { .. } => {}
    }
    e
}

fn tiny(rows: [[f64; 2]; 2], s0: [f64; 2], d0: [f64; 2]) -> DiagonalProblem {
    DiagonalProblem::new(
        DenseMatrix::from_rows(&[rows[0].to_vec(), rows[1].to_vec()]).unwrap(),
        DenseMatrix::filled(2, 2, 1.0).unwrap(),
        TotalSpec::Fixed {
            s0: s0.to_vec(),
            d0: d0.to_vec(),
        },
    )
    .unwrap()
}

#[test]
fn batch_event_stream_matches_golden_fixture() {
    let batch = vec![
        BatchInstance {
            id: "alpha".to_string(),
            family: Some("f-alpha".to_string()),
            problem: BatchProblem::Diagonal(tiny([[1.0, 2.0], [3.0, 4.0]], [4.0, 6.0], [5.0, 5.0])),
        },
        BatchInstance {
            id: "beta".to_string(),
            family: Some("f-beta".to_string()),
            problem: BatchProblem::Diagonal(tiny([[2.0, 1.0], [1.0, 2.0]], [3.0, 3.0], [2.0, 4.0])),
        },
        BatchInstance {
            id: "adhoc".to_string(),
            family: None,
            problem: BatchProblem::Diagonal(tiny([[5.0, 1.0], [1.0, 5.0]], [6.0, 6.0], [7.0, 5.0])),
        },
    ];
    let mut engine = BatchEngine::new(BatchOptions {
        epsilon: 1e-10,
        max_iterations: 1000,
        ..BatchOptions::default()
    });

    // Two epochs through one sink: misses, then hits.
    let mut obs = JsonlObserver::new(Vec::new());
    let first = engine.solve_batch(&batch, &mut obs);
    assert!(first.all_converged());
    assert_eq!(first.cache_misses, 2);
    let second = engine.solve_batch(&batch, &mut obs);
    assert!(second.all_converged());
    assert_eq!(second.cache_hits, 2);

    let bytes = obs.finish().unwrap();
    let recorded = parse_events(std::str::from_utf8(&bytes).unwrap()).unwrap();
    let mut actual = String::new();
    for event in &recorded {
        actual.push_str(&encode_event(&normalized(event)));
        actual.push('\n');
    }

    // `UPDATE_GOLDEN=1 cargo test -p sea-batch --test golden_batch`
    // rewrites the fixture after an intentional event-schema change.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/golden_batch.jsonl"
        );
        std::fs::write(path, &actual).unwrap();
        return;
    }

    let golden = include_str!("fixtures/golden_batch.jsonl");
    for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
        assert_eq!(a, g, "event {} diverges from the golden fixture", i + 1);
    }
    assert_eq!(
        actual, golden,
        "event count diverges from the golden fixture"
    );
}
