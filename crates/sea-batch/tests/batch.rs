//! Engine behavior: warm-start cache lifecycle, work accounting, mixed
//! problem classes, per-instance errors, and batch-wide cancellation.

#[path = "../../sea-core/tests/common/generator.rs"]
mod generator;

use sea_batch::{BatchEngine, BatchInstance, BatchOptions, BatchProblem, WarmStart};
use sea_core::{
    CancelToken, Event, NullObserver, SolveBudget, StopReason, SupervisorOptions, VecObserver,
};

fn diagonal_instance(id: &str, family: Option<&str>, seed: u64) -> BatchInstance {
    BatchInstance {
        id: id.to_string(),
        family: family.map(str::to_string),
        problem: BatchProblem::Diagonal(generator::heterogeneous(seed, 5, 5)),
    }
}

fn options() -> BatchOptions {
    BatchOptions {
        epsilon: 1e-10,
        max_iterations: 20_000,
        ..BatchOptions::default()
    }
}

#[test]
fn repeated_family_misses_then_hits_and_saves_work() {
    let mut engine = BatchEngine::new(options());
    let batch = vec![diagonal_instance("q1", Some("quarterly"), 1)];

    let first = engine.solve_batch(&batch, &mut NullObserver);
    assert_eq!(first.items[0].warm_start, WarmStart::Miss);
    assert_eq!(first.cache_misses, 1);
    assert_eq!(first.cache_hits, 0);
    assert!(first.all_converged());
    assert!(first.kernel_work > 0, "work measurement is on by default");
    assert_eq!(first.work_saved, 0, "a miss has no baseline to save from");
    assert_eq!(engine.cached_families(), 1);

    let second = engine.solve_batch(&batch, &mut NullObserver);
    assert_eq!(second.items[0].warm_start, WarmStart::Hit);
    assert_eq!(second.cache_hits, 1);
    assert!(second.all_converged());
    assert!(
        second.kernel_work < first.kernel_work,
        "identical warm-started instance must do less kernel work \
         (warm {} vs cold {})",
        second.kernel_work,
        first.kernel_work
    );
    assert_eq!(
        second.work_saved,
        first.kernel_work - second.kernel_work,
        "saved work is measured against the family's cold baseline"
    );
}

#[test]
fn hits_keep_the_original_cold_baseline() {
    let mut engine = BatchEngine::new(options());
    let batch = vec![diagonal_instance("q1", Some("quarterly"), 1)];
    let cold = engine.solve_batch(&batch, &mut NullObserver).kernel_work;
    engine.solve_batch(&batch, &mut NullObserver);
    // Third epoch: still compared against the first (cold) solve, not the
    // second (already warm) one, so the reported saving stays honest.
    let third = engine.solve_batch(&batch, &mut NullObserver);
    assert_eq!(third.work_saved, cold - third.kernel_work);
}

#[test]
fn within_one_batch_the_cache_is_a_snapshot() {
    let mut engine = BatchEngine::new(options());
    // Two instances of the same family in one batch: both resolve against
    // the empty snapshot (both miss); the hit only materializes next call.
    let batch = vec![
        diagonal_instance("a", Some("fam"), 1),
        diagonal_instance("b", Some("fam"), 1),
    ];
    let report = engine.solve_batch(&batch, &mut NullObserver);
    assert_eq!(report.cache_misses, 2);
    assert_eq!(report.cache_hits, 0);
    let next = engine.solve_batch(&batch, &mut NullObserver);
    assert_eq!(next.cache_hits, 2);
}

#[test]
fn familyless_instances_bypass_the_cache() {
    let mut engine = BatchEngine::new(options());
    let batch = vec![diagonal_instance("adhoc", None, 2)];
    for _ in 0..2 {
        let report = engine.solve_batch(&batch, &mut NullObserver);
        assert_eq!(report.items[0].warm_start, WarmStart::Bypass);
        assert_eq!(report.cache_hits + report.cache_misses, 0);
    }
    assert_eq!(engine.cached_families(), 0);
}

#[test]
fn warm_start_off_bypasses_and_stores_nothing() {
    let mut engine = BatchEngine::new(BatchOptions {
        warm_start: false,
        ..options()
    });
    let batch = vec![diagonal_instance("q1", Some("quarterly"), 1)];
    engine.solve_batch(&batch, &mut NullObserver);
    let second = engine.solve_batch(&batch, &mut NullObserver);
    assert_eq!(second.items[0].warm_start, WarmStart::Bypass);
    assert_eq!(engine.cached_families(), 0);
}

#[test]
fn shape_changed_family_downgrades_to_miss() {
    let mut engine = BatchEngine::new(options());
    engine.solve_batch(
        &[diagonal_instance("v1", Some("fam"), 1)],
        &mut NullObserver,
    );
    // Same family, different column count: the cached μ no longer fits.
    let reshaped = BatchInstance {
        id: "v2".to_string(),
        family: Some("fam".to_string()),
        problem: BatchProblem::Diagonal(generator::heterogeneous(1, 5, 4)),
    };
    let report = engine.solve_batch(&[reshaped], &mut NullObserver);
    assert_eq!(report.items[0].warm_start, WarmStart::Miss);
    assert!(
        report.all_converged(),
        "a stale shape must not break solving"
    );
}

#[test]
fn mixed_classes_solve_in_one_batch() {
    let mut engine = BatchEngine::new(BatchOptions {
        epsilon: 1e-8,
        max_iterations: 20_000,
        ..BatchOptions::default()
    });
    let batch = vec![
        diagonal_instance("diag", Some("d"), 3),
        BatchInstance {
            id: "bounded".to_string(),
            family: Some("b".to_string()),
            problem: BatchProblem::Bounded(
                generator::try_bounded(7, 3, 3, 2, 1.0).expect("feasible bounded instance"),
            ),
        },
        BatchInstance {
            id: "general".to_string(),
            family: Some("g".to_string()),
            problem: BatchProblem::General(
                generator::try_general(11, 2, 2, 2).expect("SPD general instance"),
            ),
        },
    ];
    let first = engine.solve_batch(&batch, &mut NullObserver);
    assert_eq!(first.items.len(), 3);
    for item in &first.items {
        assert!(
            item.outcome.as_ref().is_ok_and(|s| s.converged()),
            "{} failed to converge",
            item.id
        );
    }
    assert_eq!(engine.cached_families(), 3);
    // All three classes accept a warm μ seed on the second epoch.
    let second = engine.solve_batch(&batch, &mut NullObserver);
    assert_eq!(second.cache_hits, 3);
    assert!(second.all_converged());
}

#[test]
fn per_instance_budget_stops_do_not_abort_the_batch() {
    let mut engine = BatchEngine::new(BatchOptions {
        epsilon: 1e-300, // unattainable: every instance runs into its cap
        max_iterations: 3,
        ..BatchOptions::default()
    });
    let batch = vec![
        diagonal_instance("a", None, 1),
        diagonal_instance("b", None, 2),
    ];
    let report = engine.solve_batch(&batch, &mut NullObserver);
    assert_eq!(report.items.len(), 2);
    assert_eq!(report.converged, 0);
    for item in &report.items {
        let sol = item.outcome.as_ref().expect("capped, not errored");
        assert_eq!(sol.stop(), StopReason::IterationCap);
    }
    assert_eq!(
        engine.cached_families(),
        0,
        "partial solutions are never cached"
    );
}

#[test]
fn a_shared_cancel_token_stops_the_whole_batch() {
    let cancel = CancelToken::new();
    cancel.cancel(); // pre-cancelled: every instance must stop immediately
    let mut engine = BatchEngine::new(BatchOptions {
        epsilon: 1e-10,
        max_iterations: 20_000,
        supervisor: SupervisorOptions {
            cancel: Some(cancel),
            budget: SolveBudget::default(),
            ..SupervisorOptions::default()
        },
        ..BatchOptions::default()
    });
    let batch = vec![
        diagonal_instance("a", None, 1),
        diagonal_instance("b", None, 2),
        diagonal_instance("c", None, 3),
    ];
    let report = engine.solve_batch(&batch, &mut NullObserver);
    for item in &report.items {
        let sol = item.outcome.as_ref().expect("cancelled, not errored");
        assert_eq!(sol.stop(), StopReason::Cancelled, "{}", item.id);
    }
}

#[test]
fn event_stream_wraps_instances_with_batch_lifecycle() {
    let mut engine = BatchEngine::new(options());
    let batch = vec![
        diagonal_instance("a", Some("fam"), 1),
        diagonal_instance("b", None, 2),
    ];
    let mut obs = VecObserver::new();
    engine.solve_batch(&batch, &mut obs);
    let events = &obs.events;
    assert!(
        matches!(&events[0], Event::BatchStart { instances: 2, parallelism } if parallelism == "serial")
    );
    assert!(matches!(events.last(), Some(Event::BatchEnd { .. })));
    let starts = events
        .iter()
        .filter(|e| matches!(e, Event::SolveStart { .. }))
        .count();
    assert_eq!(starts, 2, "each instance replays its full solve stream");
    let tags: Vec<(usize, String, &'static str)> = events
        .iter()
        .filter_map(|e| match e {
            Event::BatchInstance {
                index, id, cache, ..
            } => Some((*index, id.clone(), *cache)),
            _ => None,
        })
        .collect();
    assert_eq!(
        tags,
        vec![(0, "a".to_string(), "miss"), (1, "b".to_string(), "bypass")]
    );
    // BatchInstance directly follows its instance's SolveEnd.
    let solve_end_positions: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, Event::SolveEnd { .. }).then_some(i))
        .collect();
    for pos in solve_end_positions {
        assert!(matches!(events[pos + 1], Event::BatchInstance { .. }));
    }
}

#[test]
fn arena_reaches_steady_state() {
    let mut engine = BatchEngine::new(options());
    let batch = vec![
        diagonal_instance("a", Some("f1"), 1),
        diagonal_instance("b", Some("f2"), 2),
        diagonal_instance("c", None, 3),
    ];
    engine.solve_batch(&batch, &mut NullObserver);
    let grown = engine.arena_capacity();
    assert_eq!(grown, 3);
    for _ in 0..3 {
        engine.solve_batch(&batch, &mut NullObserver);
        assert_eq!(
            engine.arena_capacity(),
            grown,
            "no regrowth at steady state"
        );
    }
    // Smaller batches reuse the existing pool.
    engine.solve_batch(&batch[..1], &mut NullObserver);
    assert_eq!(engine.arena_capacity(), grown);
}
