//! # sea-batch — batched multi-instance SEA solving
//!
//! Real constrained-matrix workloads rarely arrive one problem at a time:
//! an estimation pipeline re-balances many related matrices (regions,
//! sectors, time steps) every cycle, and consecutive cycles differ only by
//! drifting priors. This crate schedules such workloads over the
//! supervised sea-core drivers with three batch-level mechanisms:
//!
//! * **Shared thread budget** — [`BatchParallelism`] places the rayon
//!   threads either *across* instances (many small problems) or *inside*
//!   each solve's row/column equilibrations (few large problems).
//! * **Warm-start dual cache** — [`WarmStartCache`] keeps the last
//!   converged column multipliers `μ` per problem *family* and seeds the
//!   next solve of that family with them (the row pass recomputes `λ`
//!   from `μ`, so `μ` alone is a complete warm start). Hit/miss and
//!   kernel-work-saved are reported per instance and per batch through
//!   `sea-observe` events.
//! * **Workspace arena** — [`BatchArena`] pools per-instance buffers so a
//!   long-lived engine's own bookkeeping stops allocating once it reaches
//!   steady state.
//!
//! Results are bitwise deterministic across every parallelism policy and
//! any submission order: instance solves are parallelism-invariant, the
//! cache is a read-only snapshot during a batch, and buffered event
//! streams are replayed in submission order.

// Robustness contract matching sea-core: library code surfaces failures as
// `SeaError` or reports, never panics. Justified sites carry an explicit
// `#[allow]` with a proof comment; tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod cache;
pub mod engine;

pub use arena::BatchArena;
pub use cache::{CacheEntry, CacheUpdate, WarmStartCache};
pub use engine::{
    BatchEngine, BatchInstance, BatchItemReport, BatchOptions, BatchParallelism, BatchProblem,
    BatchReport, BatchSolution, WarmStart,
};
