//! # sea-batch — batched multi-instance SEA solving
//!
//! Real constrained-matrix workloads rarely arrive one problem at a time:
//! an estimation pipeline re-balances many related matrices (regions,
//! sectors, time steps) every cycle, and consecutive cycles differ only by
//! drifting priors. This crate schedules such workloads over the
//! supervised sea-core drivers with three batch-level mechanisms:
//!
//! * **Shared thread budget** — [`BatchParallelism`] places the rayon
//!   threads either *across* instances (many small problems) or *inside*
//!   each solve's row/column equilibrations (few large problems).
//! * **Warm-start dual cache** — [`WarmStartCache`] keeps the last
//!   converged column multipliers `μ` per problem *family* and seeds the
//!   next solve of that family with them (the row pass recomputes `λ`
//!   from `μ`, so `μ` alone is a complete warm start). Hit/miss and
//!   kernel-work-saved are reported per instance and per batch through
//!   `sea-observe` events.
//! * **Workspace arena** — [`BatchArena`] pools per-instance buffers so a
//!   long-lived engine's own bookkeeping stops allocating once it reaches
//!   steady state.
//!
//! Results are bitwise deterministic across every parallelism policy and
//! any submission order: instance solves are parallelism-invariant, the
//! cache is a read-only snapshot during a batch, and buffered event
//! streams are replayed in submission order.
//!
//! # Example
//!
//! Two batches of the same family through one engine: the second is
//! seeded from the first's converged duals and reports a cache hit.
//!
//! ```
//! use sea_batch::{BatchEngine, BatchInstance, BatchOptions, BatchProblem, WarmStart};
//! use sea_core::{DiagonalProblem, NullObserver, TotalSpec, WeightScheme};
//! use sea_linalg::DenseMatrix;
//!
//! let make = |scale: f64| -> Result<BatchInstance, sea_core::SeaError> {
//!     let x0 = DenseMatrix::from_rows(&[vec![10.0, 5.0], vec![5.0, 10.0]])?;
//!     let gamma = WeightScheme::ChiSquare.entry_weights(&x0)?;
//!     let totals = TotalSpec::Fixed {
//!         s0: vec![18.0 * scale, 18.0 * scale],
//!         d0: vec![18.0 * scale, 18.0 * scale],
//!     };
//!     Ok(BatchInstance {
//!         id: format!("q-{scale}"),
//!         family: Some("trade".to_string()),
//!         problem: BatchProblem::Diagonal(DiagonalProblem::new(x0, gamma, totals)?),
//!     })
//! };
//!
//! let mut engine = BatchEngine::new(BatchOptions::default());
//! let cold = engine.solve_batch(&[make(1.0)?], &mut NullObserver);
//! assert_eq!(cold.items[0].warm_start, WarmStart::Miss);
//!
//! // Next cycle, same family with drifted totals: warm-started.
//! let warm = engine.solve_batch(&[make(1.05)?], &mut NullObserver);
//! assert_eq!(warm.items[0].warm_start, WarmStart::Hit);
//! assert!(warm.items[0].outcome.as_ref().is_ok_and(|s| s.converged()));
//! # Ok::<(), sea_core::SeaError>(())
//! ```

// Robustness contract matching sea-core: library code surfaces failures as
// `SeaError` or reports, never panics. Justified sites carry an explicit
// `#[allow]` with a proof comment; tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod cache;
pub mod engine;

pub use arena::BatchArena;
pub use cache::{CacheEntry, CacheUpdate, WarmStartCache};
pub use engine::{
    solve_instance, BatchEngine, BatchInstance, BatchItemReport, BatchOptions, BatchParallelism,
    BatchProblem, BatchReport, BatchSolution, WarmStart,
};
