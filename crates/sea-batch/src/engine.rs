//! The batch solve engine.
//!
//! [`BatchEngine::solve_batch`] runs many constrained-matrix instances
//! through the supervised SEA drivers on one shared thread budget. The
//! [`BatchParallelism`] knob trades instance-level parallelism (fan the
//! instances out, each solve serial inside) against equilibration-level
//! parallelism (solve instances one at a time, rows/columns fan out
//! inside) — the two ends of the paper's decomposition hierarchy.
//!
//! Determinism: every instance solve is a pure function of the instance,
//! the engine's warm-start cache *snapshot*, and the options — the solvers
//! themselves are parallelism-invariant (see sea-core's determinism suite)
//! and cache updates are deferred to the end of the batch — so batch
//! results are bitwise identical across all five parallelism policies and
//! any submission order. Per-instance event streams are buffered and
//! replayed in submission order for the same reason.

use std::mem;
use std::time::{Duration, Instant};

use rayon::prelude::*;
use sea_core::{
    solve_bounded_supervised_configured, solve_diagonal_supervised, solve_general_supervised,
    BoundedOptions, BoundedProblem, DiagonalProblem, Event, GeneralProblem, GeneralSeaOptions,
    KernelCounters, KernelKind, Observer, Parallelism, Precision, SeaError, SeaOptions, SimdMode,
    SpanKind, StopReason, SupervisedBoundedSolution, SupervisedGeneralSolution, SupervisedSolution,
    SupervisorOptions,
};
use sea_linalg::CsrMatrix;

use crate::arena::{BatchArena, Slot};
use crate::cache::{CacheEntry, CacheUpdate, WarmStartCache};

/// Where the thread budget goes: across instances or inside each solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchParallelism {
    /// Everything sequential: instances in order, serial equilibration.
    Serial,
    /// Fan instances out on the global rayon pool; each solve is serial
    /// inside. Best for many small instances.
    Outer,
    /// Fan instances out on a dedicated pool of exactly this many threads.
    OuterThreads(usize),
    /// Solve instances one at a time; rows/columns fan out on the global
    /// pool inside each solve. Best for few large instances.
    Inner,
    /// Like [`BatchParallelism::Inner`] on a dedicated pool of this width.
    InnerThreads(usize),
}

impl BatchParallelism {
    /// Stable label for events and logs (`"serial"`, `"outer"`,
    /// `"outer:4"`, `"inner"`, `"inner:2"`).
    pub fn label(self) -> String {
        match self {
            BatchParallelism::Serial => "serial".to_string(),
            BatchParallelism::Outer => "outer".to_string(),
            BatchParallelism::OuterThreads(k) => format!("outer:{k}"),
            BatchParallelism::Inner => "inner".to_string(),
            BatchParallelism::InnerThreads(k) => format!("inner:{k}"),
        }
    }

    /// Inverse of [`BatchParallelism::label`] (used by the CLI).
    pub fn parse(s: &str) -> Option<BatchParallelism> {
        match s {
            "serial" => return Some(BatchParallelism::Serial),
            "outer" => return Some(BatchParallelism::Outer),
            "inner" => return Some(BatchParallelism::Inner),
            _ => {}
        }
        let (mode, k) = s.split_once(':')?;
        let k: usize = k.parse().ok().filter(|k| *k > 0)?;
        match mode {
            "outer" => Some(BatchParallelism::OuterThreads(k)),
            "inner" => Some(BatchParallelism::InnerThreads(k)),
            _ => None,
        }
    }

    /// The fan-out context instances are scheduled in.
    fn outer(self) -> Parallelism {
        match self {
            BatchParallelism::Outer => Parallelism::Rayon,
            BatchParallelism::OuterThreads(k) => Parallelism::RayonThreads(k),
            _ => Parallelism::Serial,
        }
    }

    /// The equilibration parallelism inside each instance solve.
    fn instance(self) -> Parallelism {
        match self {
            BatchParallelism::Inner => Parallelism::Rayon,
            BatchParallelism::InnerThreads(k) => Parallelism::RayonThreads(k),
            _ => Parallelism::Serial,
        }
    }
}

/// Options shared by every instance in a batch.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Stopping tolerance handed to each driver (outer tolerance for
    /// general instances; their inner solves run one decade tighter).
    pub epsilon: f64,
    /// Iteration cap per instance (inner iterations for diagonal/bounded
    /// and for the general driver's inner solves).
    pub max_iterations: usize,
    /// Equilibration kernel for every solve.
    pub kernel: KernelKind,
    /// SIMD policy for every solve's kernels.
    pub simd: SimdMode,
    /// Kernel arithmetic precision for every solve.
    pub precision: Precision,
    /// Thread-budget policy (see [`BatchParallelism`]).
    pub parallelism: BatchParallelism,
    /// Enable the per-family warm-start cache. Off, every instance is a
    /// cache bypass and nothing is stored.
    pub warm_start: bool,
    /// Measure per-instance kernel work through a probe observer. Costs
    /// event construction inside the solvers; turn off (with no outer
    /// observer attached) for the allocation-free fast path. Without
    /// measurement `kernel_work`/`work_saved` report 0.
    pub measure_kernel_work: bool,
    /// Supervision applied to *each* instance (budgets are per-instance;
    /// put one shared [`sea_core::CancelToken`] here to cancel the whole
    /// batch).
    pub supervisor: SupervisorOptions,
}

impl Default for BatchOptions {
    fn default() -> Self {
        let defaults = SeaOptions::default();
        BatchOptions {
            epsilon: defaults.epsilon,
            max_iterations: defaults.max_iterations,
            kernel: KernelKind::SortScan,
            simd: SimdMode::Off,
            precision: Precision::F64,
            parallelism: BatchParallelism::Serial,
            warm_start: true,
            measure_kernel_work: true,
            supervisor: SupervisorOptions::default(),
        }
    }
}

/// One problem of any of the three supported classes.
#[derive(Debug, Clone)]
pub enum BatchProblem {
    /// Diagonal constrained matrix problem (§3.1 driver).
    Diagonal(DiagonalProblem),
    /// Diagonal problem over CSR support-only storage (sparse CMPs).
    SparseDiagonal(DiagonalProblem<CsrMatrix>),
    /// Box-bounded problem (interval extension).
    Bounded(BoundedProblem),
    /// General problem with dense `G` (§3.2 driver).
    General(GeneralProblem),
}

impl BatchProblem {
    /// Column count — the length a warm-start `μ` seed must have.
    pub fn n(&self) -> usize {
        match self {
            BatchProblem::Diagonal(p) => p.n(),
            BatchProblem::SparseDiagonal(p) => p.n(),
            BatchProblem::Bounded(p) => p.n(),
            BatchProblem::General(p) => p.n(),
        }
    }

    /// Stable class name (`"diagonal"`, `"sparse-diagonal"`, `"bounded"`,
    /// `"general"`).
    pub fn class(&self) -> &'static str {
        match self {
            BatchProblem::Diagonal(_) => "diagonal",
            BatchProblem::SparseDiagonal(_) => "sparse-diagonal",
            BatchProblem::Bounded(_) => "bounded",
            BatchProblem::General(_) => "general",
        }
    }
}

/// One instance submitted to a batch.
#[derive(Debug, Clone)]
pub struct BatchInstance {
    /// Caller-chosen identifier, echoed in reports and events.
    pub id: String,
    /// Warm-start family key: instances that recur (identically or with
    /// drifting data) across batches share one. `None` opts out of
    /// caching for this instance.
    pub family: Option<String>,
    /// The problem itself.
    pub problem: BatchProblem,
}

/// A supervised solution of whichever class the instance was.
#[derive(Debug, Clone)]
pub enum BatchSolution {
    /// Diagonal outcome.
    Diagonal(SupervisedSolution),
    /// Sparse diagonal outcome (CSR estimate).
    SparseDiagonal(SupervisedSolution<CsrMatrix>),
    /// Bounded outcome.
    Bounded(SupervisedBoundedSolution),
    /// General outcome.
    General(SupervisedGeneralSolution),
}

impl BatchSolution {
    /// Whether the instance's convergence criterion fired.
    pub fn converged(&self) -> bool {
        match self {
            BatchSolution::Diagonal(s) => s.solution.stats.converged,
            BatchSolution::SparseDiagonal(s) => s.solution.stats.converged,
            BatchSolution::Bounded(s) => s.solution.converged,
            BatchSolution::General(s) => s.solution.converged,
        }
    }

    /// Why the solve stopped.
    pub fn stop(&self) -> StopReason {
        match self {
            BatchSolution::Diagonal(s) => s.stop,
            BatchSolution::SparseDiagonal(s) => s.stop,
            BatchSolution::Bounded(s) => s.stop,
            BatchSolution::General(s) => s.stop,
        }
    }

    /// Final column multipliers `μ` — the state the warm-start cache
    /// stores.
    pub fn mu(&self) -> &[f64] {
        match self {
            BatchSolution::Diagonal(s) => &s.solution.mu,
            BatchSolution::SparseDiagonal(s) => &s.solution.mu,
            BatchSolution::Bounded(s) => &s.solution.mu,
            BatchSolution::General(s) => &s.solution.mu,
        }
    }

    /// The driver's primary iteration count (inner sweeps for diagonal and
    /// bounded, outer projections for general).
    pub fn iterations(&self) -> usize {
        match self {
            BatchSolution::Diagonal(s) => s.solution.stats.iterations,
            BatchSolution::SparseDiagonal(s) => s.solution.stats.iterations,
            BatchSolution::Bounded(s) => s.solution.iterations,
            BatchSolution::General(s) => s.solution.outer_iterations,
        }
    }

    /// Primal objective at the returned iterate.
    pub fn objective(&self) -> f64 {
        match self {
            BatchSolution::Diagonal(s) => s.solution.stats.objective,
            BatchSolution::SparseDiagonal(s) => s.solution.stats.objective,
            BatchSolution::Bounded(s) => s.solution.objective,
            BatchSolution::General(s) => s.solution.objective,
        }
    }

    /// Stopping-quantity residual of the returned iterate: the value the
    /// driver's own convergence test compares against ε (relative row
    /// balance for diagonal/bounded solves, outer change for general
    /// ones). Lets callers judge how far a *partial* answer — e.g. a
    /// deadline-stopped solve — is from converged, without recomputing a
    /// certificate.
    pub fn residual(&self) -> f64 {
        match self {
            BatchSolution::Diagonal(s) => s.solution.stats.residual,
            BatchSolution::SparseDiagonal(s) => s.solution.stats.residual,
            BatchSolution::Bounded(s) => s.solution.residuals.rel_row_inf,
            BatchSolution::General(s) => s.solution.outer_residual,
        }
    }
}

/// Warm-start cache outcome for one instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WarmStart {
    /// The family had a usable cached `μ`; the solve was seeded with it.
    Hit,
    /// The instance declared a family but nothing usable was cached.
    Miss,
    /// No family, or caching disabled: the cache was not consulted.
    #[default]
    Bypass,
}

impl WarmStart {
    /// Stable wire name (`"hit"` / `"miss"` / `"bypass"`).
    pub fn name(self) -> &'static str {
        match self {
            WarmStart::Hit => "hit",
            WarmStart::Miss => "miss",
            WarmStart::Bypass => "bypass",
        }
    }
}

/// Per-instance batch outcome.
#[derive(Debug)]
pub struct BatchItemReport {
    /// Submission index (0-based).
    pub index: usize,
    /// The instance's id.
    pub id: String,
    /// The instance's family, if any.
    pub family: Option<String>,
    /// Cache outcome.
    pub warm_start: WarmStart,
    /// Kernel work this solve cost (0 when measurement is off).
    pub kernel_work: u64,
    /// Kernel work saved vs the family's cold baseline (0 off-hit).
    pub work_saved: u64,
    /// The solve outcome; a per-instance error never aborts the batch.
    pub outcome: Result<BatchSolution, SeaError>,
}

/// Whole-batch outcome.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-instance outcomes, in submission order.
    pub items: Vec<BatchItemReport>,
    /// Instances whose convergence criterion fired.
    pub converged: usize,
    /// Warm-start cache hits.
    pub cache_hits: usize,
    /// Warm-start cache misses (bypasses are neither).
    pub cache_misses: usize,
    /// Total kernel work across instances.
    pub kernel_work: u64,
    /// Total kernel work saved vs cold baselines.
    pub work_saved: u64,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
}

impl BatchReport {
    /// True when every instance solved and converged.
    pub fn all_converged(&self) -> bool {
        self.converged == self.items.len()
    }
}

/// A long-lived batch solver owning the warm-start cache and the workspace
/// arena. Solve related batches through one engine to accumulate cache
/// state; see [`crate::cache::WarmStartCache`] for snapshot semantics.
#[derive(Debug, Default)]
pub struct BatchEngine {
    options: BatchOptions,
    cache: WarmStartCache,
    arena: BatchArena,
}

impl BatchEngine {
    /// An engine with the given options and an empty cache.
    pub fn new(options: BatchOptions) -> Self {
        BatchEngine {
            options,
            cache: WarmStartCache::new(),
            arena: BatchArena::new(),
        }
    }

    /// The engine's options.
    pub fn options(&self) -> &BatchOptions {
        &self.options
    }

    /// Number of families currently cached.
    pub fn cached_families(&self) -> usize {
        self.cache.len()
    }

    /// Pooled workspace slots (grows to the largest batch seen).
    pub fn arena_capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Drop all cached warm starts.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Solve every instance, returning per-instance outcomes in submission
    /// order. Emits `BatchStart`, the buffered per-instance solve streams
    /// interleaved with `BatchInstance`, and `BatchEnd` when `obs` is
    /// enabled.
    ///
    /// A per-instance failure never aborts the batch: it lands in that
    /// item's [`BatchItemReport::outcome`] and the remaining instances
    /// still solve.
    ///
    /// # Example
    ///
    /// ```
    /// use sea_batch::{BatchEngine, BatchInstance, BatchOptions, BatchProblem};
    /// use sea_core::{DiagonalProblem, NullObserver, TotalSpec, WeightScheme};
    /// use sea_linalg::DenseMatrix;
    ///
    /// let x0 = DenseMatrix::from_rows(&[vec![10.0, 5.0], vec![5.0, 10.0]])?;
    /// let gamma = WeightScheme::ChiSquare.entry_weights(&x0)?;
    /// let p = DiagonalProblem::new(
    ///     x0,
    ///     gamma,
    ///     TotalSpec::Fixed { s0: vec![18.0, 18.0], d0: vec![18.0, 18.0] },
    /// )?;
    /// let batch = vec![BatchInstance {
    ///     id: "q1".to_string(),
    ///     family: None,
    ///     problem: BatchProblem::Diagonal(p),
    /// }];
    ///
    /// let mut engine = BatchEngine::new(BatchOptions::default());
    /// let report = engine.solve_batch(&batch, &mut NullObserver);
    /// assert_eq!(report.converged, 1);
    /// assert!(report.items[0].outcome.is_ok());
    /// # Ok::<(), sea_core::SeaError>(())
    /// ```
    pub fn solve_batch<O: Observer>(
        &mut self,
        instances: &[BatchInstance],
        obs: &mut O,
    ) -> BatchReport {
        let start = Instant::now();
        let observing = obs.enabled();
        if observing {
            obs.record(&Event::BatchStart {
                instances: instances.len(),
                parallelism: self.options.parallelism.label(),
            });
        }
        // The Batch span opens before any instance runs so the workers'
        // start/end stamps (offsets from `start`) land inside it; each
        // instance becomes a leaf replayed from the serial epilogue.
        let spanning = obs.spans_enabled();
        if spanning {
            obs.span_open(SpanKind::Batch, 0, instances.len() as u64);
        }

        let BatchEngine {
            options,
            cache,
            arena,
        } = self;
        let slots = arena.acquire(instances.len());
        let run = |slot: &mut Slot, inst: &BatchInstance| {
            if spanning {
                slot.start_ns = elapsed_ns(start);
            }
            solve_one(inst, options, cache, observing, spanning, slot);
            if spanning {
                slot.end_ns = elapsed_ns(start);
            }
        };
        match options.parallelism {
            BatchParallelism::Outer | BatchParallelism::OuterThreads(_) => {
                options.parallelism.outer().run(|| {
                    slots
                        .par_iter_mut()
                        .zip(instances.par_iter())
                        .for_each(|(slot, inst)| run(slot, inst));
                });
            }
            _ => {
                for (slot, inst) in slots.iter_mut().zip(instances) {
                    run(slot, inst);
                }
            }
        }

        // Serial epilogue: replay buffered events in submission order,
        // aggregate, and apply the deferred cache writes (last wins).
        let mut items = Vec::with_capacity(instances.len());
        let mut updates: Vec<CacheUpdate> = Vec::new();
        let (mut converged, mut hits, mut misses) = (0usize, 0usize, 0usize);
        let (mut work, mut saved) = (0u64, 0u64);
        for (index, (slot, inst)) in slots.iter_mut().zip(instances).enumerate() {
            if observing {
                for e in slot.events.drain(..) {
                    obs.record(&e);
                }
                obs.record(&Event::BatchInstance {
                    index,
                    id: inst.id.clone(),
                    family: inst.family.clone(),
                    cache: slot.warm.name(),
                    kernel_work: slot.kernel_work,
                    work_saved: slot.work_saved,
                });
            } else {
                slot.events.clear();
            }
            if spanning {
                let tasks = slot
                    .outcome
                    .as_ref()
                    .and_then(|o| o.as_ref().ok())
                    .map_or(0, |s| s.iterations() as u64);
                obs.span_leaf(
                    SpanKind::Instance,
                    index as u64,
                    slot.start_ns,
                    slot.end_ns,
                    tasks,
                    &slot.counters,
                    slot.warm.name(),
                );
            }
            match slot.warm {
                WarmStart::Hit => hits += 1,
                WarmStart::Miss => misses += 1,
                WarmStart::Bypass => {}
            }
            work += slot.kernel_work;
            saved += slot.work_saved;
            if let Some(u) = slot.update.take() {
                updates.push(u);
            }
            // Allowed: `solve_one` unconditionally fills `outcome`; the
            // `Option` only exists so reset slots have a vacant state.
            #[allow(clippy::expect_used)]
            let outcome = slot.outcome.take().expect("slot was solved");
            if outcome.as_ref().is_ok_and(BatchSolution::converged) {
                converged += 1;
            }
            items.push(BatchItemReport {
                index,
                id: inst.id.clone(),
                family: inst.family.clone(),
                warm_start: slot.warm,
                kernel_work: slot.kernel_work,
                work_saved: slot.work_saved,
                outcome,
            });
        }
        cache.apply(updates);
        if spanning {
            obs.span_close(&KernelCounters::default());
        }

        let elapsed = start.elapsed();
        if observing {
            obs.record(&Event::BatchEnd {
                instances: instances.len(),
                converged,
                cache_hits: hits,
                cache_misses: misses,
                kernel_work: work,
                work_saved: saved,
                seconds: elapsed.as_secs_f64(),
            });
        }
        BatchReport {
            items,
            converged,
            cache_hits: hits,
            cache_misses: misses,
            kernel_work: work,
            work_saved: saved,
            elapsed,
        }
    }
}

/// Solve a single instance against a cache snapshot, outside any batch.
///
/// This is the entry point long-running services compose: the caller owns
/// the cache (and whatever lock guards it), resolves sharing and eviction
/// policy itself, and applies the returned [`CacheUpdate`] (if any)
/// whenever it chooses — typically immediately, under the same lock a
/// concurrent worker would take. Events stream to `obs` in order with no
/// batch framing. The result is bitwise identical to the same instance
/// going through [`BatchEngine::solve_batch`] with the same options and
/// cache snapshot (it runs the same per-instance path).
pub fn solve_instance<O: Observer>(
    inst: &BatchInstance,
    opts: &BatchOptions,
    cache: &WarmStartCache,
    obs: &mut O,
) -> (BatchItemReport, Option<CacheUpdate>) {
    let mut slot = Slot::default();
    solve_one(inst, opts, cache, obs.enabled(), false, &mut slot);
    for e in slot.events.drain(..) {
        obs.record(&e);
    }
    // Allowed: `solve_one` unconditionally fills `outcome` (same proof as
    // the batch epilogue above).
    #[allow(clippy::expect_used)]
    let outcome = slot.outcome.take().expect("instance was solved");
    (
        BatchItemReport {
            index: 0,
            id: inst.id.clone(),
            family: inst.family.clone(),
            warm_start: slot.warm,
            kernel_work: slot.kernel_work,
            work_saved: slot.work_saved,
            outcome,
        },
        slot.update.take(),
    )
}

/// Nanoseconds elapsed since `t0`, saturating (good for ~584 years).
fn elapsed_ns(t0: Instant) -> u64 {
    let d = t0.elapsed();
    d.as_secs()
        .saturating_mul(1_000_000_000)
        .saturating_add(u64::from(d.subsec_nanos()))
}

/// Probe sink for one instance: harvests kernel-work counters and (when
/// the batch has an outer observer) buffers the instance's event stream
/// for in-order replay.
struct ProbeObserver {
    keep_events: bool,
    measure: bool,
    work: u64,
    counters: KernelCounters,
    events: Vec<Event>,
}

impl Observer for ProbeObserver {
    fn enabled(&self) -> bool {
        // When neither buffering nor measuring, report disabled so the
        // solvers skip event construction entirely (the allocation-free
        // fast path).
        self.keep_events || self.measure
    }

    fn record(&mut self, event: &Event) {
        if self.measure {
            if let Event::KernelCounters { counters } = event {
                self.work += counters.breakpoints_scanned
                    + counters.quickselect_pivots
                    + counters.boxed_clamps;
                self.counters = self.counters.merged(*counters);
            }
        }
        if self.keep_events {
            self.events.push(event.clone());
        }
    }
}

/// Solve one instance against the cache snapshot, filling `slot`.
fn solve_one(
    inst: &BatchInstance,
    opts: &BatchOptions,
    cache: &WarmStartCache,
    buffer_events: bool,
    spanning: bool,
    slot: &mut Slot,
) {
    // Resolve the warm start against the read-only snapshot. A cached μ of
    // the wrong length (the family changed shape) is a miss, not an error.
    let mut baseline = 0u64;
    if opts.warm_start {
        if let Some(family) = &inst.family {
            match cache.lookup(family) {
                Some(entry) if entry.mu.len() == inst.problem.n() => {
                    slot.mu_seed.extend_from_slice(&entry.mu);
                    slot.warm = WarmStart::Hit;
                    baseline = entry.cold_kernel_work;
                }
                _ => slot.warm = WarmStart::Miss,
            }
        }
    }
    let hit = slot.warm == WarmStart::Hit;

    // Span attribution needs the counters even when the caller left
    // `measure_kernel_work` off, so spanning forces measurement on.
    let mut probe = ProbeObserver {
        keep_events: buffer_events,
        measure: opts.measure_kernel_work || spanning,
        work: 0,
        counters: KernelCounters::default(),
        events: mem::take(&mut slot.events),
    };
    let inner = opts.parallelism.instance();
    let outcome = match &inst.problem {
        BatchProblem::Diagonal(p) => {
            let mut o = SeaOptions::with_epsilon(opts.epsilon);
            o.max_iterations = opts.max_iterations;
            o.kernel = opts.kernel;
            o.simd = opts.simd;
            o.precision = opts.precision;
            o.parallelism = inner;
            if hit {
                o.initial_mu = Some(mem::take(&mut slot.mu_seed));
            }
            let r = solve_diagonal_supervised(p, &o, &opts.supervisor, &mut probe);
            if let Some(seed) = o.initial_mu.take() {
                slot.mu_seed = seed; // reclaim the buffer for the arena
            }
            r.map(BatchSolution::Diagonal)
        }
        BatchProblem::SparseDiagonal(p) => {
            let mut o = SeaOptions::with_epsilon(opts.epsilon);
            o.max_iterations = opts.max_iterations;
            o.kernel = opts.kernel;
            o.simd = opts.simd;
            o.precision = opts.precision;
            o.parallelism = inner;
            if hit {
                o.initial_mu = Some(mem::take(&mut slot.mu_seed));
            }
            let r = solve_diagonal_supervised(p, &o, &opts.supervisor, &mut probe);
            if let Some(seed) = o.initial_mu.take() {
                slot.mu_seed = seed; // reclaim the buffer for the arena
            }
            r.map(BatchSolution::SparseDiagonal)
        }
        BatchProblem::Bounded(p) => {
            let seed = hit.then_some(slot.mu_seed.as_slice());
            let bcfg = BoundedOptions {
                kernel: opts.kernel,
                simd: opts.simd,
                precision: opts.precision,
            };
            solve_bounded_supervised_configured(
                p,
                opts.epsilon,
                opts.max_iterations,
                &bcfg,
                seed,
                &opts.supervisor,
                &mut probe,
            )
            .map(BatchSolution::Bounded)
        }
        BatchProblem::General(p) => {
            let mut o = GeneralSeaOptions::with_epsilon(opts.epsilon);
            o.inner.max_iterations = opts.max_iterations;
            o.inner.kernel = opts.kernel;
            o.inner.simd = opts.simd;
            o.inner.precision = opts.precision;
            o.inner.parallelism = inner;
            if hit {
                o.inner.initial_mu = Some(mem::take(&mut slot.mu_seed));
            }
            let r = solve_general_supervised(p, &o, &opts.supervisor, &mut probe);
            if let Some(seed) = o.inner.initial_mu.take() {
                slot.mu_seed = seed;
            }
            r.map(BatchSolution::General)
        }
    };

    slot.events = probe.events;
    slot.kernel_work = probe.work;
    slot.counters = probe.counters;
    if hit {
        slot.work_saved = baseline.saturating_sub(probe.work);
    }
    // Only converged solutions are cached: a partial μ from a stopped or
    // errored solve would poison later warm starts. A hit keeps the
    // family's original cold baseline; only the seed is refreshed.
    if opts.warm_start {
        if let (Some(family), Ok(sol)) = (&inst.family, &outcome) {
            if sol.converged() {
                slot.update = Some(CacheUpdate {
                    family: family.clone(),
                    entry: CacheEntry {
                        mu: sol.mu().to_vec(),
                        cold_kernel_work: if hit { baseline } else { probe.work },
                    },
                });
            }
        }
    }
    slot.outcome = Some(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_labels_round_trip() {
        for p in [
            BatchParallelism::Serial,
            BatchParallelism::Outer,
            BatchParallelism::OuterThreads(4),
            BatchParallelism::Inner,
            BatchParallelism::InnerThreads(2),
        ] {
            assert_eq!(BatchParallelism::parse(&p.label()), Some(p));
        }
        assert_eq!(BatchParallelism::parse("outer:0"), None);
        assert_eq!(BatchParallelism::parse("sideways"), None);
        assert_eq!(BatchParallelism::parse("inner:x"), None);
    }

    #[test]
    fn outer_modes_fan_out_with_serial_solves() {
        assert_eq!(BatchParallelism::Outer.outer(), Parallelism::Rayon);
        assert_eq!(BatchParallelism::Outer.instance(), Parallelism::Serial);
        assert_eq!(
            BatchParallelism::InnerThreads(3).instance(),
            Parallelism::RayonThreads(3)
        );
        assert_eq!(
            BatchParallelism::InnerThreads(3).outer(),
            Parallelism::Serial
        );
    }
}
