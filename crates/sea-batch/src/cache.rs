//! Per-family warm-start cache of dual multipliers.
//!
//! SEA state is fully captured by the column multipliers `μ` — the row pass
//! recomputes `λ` from `μ` — so warming a solve needs only the previous
//! solution's `μ` vector (the same observation the crash-safe checkpoints
//! rely on). The cache maps a caller-declared *family* key (a problem
//! identity such as `"trade-2024"` that recurs across batches with drifting
//! data) to the last converged `μ` for that family plus the kernel work the
//! family's *cold* solve cost, which is the baseline that `work_saved` is
//! measured against.
//!
//! Within one `solve_batch` call the cache is a read-only snapshot: every
//! instance resolves hit/miss against the state the batch started with, and
//! updates are applied only after all instances finish, in submission order
//! (last writer per family wins). That makes each instance's result a pure
//! function of `(instance, snapshot, options)` — bitwise independent of
//! scheduling and submission order — while hits still materialize across
//! successive `solve_batch` calls on one engine.
//!
//! **Bounded memory.** A long-running service ([`sea-serve`]) accumulates
//! families without bound, so the cache optionally carries a byte budget
//! ([`WarmStartCache::with_limit`]): each entry is costed at its `μ` payload
//! plus key and bookkeeping overhead, and [`WarmStartCache::apply`] evicts
//! least-recently-used families until the budget holds. Recency advances on
//! insert and on an explicit [`WarmStartCache::touch`] (reads through
//! [`WarmStartCache::lookup`] stay `&self` so batch workers can share the
//! snapshot without synchronization — a server should `touch` under its own
//! lock after a hit).
//!
//! [`sea-serve`]: https://docs.rs/sea-serve

use std::collections::HashMap;

/// One cached family: the dual seed and its cold-work baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Column multipliers of the family's last converged solve.
    pub mu: Vec<f64>,
    /// Kernel work (breakpoints + pivots + clamps) of the *cold* solve that
    /// first populated this family. Later hits refresh `mu` but keep this
    /// baseline, so `work_saved` always compares against a cold start.
    pub cold_kernel_work: u64,
}

impl CacheEntry {
    /// Approximate resident bytes of this entry under `key`: the `μ`
    /// payload, the key text, and fixed per-entry bookkeeping overhead
    /// (hash-map slot, lengths, recency stamp).
    fn cost(&self, key: &str) -> usize {
        self.mu.len() * std::mem::size_of::<f64>() + key.len() + ENTRY_OVERHEAD
    }
}

/// Fixed per-entry bookkeeping overhead charged against the byte budget.
const ENTRY_OVERHEAD: usize = 64;

/// A deferred cache write, collected during a batch and applied at the end.
#[derive(Debug, Clone)]
pub struct CacheUpdate {
    /// Family key the entry belongs to.
    pub family: String,
    /// The entry to store.
    pub entry: CacheEntry,
}

#[derive(Debug, Clone)]
struct Stored {
    entry: CacheEntry,
    /// Logical clock value of the last insert or `touch`.
    last_used: u64,
}

/// The per-family warm-start cache (see module docs for snapshot and
/// eviction semantics).
#[derive(Debug, Clone, Default)]
pub struct WarmStartCache {
    entries: HashMap<String, Stored>,
    /// Monotonic logical clock driving LRU recency.
    clock: u64,
    /// Byte budget; `None` = unbounded (the batch-engine default).
    limit_bytes: Option<usize>,
    /// Current approximate resident bytes across all entries.
    bytes: usize,
    /// Families evicted since construction (surfaced in server metrics).
    evictions: u64,
}

impl WarmStartCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that evicts least-recently-used families whenever the
    /// approximate resident size exceeds `limit_bytes`.
    pub fn with_limit(limit_bytes: usize) -> Self {
        WarmStartCache {
            limit_bytes: Some(limit_bytes),
            ..Self::default()
        }
    }

    /// The cached entry for `family`, if any. Does not advance recency —
    /// see [`WarmStartCache::touch`].
    pub fn lookup(&self, family: &str) -> Option<&CacheEntry> {
        self.entries.get(family).map(|s| &s.entry)
    }

    /// Mark `family` as just-used for LRU purposes. Returns true when the
    /// family is cached. Call after a hit resolved via `lookup` (the batch
    /// engine reads a frozen snapshot and never touches; a long-running
    /// server should).
    pub fn touch(&mut self, family: &str) -> bool {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(family) {
            Some(s) => {
                s.last_used = clock;
                true
            }
            None => false,
        }
    }

    /// Number of cached families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident bytes across all entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The byte budget, if one was set.
    pub fn limit(&self) -> Option<usize> {
        self.limit_bytes
    }

    /// Families evicted by the byte budget since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drop every entry (e.g. after a problem-shape migration).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Drop one family's entry. Returns true when something was removed.
    /// This is how a long-running server discards a warm seed that just
    /// broke a solve (e.g. a corrupted μ vector): the next solve for the
    /// family runs cold instead of re-tripping the watchdog forever. Not
    /// counted in [`WarmStartCache::evictions`], which tracks byte-budget
    /// pressure only.
    pub fn remove(&mut self, family: &str) -> bool {
        match self.entries.remove(family) {
            Some(s) => {
                self.bytes = self.bytes.saturating_sub(s.entry.cost(family));
                true
            }
            None => false,
        }
    }

    /// Apply deferred updates in order; the last update per family wins.
    /// With a byte budget set, least-recently-used families are evicted
    /// after the writes until the budget holds (a just-written entry is the
    /// most recent, so a single oversized entry evicts everything else and
    /// then stays).
    pub fn apply(&mut self, updates: impl IntoIterator<Item = CacheUpdate>) {
        for u in updates {
            self.clock += 1;
            let key_len = u.family.len();
            let new_cost = u.entry.cost(&u.family);
            let stored = Stored {
                entry: u.entry,
                last_used: self.clock,
            };
            if let Some(old) = self.entries.insert(u.family, stored) {
                // The displaced entry was charged under the same key.
                let old_cost =
                    old.entry.mu.len() * std::mem::size_of::<f64>() + key_len + ENTRY_OVERHEAD;
                self.bytes = self.bytes.saturating_sub(old_cost);
            }
            self.bytes += new_cost;
        }
        self.evict_to_limit();
    }

    /// Evict least-recently-used families until the byte budget holds.
    fn evict_to_limit(&mut self) {
        let Some(limit) = self.limit_bytes else {
            return;
        };
        while self.bytes > limit && self.entries.len() > 1 {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                if let Some(s) = self.entries.remove(&victim) {
                    self.bytes = self.bytes.saturating_sub(s.entry.cost(&victim));
                    self.evictions += 1;
                }
            } else {
                break;
            }
        }
        // A single entry may legitimately exceed the budget; it stays (the
        // alternative — an always-empty cache — would silently disable warm
        // starts for large families).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(family: &str, n: usize, work: u64) -> CacheUpdate {
        CacheUpdate {
            family: family.into(),
            entry: CacheEntry {
                mu: vec![1.0; n],
                cold_kernel_work: work,
            },
        }
    }

    #[test]
    fn apply_is_last_writer_wins_in_order() {
        let mut c = WarmStartCache::new();
        assert!(c.is_empty());
        c.apply([
            CacheUpdate {
                family: "a".into(),
                entry: CacheEntry {
                    mu: vec![1.0],
                    cold_kernel_work: 100,
                },
            },
            CacheUpdate {
                family: "a".into(),
                entry: CacheEntry {
                    mu: vec![2.0],
                    cold_kernel_work: 100,
                },
            },
            CacheUpdate {
                family: "b".into(),
                entry: CacheEntry {
                    mu: vec![3.0],
                    cold_kernel_work: 7,
                },
            },
        ]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("a").map(|e| e.mu[0]), Some(2.0));
        assert_eq!(c.lookup("b").map(|e| e.cold_kernel_work), Some(7));
        c.clear();
        assert!(c.lookup("a").is_none());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = WarmStartCache::new();
        for i in 0..100 {
            c.apply([update(&format!("f{i}"), 64, 1)]);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.evictions(), 0);
        assert!(c.limit().is_none());
        assert!(c.bytes() > 100 * 64 * 8);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Budget fits roughly two 64-μ entries.
        let cost = 64 * 8 + 2 + ENTRY_OVERHEAD;
        let mut c = WarmStartCache::with_limit(2 * cost + 8);
        c.apply([update("f0", 64, 1)]);
        c.apply([update("f1", 64, 1)]);
        assert_eq!(c.len(), 2);
        // Touch f0 so f1 becomes the LRU victim.
        assert!(c.touch("f0"));
        c.apply([update("f2", 64, 1)]);
        assert_eq!(c.len(), 2);
        assert!(c.lookup("f0").is_some(), "touched entry survives");
        assert!(c.lookup("f1").is_none(), "LRU entry evicted");
        assert!(c.lookup("f2").is_some(), "new entry resident");
        assert_eq!(c.evictions(), 1);
        assert!(!c.touch("f1"), "touch reports evicted families");
    }

    #[test]
    fn oversized_single_entry_stays_resident() {
        let mut c = WarmStartCache::with_limit(100);
        c.apply([update("big", 10_000, 1)]);
        assert_eq!(c.len(), 1, "one oversized entry is kept");
        c.apply([update("big2", 10_000, 1)]);
        // Over budget with two entries: the older one goes.
        assert_eq!(c.len(), 1);
        assert!(c.lookup("big2").is_some());
        assert!(c.bytes() > 100);
    }

    #[test]
    fn rewriting_a_family_does_not_leak_bytes() {
        let mut c = WarmStartCache::with_limit(1 << 20);
        c.apply([update("f", 128, 1)]);
        let b = c.bytes();
        for _ in 0..50 {
            c.apply([update("f", 128, 2)]);
        }
        assert_eq!(c.bytes(), b, "same-size rewrite keeps byte accounting");
        assert_eq!(c.len(), 1);
    }
}
