//! Per-family warm-start cache of dual multipliers.
//!
//! SEA state is fully captured by the column multipliers `μ` — the row pass
//! recomputes `λ` from `μ` — so warming a solve needs only the previous
//! solution's `μ` vector (the same observation the crash-safe checkpoints
//! rely on). The cache maps a caller-declared *family* key (a problem
//! identity such as `"trade-2024"` that recurs across batches with drifting
//! data) to the last converged `μ` for that family plus the kernel work the
//! family's *cold* solve cost, which is the baseline that `work_saved` is
//! measured against.
//!
//! Within one `solve_batch` call the cache is a read-only snapshot: every
//! instance resolves hit/miss against the state the batch started with, and
//! updates are applied only after all instances finish, in submission order
//! (last writer per family wins). That makes each instance's result a pure
//! function of `(instance, snapshot, options)` — bitwise independent of
//! scheduling and submission order — while hits still materialize across
//! successive `solve_batch` calls on one engine.

use std::collections::HashMap;

/// One cached family: the dual seed and its cold-work baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Column multipliers of the family's last converged solve.
    pub mu: Vec<f64>,
    /// Kernel work (breakpoints + pivots + clamps) of the *cold* solve that
    /// first populated this family. Later hits refresh `mu` but keep this
    /// baseline, so `work_saved` always compares against a cold start.
    pub cold_kernel_work: u64,
}

/// A deferred cache write, collected during a batch and applied at the end.
#[derive(Debug, Clone)]
pub struct CacheUpdate {
    /// Family key the entry belongs to.
    pub family: String,
    /// The entry to store.
    pub entry: CacheEntry,
}

/// The per-family warm-start cache (see module docs for snapshot
/// semantics).
#[derive(Debug, Clone, Default)]
pub struct WarmStartCache {
    entries: HashMap<String, CacheEntry>,
}

impl WarmStartCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached entry for `family`, if any.
    pub fn lookup(&self, family: &str) -> Option<&CacheEntry> {
        self.entries.get(family)
    }

    /// Number of cached families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (e.g. after a problem-shape migration).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Apply deferred updates in order; the last update per family wins.
    pub fn apply(&mut self, updates: impl IntoIterator<Item = CacheUpdate>) {
        for u in updates {
            self.entries.insert(u.family, u.entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_is_last_writer_wins_in_order() {
        let mut c = WarmStartCache::new();
        assert!(c.is_empty());
        c.apply([
            CacheUpdate {
                family: "a".into(),
                entry: CacheEntry {
                    mu: vec![1.0],
                    cold_kernel_work: 100,
                },
            },
            CacheUpdate {
                family: "a".into(),
                entry: CacheEntry {
                    mu: vec![2.0],
                    cold_kernel_work: 100,
                },
            },
            CacheUpdate {
                family: "b".into(),
                entry: CacheEntry {
                    mu: vec![3.0],
                    cold_kernel_work: 7,
                },
            },
        ]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("a").map(|e| e.mu[0]), Some(2.0));
        assert_eq!(c.lookup("b").map(|e| e.cold_kernel_work), Some(7));
        c.clear();
        assert!(c.lookup("a").is_none());
    }
}
