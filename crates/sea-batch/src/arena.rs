//! Reusable per-instance workspaces.
//!
//! A long-lived [`BatchEngine`](crate::BatchEngine) solves batch after
//! batch; the arena keeps one `Slot` per instance position alive across
//! `solve_batch` calls so the engine's own bookkeeping — buffered event
//! streams, warm-start seed vectors, outcome scaffolding — reaches a
//! steady state and stops allocating. A slot is `reset` (lengths zeroed,
//! capacity kept) rather than dropped between batches.

use crate::cache::CacheUpdate;
use crate::engine::{BatchSolution, WarmStart};
use sea_core::{Event, KernelCounters, SeaError};

/// Per-instance workspace and result carrier for one batch position.
#[derive(Debug, Default)]
pub(crate) struct Slot {
    /// Buffered per-instance event stream (replayed in submission order
    /// after the batch so parallel outer scheduling cannot reorder it).
    pub events: Vec<Event>,
    /// Reusable buffer the warm-start `μ` seed is copied into; drivers
    /// that need an owned seed borrow it via `mem::take` and hand it back.
    pub mu_seed: Vec<f64>,
    /// Warm-start outcome for the instance.
    pub warm: WarmStart,
    /// Kernel work the instance's solve cost (0 when not measured).
    pub kernel_work: u64,
    /// Kernel work saved vs the family's cold baseline (0 off-hit).
    pub work_saved: u64,
    /// Full kernel counters harvested by the probe (for Instance spans).
    pub counters: KernelCounters,
    /// Solve start offset from the batch epoch, nanoseconds.
    pub start_ns: u64,
    /// Solve end offset from the batch epoch, nanoseconds.
    pub end_ns: u64,
    /// The solve outcome; `None` only before the instance ran.
    pub outcome: Option<Result<BatchSolution, SeaError>>,
    /// Deferred cache write produced by this instance, if any.
    pub update: Option<CacheUpdate>,
}

impl Slot {
    /// Clear for reuse, keeping buffer capacity.
    fn reset(&mut self) {
        self.events.clear();
        self.mu_seed.clear();
        self.warm = WarmStart::Bypass;
        self.kernel_work = 0;
        self.work_saved = 0;
        self.counters = KernelCounters::default();
        self.start_ns = 0;
        self.end_ns = 0;
        self.outcome = None;
        self.update = None;
    }
}

/// The slot pool. Grows monotonically to the largest batch seen.
#[derive(Debug, Default)]
pub struct BatchArena {
    slots: Vec<Slot>,
}

impl BatchArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many instance slots are currently pooled.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Hand out `n` reset slots, growing the pool only when `n` exceeds
    /// every batch size seen so far.
    pub(crate) fn acquire(&mut self, n: usize) -> &mut [Slot] {
        if self.slots.len() < n {
            self.slots.resize_with(n, Slot::default);
        }
        let slots = &mut self.slots[..n];
        for s in slots.iter_mut() {
            s.reset();
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_grows_once_and_resets_slots() {
        let mut a = BatchArena::new();
        assert_eq!(a.capacity(), 0);
        {
            let slots = a.acquire(3);
            slots[0].kernel_work = 9;
            slots[0].events.push(Event::BatchStart {
                instances: 1,
                parallelism: "serial".to_string(),
            });
            slots[0].mu_seed.extend([1.0, 2.0]);
        }
        assert_eq!(a.capacity(), 3);
        let slots = a.acquire(2);
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].kernel_work, 0, "slot state was reset");
        assert!(slots[0].events.is_empty());
        assert!(slots[0].mu_seed.is_empty());
        assert!(slots[0].events.capacity() >= 1, "capacity survives reset");
    }
}
