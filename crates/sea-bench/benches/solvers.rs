//! Criterion benchmarks for full solves: diagonal SEA across problem
//! classes, and SEA vs RC vs B-K on a small general instance (the Table 7
//! microcosm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sea_baselines::bachem_korte::{solve_general_bk, BkOptions};
use sea_baselines::rc::{solve_general_rc, RcOptions};
use sea_core::{solve_diagonal, solve_general, GeneralSeaOptions, SeaOptions};
use sea_data::sam::{sam_problem, SamInstance};
use sea_data::{table1_instance, table7_instance};
use sea_spatial::random_spe;
use std::hint::black_box;

fn bench_diagonal_sea(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagonal_sea");
    group.sample_size(10);
    for &n in &[100usize, 300] {
        let p = table1_instance(n, 1990);
        group.bench_with_input(BenchmarkId::new("fixed", n), &n, |b, _| {
            b.iter(|| solve_diagonal(black_box(&p), &SeaOptions::with_epsilon(0.01)).unwrap())
        });
    }
    {
        let p = sam_problem(SamInstance::Usda82e, 1990);
        group.bench_function("sam_usda82e", |b| {
            b.iter(|| solve_diagonal(black_box(&p), &SeaOptions::with_epsilon(0.001)).unwrap())
        });
    }
    {
        let spe = random_spe(100, 100, 1990);
        let p = spe.to_constrained_matrix().unwrap();
        group.bench_function("elastic_sp100", |b| {
            b.iter(|| {
                let mut o = SeaOptions::with_epsilon(0.01);
                o.check_every = 2;
                solve_diagonal(black_box(&p), &o).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_general_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("general_solvers");
    group.sample_size(10);
    let p = table7_instance(15, 1990); // G is 225 x 225
    group.bench_function("sea", |b| {
        b.iter(|| solve_general(black_box(&p), &GeneralSeaOptions::with_epsilon(0.001)).unwrap())
    });
    group.bench_function("rc", |b| {
        b.iter(|| solve_general_rc(black_box(&p), &RcOptions::with_epsilon(0.001)).unwrap())
    });
    // B-K is orders of magnitude slower (the Table 7 point); bench it on a
    // smaller instance at a looser tolerance so `cargo bench` stays usable.
    let p_small = table7_instance(8, 1990);
    group.bench_function("bachem_korte", |b| {
        b.iter(|| solve_general_bk(black_box(&p_small), &BkOptions::with_epsilon(0.01)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_diagonal_sea, bench_general_solvers);
criterion_main!(benches);
