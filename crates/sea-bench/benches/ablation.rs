//! Criterion ablations: sort-scan vs quickselect equilibration kernels,
//! serial vs rayon equilibration passes, structural zeros vs free zeros on
//! sparse priors, and convergence-check cadence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{
    solve_diagonal, DiagonalProblem, KernelKind, Parallelism, SeaOptions, TotalSpec, ZeroPolicy,
};
use sea_data::table1_instance;
use sea_linalg::DenseMatrix;
use sea_spatial::random_spe;
use std::hint::black_box;

fn sparse_problem(n: usize, density: f64, policy: ZeroPolicy) -> DiagonalProblem {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut data = vec![0.0; n * n];
    for v in &mut data {
        if rng.random_range(0.0..1.0) < density {
            *v = rng.random_range(0.1..100.0);
        }
    }
    // Ensure support.
    for i in 0..n {
        if data[i * n..(i + 1) * n].iter().all(|&v| v == 0.0) {
            data[i * n + (i + 1) % n] = 1.0;
        }
    }
    for j in 0..n {
        if (0..n).all(|i| data[i * n + j] == 0.0) {
            data[((j + 1) % n) * n + j] = 1.0;
        }
    }
    let x0 = DenseMatrix::from_vec(n, n, data).unwrap();
    let gamma = DenseMatrix::from_vec(
        n,
        n,
        x0.as_slice()
            .iter()
            .map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 })
            .collect(),
    )
    .unwrap();
    let s0: Vec<f64> = x0.row_sums().iter().map(|v| 1.2 * v).collect();
    let d0: Vec<f64> = x0.col_sums().iter().map(|v| 1.2 * v).collect();
    DiagonalProblem::with_zero_policy(x0, gamma, TotalSpec::Fixed { s0, d0 }, policy).unwrap()
}

fn bench_kernel(c: &mut Criterion) {
    // End-to-end solve cost under each equilibration kernel: each SEA
    // iteration runs one knapsack per row and per column, so the kernel
    // dominates once the subproblems are long.
    let mut group = c.benchmark_group("kernel_ablation");
    group.sample_size(10);
    for &n in &[100usize, 300] {
        let p = table1_instance(n, 7);
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            group.bench_with_input(BenchmarkId::new(kernel.name(), n), &p, |b, p| {
                b.iter(|| {
                    let mut o = SeaOptions::with_epsilon(0.01);
                    o.kernel = kernel;
                    solve_diagonal(black_box(p), &o).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallelism_mode");
    group.sample_size(10);
    let p = table1_instance(300, 7);
    for (name, par) in [
        ("serial", Parallelism::Serial),
        ("rayon", Parallelism::Rayon),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut o = SeaOptions::with_epsilon(0.01);
                o.parallelism = par;
                solve_diagonal(black_box(&p), &o).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_zero_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_policy_sparse16pct");
    group.sample_size(10);
    for (name, policy) in [
        ("structural", ZeroPolicy::Structural),
        ("free", ZeroPolicy::Free),
    ] {
        let p = sparse_problem(300, 0.16, policy);
        group.bench_with_input(BenchmarkId::new(name, 300), &p, |b, p| {
            b.iter(|| solve_diagonal(black_box(p), &SeaOptions::with_epsilon(0.01)).unwrap())
        });
    }
    group.finish();
}

fn bench_check_cadence(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_cadence_sp100");
    group.sample_size(10);
    let spe = random_spe(100, 100, 3);
    let p = spe.to_constrained_matrix().unwrap();
    for cadence in [1usize, 2, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(cadence), &cadence, |b, &k| {
            b.iter(|| {
                let mut o = SeaOptions::with_epsilon(0.01);
                o.check_every = k;
                solve_diagonal(black_box(&p), &o).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel,
    bench_parallelism,
    bench_zero_policy,
    bench_check_cadence
);
criterion_main!(benches);
