//! Criterion microbenchmarks for the hot kernels: exact equilibration,
//! the sorting routines it relies on, and the dense mat-vec of the general
//! solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::knapsack::{
    exact_equilibration_boxed_with, exact_equilibration_with, EquilibrationScratch, KernelKind,
    TotalMode,
};
use sea_linalg::{sort, DenseMatrix};
use std::hint::black_box;

fn bench_exact_equilibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_equilibration");
    group.sample_size(20);
    for &n in &[100usize, 1000, 5000] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let q: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..10_000.0)).collect();
        let gamma: Vec<f64> = q.iter().map(|&v| 1.0 / v).collect();
        let shift: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let total: f64 = q.iter().sum::<f64>() * 1.7;
        let mut x = vec![0.0; n];
        let mut scratch = EquilibrationScratch::new();
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            group.bench_with_input(
                BenchmarkId::new(format!("fixed-{kernel}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        exact_equilibration_with(
                            kernel,
                            black_box(&q),
                            &gamma,
                            &shift,
                            TotalMode::Fixed { total },
                            &mut x,
                            &mut scratch,
                        )
                        .unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("elastic-{kernel}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        exact_equilibration_with(
                            kernel,
                            black_box(&q),
                            &gamma,
                            &shift,
                            TotalMode::Elastic {
                                alpha: 0.5,
                                prior: total,
                                cross: 0.0,
                            },
                            &mut x,
                            &mut scratch,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_boxed_equilibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("boxed_equilibration");
    group.sample_size(20);
    for &n in &[100usize, 1000, 5000] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64 ^ 0xB0);
        let q: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..100.0)).collect();
        let gamma: Vec<f64> = q.iter().map(|&v| 1.0 / v).collect();
        let shift: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let lo: Vec<f64> = q.iter().map(|&v| 0.5 * v).collect();
        let hi: Vec<f64> = q.iter().map(|&v| 2.0 * v).collect();
        let total: f64 = q.iter().sum::<f64>() * 1.2;
        let mut x = vec![0.0; n];
        let mut scratch = EquilibrationScratch::new();
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            group.bench_with_input(
                BenchmarkId::new(format!("fixed-{kernel}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        exact_equilibration_boxed_with(
                            kernel,
                            black_box(&q),
                            &gamma,
                            &shift,
                            &lo,
                            &hi,
                            TotalMode::Fixed { total },
                            &mut x,
                            &mut scratch,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("argsort");
    group.sample_size(20);
    for &n in &[60usize, 120, 1000] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let key: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(BenchmarkId::new("heapsort", n), &n, |b, _| {
            b.iter(|| {
                sort::identity_permutation(&mut idx);
                sort::heap_argsort(black_box(&mut idx), &key);
            })
        });
        if n <= 120 {
            group.bench_with_input(BenchmarkId::new("insertion", n), &n, |b, _| {
                b.iter(|| {
                    sort::identity_permutation(&mut idx);
                    sort::insertion_argsort(black_box(&mut idx), &key);
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("dispatched", n), &n, |b, _| {
            b.iter(|| {
                sort::identity_permutation(&mut idx);
                sort::argsort(black_box(&mut idx), &key);
            })
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_matvec");
    group.sample_size(10);
    for &n in &[400usize, 1600] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let data: Vec<f64> = (0..n * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let m = DenseMatrix::from_vec(n, n, data).unwrap();
        let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| m.matvec(black_box(&x), &mut y).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| m.matvec_parallel(black_box(&x), &mut y).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_equilibration,
    bench_boxed_equilibration,
    bench_sorts,
    bench_matvec
);
criterion_main!(benches);
