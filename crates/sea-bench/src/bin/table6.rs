//! Table 6 — Parallel speedup and efficiency measurements for SEA on
//! diagonal problems (§4.2), plus the Figure 5 series.
//!
//! Four examples (IO72b, the 1000×1000 Table 1 instance, SP500×500,
//! SP750×750) run with per-task trace recording; speedups for
//! N ∈ {2, 4, 6} come from the `sea-parsim` machine simulator (DESIGN.md
//! substitution S2 — this container has one CPU, the paper had six).

use sea_bench::{
    experiments::diagonal_speedup_experiment, results_dir, speedup_rows_to_table, Scale,
};
use sea_report::{ExperimentRecord, Table};

fn main() {
    let (scale, seed) = Scale::from_args();
    let results = diagonal_speedup_experiment(scale, seed);

    let mut record = ExperimentRecord::new(
        "table6",
        "Table 6: parallel speedup and efficiency, SEA on diagonal problems (simulated machine)",
    );
    let mut table = Table::new("Speedups", &["Example", "N", "S_N", "E_N"]);
    for (name, rows) in &results {
        speedup_rows_to_table(&mut table, name, rows);
    }
    record.push_table(table);
    record.push_note(format!("scale = {scale:?}, seed = {seed}"));
    record.push_note(
        "Speedups from the deterministic N-processor scheduling simulator over \
         measured per-task traces (substitution S2). Paper (IBM 3090-600E, \
         standalone): IO72b 1.93/3.74/5.15, 1000x1000 1.93/3.57/4.71, \
         SP500 1.86/3.52/4.66, SP750 1.87/3.19/3.86 for N = 2/4/6.",
    );
    record.push_note(
        "Expected shape: near-linear at N=2 (~93-97% efficiency), degrading \
         with N as the serial convergence-verification phase grows relative to \
         the parallel equilibration work; elastic (SP) examples degrade faster \
         because they verify convergence far more often (84-104 iterations).",
    );
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
