//! Serve load benchmark: the `BENCH_8.json` snapshot.
//!
//! Runs an in-process [`sea_serve::Server`] and drives it with
//! keep-alive HTTP clients over a fleet of heterogeneous-weight
//! families (the `hard_problem` recipe — convergence takes real work, so
//! a warm dual seed pays off):
//!
//! * **cold phase** — every family solved once on a fresh cache; all
//!   requests are warm-start misses.
//! * **warm phase** — sustained concurrent load cycling the same
//!   families; every request after the fill should be a hit. Mid-phase
//!   the harness scrapes `/metrics` and asserts the exposition is
//!   well-formed (queue depth + request-latency histogram present).
//!
//! The committed snapshot records sustained req/s and p50/p99 latency
//! for both phases plus the warm hit fraction.
//!
//! ```text
//! bench_serve [--out BENCH_8.json] [--requests 400] [--clients 4] [--smoke]
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_observe::json::{f64_to_json, JsonValue};
use sea_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Instance order (rows = cols).
const N: usize = 40;
/// Families cycled by the load generator.
const FAMILIES: usize = 8;
/// Stopping tolerance (tight enough that convergence takes real work).
const EPSILON: f64 = 1e-10;

/// One family's request body: heterogeneous weights spanning seven
/// decades, exact-balance fixed totals, stable under its family key.
fn family_body(index: u64) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBE8C ^ index);
    let mut matrix = String::from("[");
    for i in 0..N {
        if i > 0 {
            matrix.push(',');
        }
        matrix.push('[');
        for j in 0..N {
            if j > 0 {
                matrix.push(',');
            }
            let phase = (i * N + j) % 7;
            let v: f64 = (1.0 + phase as f64) * rng.random_range(0.9..1.1);
            matrix.push_str(&format!("{v:.6}"));
        }
        matrix.push(']');
    }
    matrix.push(']');
    let s0: Vec<f64> = (0..N)
        .map(|i| (20.0 + 3.0 * (i % 7) as f64) * rng.random_range(0.9..1.1))
        .collect();
    let grand: f64 = s0.iter().sum();
    let mut d0: Vec<f64> = (0..N).map(|j| 30.0 - 4.0 * (j % 7) as f64).collect();
    let dsum: f64 = d0.iter().sum();
    for d in &mut d0 {
        *d *= grand / dsum;
    }
    d0[0] += grand - d0.iter().sum::<f64>();
    // Round-trip formatting: the server re-parses these exact f64s, so
    // the exact-balance fix above survives serialization.
    let fmt = |v: &[f64]| {
        let items: Vec<String> = v.iter().map(|x| format!("{x}")).collect();
        format!("[{}]", items.join(","))
    };
    format!(
        "{{\"id\":\"req-{index}\",\"family\":\"fam-{index}\",\"epsilon\":{EPSILON:e},\
         \"weights\":\"chi2\",\"matrix\":{matrix},\"row_totals\":{},\"col_totals\":{}}}",
        fmt(&s0),
        fmt(&d0)
    )
}

/// One keep-alive HTTP exchange; returns (status, body).
fn exchange(
    conn: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    // One write per request: piecemeal writes trip Nagle/delayed-ACK
    // stalls that would dominate the measured latency.
    let frame = format!(
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.get_mut()
        .write_all(frame.as_bytes())
        .expect("send request");
    let mut line = String::new();
    conn.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        conn.read_line(&mut header).expect("header line");
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length value");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    BufReader::new(stream)
}

struct PhaseStats {
    latencies: Vec<f64>,
    wall: f64,
    hits: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Drive `total` requests over `clients` keep-alive connections, cycling
/// the family bodies round-robin.
fn drive(
    addr: SocketAddr,
    bodies: &Arc<Vec<String>>,
    clients: usize,
    total: usize,
    scrape_mid_load: bool,
) -> PhaseStats {
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let bodies = Arc::clone(bodies);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                let mut latencies = Vec::new();
                let mut hits = 0usize;
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= total {
                        return (latencies, hits);
                    }
                    let body = &bodies[k % bodies.len()];
                    let t = Instant::now();
                    let (status, text) = exchange(&mut conn, "POST", "/solve", body);
                    latencies.push(t.elapsed().as_secs_f64());
                    assert_eq!(status, 200, "solve failed: {text}");
                    assert!(text.contains("\"stop\":\"converged\""), "{text}");
                    if text.contains("\"cache\":\"hit\"") {
                        hits += 1;
                    }
                }
            })
        })
        .collect();

    if scrape_mid_load {
        // Scrape while the clients are still pushing load and assert the
        // exposition is well-formed.
        let mut conn = connect(addr);
        let (status, metrics) = exchange(&mut conn, "GET", "/metrics", "");
        assert_eq!(status, 200);
        for needle in [
            "# TYPE sea_serve_queue_depth gauge",
            "# TYPE sea_serve_request_seconds histogram",
            "sea_serve_request_seconds_bucket",
            "sea_serve_requests_total",
            "# TYPE sea_solves_total counter",
        ] {
            assert!(
                metrics.contains(needle),
                "mid-load /metrics missing {needle:?}"
            );
        }
        eprintln!(
            "mid-load /metrics scrape: well-formed ({} bytes)",
            metrics.len()
        );
    }

    let mut latencies = Vec::new();
    let mut hits = 0usize;
    for h in handles {
        let (l, hi) = h.join().expect("client thread");
        latencies.extend(l);
        hits += hi;
    }
    let wall = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    PhaseStats {
        latencies,
        wall,
        hits,
    }
}

fn phase_json(name: &str, stats: &PhaseStats) -> (String, JsonValue) {
    let n = stats.latencies.len();
    let rps = n as f64 / stats.wall;
    let p50 = percentile(&stats.latencies, 0.50);
    let p99 = percentile(&stats.latencies, 0.99);
    eprintln!(
        "{name}: {n} requests in {:.2}s → {rps:.1} req/s, p50 {:.1}ms, p99 {:.1}ms, hits {}",
        stats.wall,
        p50 * 1e3,
        p99 * 1e3,
        stats.hits
    );
    (
        name.to_string(),
        JsonValue::Object(vec![
            ("requests".to_string(), JsonValue::Number(n as f64)),
            ("wall_seconds".to_string(), f64_to_json(stats.wall)),
            ("sustained_rps".to_string(), f64_to_json(rps)),
            ("p50_seconds".to_string(), f64_to_json(p50)),
            ("p99_seconds".to_string(), f64_to_json(p99)),
            (
                "warm_hits".to_string(),
                JsonValue::Number(stats.hits as f64),
            ),
        ]),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out = "BENCH_8.json".to_string();
    let mut requests = 400usize;
    let mut clients = 4usize;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                if let Some(v) = it.next() {
                    out = v.clone();
                }
            }
            "--requests" => {
                if let Some(v) = it.next() {
                    requests = v.parse().unwrap_or(requests).max(FAMILIES);
                }
            }
            "--clients" => {
                if let Some(v) = it.next() {
                    clients = v.parse().unwrap_or(clients).max(1);
                }
            }
            "--smoke" => {
                requests = 3 * FAMILIES;
                clients = 2;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let workers = 4;
    let server = Server::bind(ServeConfig {
        workers,
        queue_capacity: 256,
        epsilon: EPSILON,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let bodies = Arc::new(
        (0..FAMILIES as u64)
            .map(family_body)
            .collect::<Vec<String>>(),
    );

    // Cold: one solve per family on an empty cache (serial, so every
    // request is a genuine miss rather than racing the first fill).
    let cold = drive(addr, &bodies, 1, FAMILIES, false);
    assert_eq!(cold.hits, 0, "cold phase must not hit the cache");

    // Warm: sustained concurrent load over the now-filled cache.
    let warm = drive(addr, &bodies, clients, requests, true);
    assert!(
        warm.hits * 10 >= warm.latencies.len() * 9,
        "warm phase should hit the cache on ≥90% of requests ({}/{})",
        warm.hits,
        warm.latencies.len()
    );

    server.shutdown();
    server.join();

    let (cold_key, cold_json) = phase_json("cold", &cold);
    let (warm_key, warm_json) = phase_json("warm", &warm);
    let doc = JsonValue::Object(vec![
        (
            "schema".to_string(),
            JsonValue::String("sea-bench-summary/v1".to_string()),
        ),
        ("pr".to_string(), JsonValue::Number(8.0)),
        (
            "serve_load".to_string(),
            JsonValue::Object(vec![
                ("rows".to_string(), JsonValue::Number(N as f64)),
                ("cols".to_string(), JsonValue::Number(N as f64)),
                ("families".to_string(), JsonValue::Number(FAMILIES as f64)),
                ("epsilon".to_string(), f64_to_json(EPSILON)),
                ("workers".to_string(), JsonValue::Number(workers as f64)),
                ("clients".to_string(), JsonValue::Number(clients as f64)),
                (cold_key, cold_json),
                (warm_key, warm_json),
            ]),
        ),
    ]);
    let mut text = doc.render();
    text.push('\n');
    std::fs::write(&out, text).expect("write snapshot");
    eprintln!("wrote {out}");
}
