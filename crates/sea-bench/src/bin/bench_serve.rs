//! Serve load benchmark: the `BENCH_8.json` (healthy) and `BENCH_9.json`
//! (chaos soak) snapshots.
//!
//! Runs an in-process [`sea_serve::Server`] and drives it with
//! keep-alive HTTP clients over a fleet of heterogeneous-weight
//! families (the `hard_problem` recipe — convergence takes real work, so
//! a warm dual seed pays off):
//!
//! * **cold phase** — every family solved once on a fresh cache; all
//!   requests are warm-start misses.
//! * **warm phase** — sustained concurrent load cycling the same
//!   families; every request after the fill should be a hit. Mid-phase
//!   the harness scrapes `/metrics` and asserts the exposition is
//!   well-formed (queue depth + request-latency histogram present).
//! * **chaos soak** (`--chaos`) — a second server configured with a
//!   scripted [`ChaosPlan`]: a contained worker panic, a worker crash
//!   and respawn, a poison family driven into quarantine and back out,
//!   a corrupted warm-cache entry, degraded deadline answers, an
//!   overload window with admission-time shedding, a retrying client
//!   riding `Retry-After` to success, and a stalled slow client. The
//!   soak asserts every request got exactly one typed response and the
//!   pool ended full, ready, and drained.
//!
//! The committed snapshot records sustained req/s and p50/p99 latency
//! for the healthy phases plus (under `--chaos`) the overload-window
//! latencies and the full fault ledger.
//!
//! ```text
//! bench_serve [--out BENCH_8.json] [--requests 400] [--clients 4]
//!             [--smoke] [--chaos]
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_cli::client::{RetryPolicy, RetryingClient};
use sea_observe::json::{f64_to_json, JsonValue};
use sea_serve::{ChaosPlan, QuarantinePolicy, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Instance order (rows = cols).
const N: usize = 40;
/// Families cycled by the load generator.
const FAMILIES: usize = 8;
/// Stopping tolerance (tight enough that convergence takes real work).
const EPSILON: f64 = 1e-10;

/// One family's request body: heterogeneous weights spanning seven
/// decades, exact-balance fixed totals, stable under its family key.
fn family_body(index: u64) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBE8C ^ index);
    let mut matrix = String::from("[");
    for i in 0..N {
        if i > 0 {
            matrix.push(',');
        }
        matrix.push('[');
        for j in 0..N {
            if j > 0 {
                matrix.push(',');
            }
            let phase = (i * N + j) % 7;
            let v: f64 = (1.0 + phase as f64) * rng.random_range(0.9..1.1);
            matrix.push_str(&format!("{v:.6}"));
        }
        matrix.push(']');
    }
    matrix.push(']');
    let s0: Vec<f64> = (0..N)
        .map(|i| (20.0 + 3.0 * (i % 7) as f64) * rng.random_range(0.9..1.1))
        .collect();
    let grand: f64 = s0.iter().sum();
    let mut d0: Vec<f64> = (0..N).map(|j| 30.0 - 4.0 * (j % 7) as f64).collect();
    let dsum: f64 = d0.iter().sum();
    for d in &mut d0 {
        *d *= grand / dsum;
    }
    d0[0] += grand - d0.iter().sum::<f64>();
    // Round-trip formatting: the server re-parses these exact f64s, so
    // the exact-balance fix above survives serialization.
    let fmt = |v: &[f64]| {
        let items: Vec<String> = v.iter().map(|x| format!("{x}")).collect();
        format!("[{}]", items.join(","))
    };
    format!(
        "{{\"id\":\"req-{index}\",\"family\":\"fam-{index}\",\"epsilon\":{EPSILON:e},\
         \"weights\":\"chi2\",\"matrix\":{matrix},\"row_totals\":{},\"col_totals\":{}}}",
        fmt(&s0),
        fmt(&d0)
    )
}

/// One keep-alive HTTP exchange; returns (status, body).
fn exchange(
    conn: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    // One write per request: piecemeal writes trip Nagle/delayed-ACK
    // stalls that would dominate the measured latency.
    let frame = format!(
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.get_mut()
        .write_all(frame.as_bytes())
        .expect("send request");
    let mut line = String::new();
    conn.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        conn.read_line(&mut header).expect("header line");
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length value");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    BufReader::new(stream)
}

struct PhaseStats {
    latencies: Vec<f64>,
    wall: f64,
    hits: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Drive `total` requests over `clients` keep-alive connections, cycling
/// the family bodies round-robin.
fn drive(
    addr: SocketAddr,
    bodies: &Arc<Vec<String>>,
    clients: usize,
    total: usize,
    scrape_mid_load: bool,
) -> PhaseStats {
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let bodies = Arc::clone(bodies);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                let mut latencies = Vec::new();
                let mut hits = 0usize;
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= total {
                        return (latencies, hits);
                    }
                    let body = &bodies[k % bodies.len()];
                    let t = Instant::now();
                    let (status, text) = exchange(&mut conn, "POST", "/solve", body);
                    latencies.push(t.elapsed().as_secs_f64());
                    assert_eq!(status, 200, "solve failed: {text}");
                    assert!(text.contains("\"stop\":\"converged\""), "{text}");
                    if text.contains("\"cache\":\"hit\"") {
                        hits += 1;
                    }
                }
            })
        })
        .collect();

    if scrape_mid_load {
        // Scrape while the clients are still pushing load and assert the
        // exposition is well-formed.
        let mut conn = connect(addr);
        let (status, metrics) = exchange(&mut conn, "GET", "/metrics", "");
        assert_eq!(status, 200);
        for needle in [
            "# TYPE sea_serve_queue_depth gauge",
            "# TYPE sea_serve_request_seconds histogram",
            "sea_serve_request_seconds_bucket",
            "sea_serve_requests_total",
            "# TYPE sea_solves_total counter",
        ] {
            assert!(
                metrics.contains(needle),
                "mid-load /metrics missing {needle:?}"
            );
        }
        eprintln!(
            "mid-load /metrics scrape: well-formed ({} bytes)",
            metrics.len()
        );
    }

    let mut latencies = Vec::new();
    let mut hits = 0usize;
    for h in handles {
        let (l, hi) = h.join().expect("client thread");
        latencies.extend(l);
        hits += hi;
    }
    let wall = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    PhaseStats {
        latencies,
        wall,
        hits,
    }
}

fn phase_json(name: &str, stats: &PhaseStats) -> (String, JsonValue) {
    let n = stats.latencies.len();
    let rps = n as f64 / stats.wall;
    let p50 = percentile(&stats.latencies, 0.50);
    let p99 = percentile(&stats.latencies, 0.99);
    eprintln!(
        "{name}: {n} requests in {:.2}s → {rps:.1} req/s, p50 {:.1}ms, p99 {:.1}ms, hits {}",
        stats.wall,
        p50 * 1e3,
        p99 * 1e3,
        stats.hits
    );
    (
        name.to_string(),
        JsonValue::Object(vec![
            ("requests".to_string(), JsonValue::Number(n as f64)),
            ("wall_seconds".to_string(), f64_to_json(stats.wall)),
            ("sustained_rps".to_string(), f64_to_json(rps)),
            ("p50_seconds".to_string(), f64_to_json(p50)),
            ("p99_seconds".to_string(), f64_to_json(p99)),
            (
                "warm_hits".to_string(),
                JsonValue::Number(stats.hits as f64),
            ),
        ]),
    )
}

/// One `Connection: close` exchange on a fresh socket; returns
/// `(status, head, body)`. The chaos requests use this instead of the
/// keep-alive driver: crash/panic answers close the connection anyway.
fn one_shot(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    BufReader::new(conn).read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) => (status, head.to_string(), body.to_string()),
        None => (status, raw, String::new()),
    }
}

/// A tiny solvable 2x2 instance; `extra` splices serve-level fields
/// (`"deadline":…,"epsilon":…,`) ahead of the matrix.
fn tiny_body(id: &str, family: &str, extra: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"family\":\"{family}\",{extra}\"matrix\":[[1.0,2.0],[3.0,4.0]],\
         \"row_totals\":[4.0,6.0],\"col_totals\":[5.0,5.0]}}"
    )
}

/// Value of an unlabeled metric line (`name value`) from a scrape.
fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(f64::NAN)
}

fn scrape(addr: SocketAddr) -> String {
    one_shot(addr, "GET", "/metrics", "").2
}

/// Poll `/metrics` until `pred` holds (the supervisor respawns workers
/// asynchronously); panics after ~5s.
fn wait_for_metric(addr: SocketAddr, name: &str, pred: impl Fn(f64) -> bool) -> f64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let v = metric_value(&scrape(addr), name);
        if pred(v) {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out on {name}, last {v}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Running ledger of chaos-phase outcomes: every request issued lands in
/// exactly one bucket, and the soak asserts the buckets sum to the
/// requests issued — nothing hangs, nothing double-answers.
#[derive(Default)]
struct Ledger {
    issued: usize,
    converged: usize,
    degraded: usize,
    breakdown: usize,
    deadline_504: usize,
    panic_500: usize,
    quarantined_422: usize,
    shed_429: usize,
}

impl Ledger {
    fn accounted(&self) -> usize {
        self.converged
            + self.degraded
            + self.breakdown
            + self.deadline_504
            + self.panic_500
            + self.quarantined_422
            + self.shed_429
    }

    /// File a final `(status, body)` under its bucket.
    fn file(&mut self, status: u16, body: &str) {
        self.issued += 1;
        match status {
            200 if body.contains("\"degraded\":true") => self.degraded += 1,
            200 if body.contains("breakdown") => self.breakdown += 1,
            200 => self.converged += 1,
            500 => self.panic_500 += 1,
            422 => self.quarantined_422 += 1,
            429 => self.shed_429 += 1,
            504 => self.deadline_504 += 1,
            other => panic!("unexpected status {other}: {body}"),
        }
    }
}

/// The deterministic fault script: solve sequence numbers are global and
/// 1-based, every chaos request below is serial, and quarantine refusals
/// never reach a worker (so they consume no sequence number) — which
/// pins each fault to exactly the request written next to it.
const CHAOS_SPEC: &str = "panic@1,crash@2,nan@3-4,cachecorrupt@6";

/// Drive the scripted chaos soak against a dedicated server; returns the
/// `chaos_soak` snapshot section.
fn chaos_soak() -> JsonValue {
    const WORKERS: usize = 2;
    let server = Server::bind(ServeConfig {
        workers: WORKERS,
        max_iterations: 1_000_000_000,
        degraded_epsilon: Some(1.0),
        quarantine: Some(QuarantinePolicy {
            strikes: 2,
            cooldown: Duration::from_millis(300),
        }),
        chaos: ChaosPlan::parse(CHAOS_SPEC).expect("valid chaos spec"),
        ..ServeConfig::default()
    })
    .expect("bind chaos server");
    let addr = server.addr();
    let mut ledger = Ledger::default();

    // seq 1 — contained panic: typed 500, the worker thread survives.
    let (status, _, body) = one_shot(addr, "POST", "/solve", &tiny_body("r1", "pan", ""));
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"panic\":true"), "{body}");
    ledger.file(status, &body);

    // seq 2 — worker crash: typed 500 from the dropped channel, then the
    // supervisor respawns the slot and the pool is whole again.
    let (status, _, body) = one_shot(addr, "POST", "/solve", &tiny_body("r2", "crash", ""));
    assert_eq!(status, 500, "{body}");
    ledger.file(status, &body);
    wait_for_metric(addr, "sea_serve_worker_restarts_total", |v| v >= 1.0);
    wait_for_metric(addr, "sea_serve_workers_alive", |v| v == WORKERS as f64);

    // seqs 3-4 — two scripted NaNs poison family "toxic": strike, strike,
    // circuit open.
    let toxic = tiny_body("r3", "toxic", "");
    for _ in 0..2 {
        let (status, _, body) = one_shot(addr, "POST", "/solve", &toxic);
        assert_eq!(status, 200, "poison is typed, not 5xx: {body}");
        ledger.file(status, &body);
    }

    // no seq — the open circuit refuses at admission with 422.
    let (status, head, body) = one_shot(addr, "POST", "/solve", &toxic);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"quarantined\":true"), "{body}");
    assert!(head.contains("Retry-After:"), "{head}");
    ledger.file(status, &body);

    // seqs 5-7 — fill family "victim"'s warm entry, corrupt it with the
    // scripted fault (one poison strike, entry evicted), then watch the
    // next solve run cold and converge: the cache heals itself.
    let victim = tiny_body("r6", "victim", "");
    for expect_breakdown in [false, true, false] {
        let (status, _, body) = one_shot(addr, "POST", "/solve", &victim);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.contains("breakdown"), expect_breakdown, "{body}");
        ledger.file(status, &body);
    }

    // seq 8 — past the cooldown the probe is admitted, the chaos script
    // is spent, and the circuit closes.
    std::thread::sleep(Duration::from_millis(350));
    let (status, _, body) = one_shot(addr, "POST", "/solve", &toxic);
    assert_eq!(status, 200, "probe heals the family: {body}");
    assert!(body.contains("\"stop\":\"converged\""), "{body}");
    ledger.file(status, &body);

    // seqs 9-11 — never-converging solves run to their deadlines and are
    // accepted at the degraded tolerance; they also seed the wait
    // estimator's EWMA with honest slow-solve samples.
    for (id, deadline) in [("deg", 0.25), ("seed1", 0.3), ("seed2", 0.3)] {
        let body_text = tiny_body(
            id,
            "slow",
            &format!("\"deadline\":{deadline},\"epsilon\":-1.0,"),
        );
        let (status, _, body) = one_shot(addr, "POST", "/solve", &body_text);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"degraded\":true"), "{body}");
        ledger.file(status, &body);
    }

    // Overload window: occupy both workers and queue two more slow jobs,
    // then burst doomed short-deadline requests — every one is shed at
    // admission (429 + Retry-After) instead of rotting in the queue.
    let overload_start = Instant::now();
    let mut overload_latencies: Vec<f64> = Vec::new();
    let slow = tiny_body("fill", "slow", "\"deadline\":0.8,\"epsilon\":-1.0,");
    let mut fills = Vec::new();
    for wave in 0..2 {
        for _ in 0..WORKERS {
            let slow = slow.clone();
            fills.push(std::thread::spawn(move || {
                let t = Instant::now();
                let (status, _, body) = one_shot(addr, "POST", "/solve", &slow);
                (status, body, t.elapsed().as_secs_f64())
            }));
        }
        // First wave reaches the workers; second wave sits in the queue.
        std::thread::sleep(Duration::from_millis(if wave == 0 { 150 } else { 100 }));
    }

    let doomed = tiny_body("doomed", "slow", "\"deadline\":0.05,\"epsilon\":-1.0,");
    let mut shed_latencies: Vec<f64> = Vec::new();
    for _ in 0..6 {
        let t = Instant::now();
        let (status, head, body) = one_shot(addr, "POST", "/solve", &doomed);
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(status, 429, "doomed request is shed at admission: {body}");
        assert!(body.contains("\"shed\":true"), "{body}");
        assert!(head.contains("Retry-After:"), "{head}");
        ledger.file(status, &body);
        shed_latencies.push(dt);
        overload_latencies.push(dt);
    }

    // A well-behaved client rides the Retry-After hints through the
    // storm: backs off, retries, and lands a (degraded) answer once the
    // overload clears.
    let mut client = RetryingClient::new(
        addr,
        RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(300),
            jitter_seed: 0x5EA_C4405,
        },
    );
    let t = Instant::now();
    let reply = client
        .post("/solve", &doomed)
        .expect("retries ride out the overload");
    overload_latencies.push(t.elapsed().as_secs_f64());
    assert_eq!(reply.status, 200, "{}", reply.body);
    let client_retries = client.retries;
    assert!(client_retries >= 1, "the storm forced at least one retry");
    ledger.file(reply.status, &reply.body);

    // A slow client stalls mid-request head while the soak runs; it must
    // cost a connection thread, never a worker: the service stays live.
    let mut staller = TcpStream::connect(addr).expect("staller connects");
    staller
        .write_all(b"POST /solve HTTP/1.1\r\nContent-Le")
        .expect("partial head");
    std::thread::sleep(Duration::from_millis(250));
    let (status, _, _) = one_shot(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "server live while a client stalls");
    drop(staller);

    for h in fills {
        let (status, body, dt) = h.join().expect("fill completes");
        // The queued wave dequeues with its deadline already spent: a
        // degraded 200 when the first residual clears the bar, 504 when
        // the solve never got far enough. Both are typed, final answers.
        assert!(status == 200 || status == 504, "{status}: {body}");
        ledger.file(status, &body);
        overload_latencies.push(dt);
    }
    let overload_wall = overload_start.elapsed().as_secs_f64();

    // Recovery: queue drained, pool full, breaker closed, ready again.
    wait_for_metric(addr, "sea_serve_queue_depth", |v| v == 0.0);
    wait_for_metric(addr, "sea_serve_inflight", |v| v == 0.0);
    let metrics = scrape(addr);
    let panics = metric_value(&metrics, "sea_serve_worker_panics_total");
    let crashes = metric_value(&metrics, "sea_serve_worker_crashes_total");
    let restarts = metric_value(&metrics, "sea_serve_worker_restarts_total");
    let q_opens = metric_value(&metrics, "sea_serve_quarantine_opens_total");
    let q_refusals = metric_value(&metrics, "sea_serve_quarantine_refusals_total");
    let q_closes = metric_value(&metrics, "sea_serve_quarantine_closes_total");
    let shed_wait = metric_value(&metrics, "sea_serve_shed_total{reason=\"wait\"}");
    let degraded_total = metric_value(&metrics, "sea_serve_degraded_total");
    assert!(panics >= 1.0, "panic counter visible: {panics}");
    assert!(crashes >= 1.0 && restarts >= 1.0, "{crashes}/{restarts}");
    assert!(q_opens >= 1.0 && q_refusals >= 1.0 && q_closes >= 1.0);
    assert_eq!(
        metric_value(&metrics, "sea_serve_quarantined_families"),
        0.0
    );
    assert!(shed_wait >= ledger.shed_429 as f64, "{shed_wait}");
    assert!(degraded_total >= 1.0, "{degraded_total}");
    assert_eq!(
        metric_value(&metrics, "sea_serve_workers_alive"),
        WORKERS as f64
    );
    assert_eq!(
        metric_value(&metrics, "sea_serve_restart_breaker_open"),
        0.0
    );
    let (ready, _, _) = one_shot(addr, "GET", "/readyz", "");
    assert_eq!(ready, 200, "ready again after the storm");

    assert_eq!(
        ledger.accounted(),
        ledger.issued,
        "every chaos request got exactly one typed response"
    );

    server.shutdown();
    server.join();

    overload_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    shed_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    eprintln!(
        "chaos soak: {} requests all accounted ({} shed, {} degraded, {} poison, \
         {} panic-500, {} quarantined, {} retries); pool {}/{} alive, ready, drained",
        ledger.issued,
        ledger.shed_429,
        ledger.degraded,
        ledger.breakdown,
        ledger.panic_500,
        ledger.quarantined_422,
        client_retries,
        WORKERS,
        WORKERS,
    );

    let count = |n: usize| JsonValue::Number(n as f64);
    JsonValue::Object(vec![
        (
            "plan".to_string(),
            JsonValue::String(CHAOS_SPEC.to_string()),
        ),
        ("workers".to_string(), count(WORKERS)),
        ("requests".to_string(), count(ledger.issued)),
        (
            "outcomes".to_string(),
            JsonValue::Object(vec![
                ("converged".to_string(), count(ledger.converged)),
                ("degraded".to_string(), count(ledger.degraded)),
                ("breakdown".to_string(), count(ledger.breakdown)),
                ("panic_500".to_string(), count(ledger.panic_500)),
                ("quarantined_422".to_string(), count(ledger.quarantined_422)),
                ("shed_429".to_string(), count(ledger.shed_429)),
                ("deadline_504".to_string(), count(ledger.deadline_504)),
            ]),
        ),
        (
            "pool".to_string(),
            JsonValue::Object(vec![
                ("panics".to_string(), f64_to_json(panics)),
                ("crashes".to_string(), f64_to_json(crashes)),
                ("restarts".to_string(), f64_to_json(restarts)),
            ]),
        ),
        (
            "quarantine".to_string(),
            JsonValue::Object(vec![
                ("opens".to_string(), f64_to_json(q_opens)),
                ("refusals".to_string(), f64_to_json(q_refusals)),
                ("closes".to_string(), f64_to_json(q_closes)),
            ]),
        ),
        (
            "overload".to_string(),
            JsonValue::Object(vec![
                ("requests".to_string(), count(overload_latencies.len())),
                ("wall_seconds".to_string(), f64_to_json(overload_wall)),
                (
                    "p50_seconds".to_string(),
                    f64_to_json(percentile(&overload_latencies, 0.50)),
                ),
                (
                    "p99_seconds".to_string(),
                    f64_to_json(percentile(&overload_latencies, 0.99)),
                ),
                (
                    "shed_answer_p50_seconds".to_string(),
                    f64_to_json(percentile(&shed_latencies, 0.50)),
                ),
                (
                    "shed_answer_p99_seconds".to_string(),
                    f64_to_json(percentile(&shed_latencies, 0.99)),
                ),
            ]),
        ),
        (
            "client_retries".to_string(),
            JsonValue::Number(client_retries as f64),
        ),
        ("stalled_clients".to_string(), count(1)),
        (
            "recovered".to_string(),
            JsonValue::Object(vec![
                ("workers_alive".to_string(), count(WORKERS)),
                ("readyz".to_string(), JsonValue::Number(200.0)),
                ("drained".to_string(), JsonValue::Bool(true)),
            ]),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out: Option<String> = None;
    let mut requests = 400usize;
    let mut clients = 4usize;
    let mut chaos = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                if let Some(v) = it.next() {
                    out = Some(v.clone());
                }
            }
            "--requests" => {
                if let Some(v) = it.next() {
                    requests = v.parse().unwrap_or(requests).max(FAMILIES);
                }
            }
            "--clients" => {
                if let Some(v) = it.next() {
                    clients = v.parse().unwrap_or(clients).max(1);
                }
            }
            "--smoke" => {
                requests = 3 * FAMILIES;
                clients = 2;
            }
            "--chaos" => chaos = true,
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        if chaos {
            "BENCH_9.json"
        } else {
            "BENCH_8.json"
        }
        .to_string()
    });

    let workers = 4;
    let server = Server::bind(ServeConfig {
        workers,
        queue_capacity: 256,
        epsilon: EPSILON,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let bodies = Arc::new(
        (0..FAMILIES as u64)
            .map(family_body)
            .collect::<Vec<String>>(),
    );

    // Cold: one solve per family on an empty cache (serial, so every
    // request is a genuine miss rather than racing the first fill).
    let cold = drive(addr, &bodies, 1, FAMILIES, false);
    assert_eq!(cold.hits, 0, "cold phase must not hit the cache");

    // Warm: sustained concurrent load over the now-filled cache.
    let warm = drive(addr, &bodies, clients, requests, true);
    assert!(
        warm.hits * 10 >= warm.latencies.len() * 9,
        "warm phase should hit the cache on ≥90% of requests ({}/{})",
        warm.hits,
        warm.latencies.len()
    );

    server.shutdown();
    server.join();

    let chaos_json = chaos.then(chaos_soak);

    let (cold_key, cold_json) = phase_json("cold", &cold);
    let (warm_key, warm_json) = phase_json("warm", &warm);
    let mut doc_fields = vec![
        (
            "schema".to_string(),
            JsonValue::String("sea-bench-summary/v1".to_string()),
        ),
        (
            "pr".to_string(),
            JsonValue::Number(if chaos { 9.0 } else { 8.0 }),
        ),
        (
            "serve_load".to_string(),
            JsonValue::Object(vec![
                ("rows".to_string(), JsonValue::Number(N as f64)),
                ("cols".to_string(), JsonValue::Number(N as f64)),
                ("families".to_string(), JsonValue::Number(FAMILIES as f64)),
                ("epsilon".to_string(), f64_to_json(EPSILON)),
                ("workers".to_string(), JsonValue::Number(workers as f64)),
                ("clients".to_string(), JsonValue::Number(clients as f64)),
                (cold_key, cold_json),
                (warm_key, warm_json),
            ]),
        ),
    ];
    if let Some(section) = chaos_json {
        doc_fields.push(("chaos_soak".to_string(), section));
    }
    let doc = JsonValue::Object(doc_fields);
    let mut text = doc.render();
    text.push('\n');
    std::fs::write(&out, text).expect("write snapshot");
    eprintln!("wrote {out}");
}
