//! Empirical validation of the paper's §3.1 theory (extension study).
//!
//! Three claims are checked on real solver runs:
//!
//! 1. **Monotone dual ascent** (eq. 71): the block-coordinate dual values
//!    never decrease.
//! 2. **Geometric rate** (eq. 76): `δᵗ⁺¹ ≤ δᵗ(1 − A/4M̄)` — the distance to
//!    the optimal dual value contracts by a roughly constant factor, so the
//!    log-gap falls linearly.
//! 3. **Additive iteration growth** (after eq. 77): tightening ε̄ tenfold
//!    adds a roughly constant number of iterations, rather than
//!    multiplying them.
//!
//! Plus the a-priori certificates: measured iterations never exceed the
//! worst-case bound of eq. 64.

use sea_bench::{results_dir, Scale};
use sea_core::{solve_diagonal, theory, ConvergenceCriterion, SeaOptions};
use sea_report::{ExperimentRecord, Table};
use sea_spatial::random_spe;

fn main() {
    let (scale, seed) = Scale::from_args();
    let size = match scale {
        Scale::Small => 30,
        Scale::Medium => 80,
        Scale::Paper => 150,
    };
    // An elastic (spatial-price) instance: the slow-converging class where
    // the dual dynamics are visible.
    let spe = random_spe(size, size, seed);
    let cmp = spe.to_constrained_matrix().expect("valid instance");

    let mut record = ExperimentRecord::new(
        "theory_check",
        "Theory validation: dual ascent, geometric rate, additive iterations (Section 3.1)",
    );

    // ---- 1 & 2: dual ascent + geometric rate from one instrumented run. --
    let mut opts = SeaOptions::with_epsilon(1e-9);
    opts.criterion = Some(ConvergenceCriterion::ConstraintNorm);
    opts.record_history = true;
    let sol = solve_diagonal(&cmp, &opts).expect("solvable");
    assert!(sol.stats.converged);
    let history = sol.stats.history.as_ref().expect("history requested");
    let zeta_star = history.last().expect("nonempty").dual_value;

    let mut ascent_ok = true;
    for w in history.windows(2) {
        if w[1].dual_value < w[0].dual_value - 1e-9 * w[0].dual_value.abs().max(1.0) {
            ascent_ok = false;
        }
    }
    // Fit the contraction factor over the middle of the run (endpoints are
    // dominated by the active-set changes / floating-point floor).
    let gaps: Vec<(usize, f64)> = history
        .iter()
        .filter(|s| zeta_star - s.dual_value > 1e-12 * zeta_star.abs().max(1.0))
        .map(|s| (s.iteration, zeta_star - s.dual_value))
        .collect();
    let mut t = Table::new(
        "Dual gap decay (sampled)",
        &["iteration", "dual gap", "per-iteration contraction"],
    );
    let stride = (gaps.len() / 8).max(1);
    let mut factors = Vec::new();
    for k in (stride..gaps.len()).step_by(stride) {
        let (i0, g0) = gaps[k - stride];
        let (i1, g1) = gaps[k];
        let rate = (g1 / g0).powf(1.0 / (i1 - i0) as f64);
        factors.push(rate);
        t.push_row(vec![
            i1.to_string(),
            format!("{g1:.3e}"),
            format!("{rate:.4}"),
        ]);
    }
    record.push_table(t);
    record.push_note(format!(
        "monotone dual ascent: {} (eq. 71)",
        if ascent_ok { "HOLDS" } else { "VIOLATED" }
    ));
    let geo = factors.iter().all(|&f| f < 1.0);
    record.push_note(format!(
        "geometric contraction (all sampled factors < 1): {} (eq. 76)",
        if geo { "HOLDS" } else { "VIOLATED" }
    ));
    assert!(ascent_ok, "dual ascent must hold");
    assert!(geo, "geometric contraction must hold");

    // ---- 3: additive iterations in log(1/epsilon). -----------------------
    let mut t = Table::new(
        "Iterations vs tolerance (MaxAbsChange criterion)",
        &["epsilon", "iterations", "increment vs previous"],
    );
    let mut prev: Option<usize> = None;
    let mut increments = Vec::new();
    for k in 2..=7 {
        let eps = 10f64.powi(-k);
        let mut o = SeaOptions::with_epsilon(eps);
        o.criterion = Some(ConvergenceCriterion::MaxAbsChange);
        let s = solve_diagonal(&cmp, &o).expect("solvable");
        assert!(s.stats.converged, "eps={eps} did not converge");
        let inc = prev.map(|p| s.stats.iterations as i64 - p as i64);
        if let Some(i) = inc {
            increments.push(i);
        }
        t.push_row(vec![
            format!("1e-{k}"),
            s.stats.iterations.to_string(),
            inc.map(|i| i.to_string()).unwrap_or_else(|| "-".into()),
        ]);
        prev = Some(s.stats.iterations);
    }
    record.push_table(t);
    let max_inc = increments.iter().cloned().max().unwrap_or(0);
    let min_inc = increments.iter().cloned().min().unwrap_or(0);
    record.push_note(format!(
        "each 10x tightening adds between {min_inc} and {max_inc} iterations — \
         additive, not multiplicative, as the paper's eq. 77 discussion predicts"
    ));

    // ---- eq. 64 worst-case bound. ----------------------------------------
    let eps = 1e-3;
    let mut o = SeaOptions::with_epsilon(eps);
    o.criterion = Some(ConvergenceCriterion::ConstraintNorm);
    let s = solve_diagonal(&cmp, &o).expect("solvable");
    let bound = theory::iteration_bound(&cmp, eps);
    record.push_note(format!(
        "measured iterations {} <= worst-case bound {:.3e} at eps = {eps} \
         (eq. 64; the bound is loose by design): {}",
        s.stats.iterations,
        bound,
        if (s.stats.iterations as f64) <= bound {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    ));
    assert!((s.stats.iterations as f64) <= bound);

    record.push_note(format!(
        "scale = {scale:?} (SP{size} x {size}), seed = {seed}"
    ));
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
