//! Warm-start batch benchmark: the `BENCH_5.json` snapshot.
//!
//! Two workloads drive one [`BatchEngine`] per mode (warm-start cache on
//! vs off) over a fleet of heterogeneous-weight instances:
//!
//! * **repeated-identical** — the same manifest every epoch. With the
//!   cache on, every epoch after the first is seeded with the converged
//!   dual multipliers and should re-certify almost immediately; the
//!   target is a ≥2× drop in median epoch time and kernel work.
//! * **drifting-priors** — each family's prior wanders a few percent per
//!   epoch (totals re-balanced exactly), modeling periodic re-estimation
//!   from updated data. The cached μ is now only approximately right, so
//!   the win is smaller but must still be a win.
//!
//! ```text
//! bench_batch [--out BENCH_5.json] [--repeats 9] [--seed 1990]
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_batch::{BatchEngine, BatchInstance, BatchOptions, BatchProblem};
use sea_core::{DiagonalProblem, NullObserver, TotalSpec};
use sea_linalg::DenseMatrix;
use sea_observe::json::{f64_to_json, JsonValue};

/// Instance order (rows = cols).
const N: usize = 40;
/// Families in the batch.
const FAMILIES: usize = 8;
/// Solve epochs per run (epoch 0 is the cold fill).
const EPOCHS: usize = 6;
/// Stopping tolerance: tight enough that convergence takes real work.
const EPSILON: f64 = 1e-10;
/// Per-epoch multiplicative prior wander in the drifting workload.
const DRIFT: f64 = 0.02;

/// Mutable recipe for one problem family. Heterogeneous weights spanning
/// seven decades (the `hard_problem` recipe): equilibration must reconcile
/// cheap and expensive entries, so convergence takes many sweeps and a
/// good dual seed pays off.
struct Family {
    x0: Vec<f64>,
    gamma: Vec<f64>,
    s0: Vec<f64>,
}

impl Family {
    fn new(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x0 = Vec::with_capacity(N * N);
        let mut gamma = Vec::with_capacity(N * N);
        for k in 0..N * N {
            let phase = k % 7;
            x0.push((1.0 + phase as f64) * rng.random_range(0.9..1.1));
            gamma.push(10f64.powi(phase as i32 - 3));
        }
        let s0 = (0..N)
            .map(|i| (20.0 + 3.0 * (i % 7) as f64) * rng.random_range(0.9..1.1))
            .collect();
        Family { x0, gamma, s0 }
    }

    /// The family's current instance. Column totals are carved from the
    /// row grand total with an exact-balance fix so fixed-totals
    /// validation always passes.
    fn problem(&self) -> DiagonalProblem {
        let grand: f64 = self.s0.iter().sum();
        let mut d0: Vec<f64> = (0..N).map(|j| 30.0 - 4.0 * (j % 7) as f64).collect();
        let dsum: f64 = d0.iter().sum();
        for d in &mut d0 {
            *d *= grand / dsum;
        }
        let resid = grand - d0.iter().sum::<f64>();
        d0[0] += resid;
        DiagonalProblem::new(
            DenseMatrix::from_vec(N, N, self.x0.clone()).expect("nonempty"),
            DenseMatrix::from_vec(N, N, self.gamma.clone()).expect("same shape"),
            TotalSpec::Fixed {
                s0: self.s0.clone(),
                d0,
            },
        )
        .expect("valid by construction")
    }

    /// One epoch of multiplicative prior wander.
    fn drift(&mut self, rng: &mut ChaCha8Rng) {
        for v in self.x0.iter_mut().chain(self.s0.iter_mut()) {
            *v *= 1.0 + DRIFT * rng.random_range(-1.0..1.0);
        }
    }
}

fn manifest(families: &[Family]) -> Vec<BatchInstance> {
    families
        .iter()
        .enumerate()
        .map(|(i, f)| BatchInstance {
            id: format!("inst-{i}"),
            family: Some(format!("fam-{i}")),
            problem: BatchProblem::Diagonal(f.problem()),
        })
        .collect()
}

fn engine(warm_start: bool) -> BatchEngine {
    BatchEngine::new(BatchOptions {
        epsilon: EPSILON,
        warm_start,
        ..BatchOptions::default()
    })
}

/// Per-epoch measurements of one engine over one workload run.
struct Run {
    /// Wall seconds per epoch (epoch 0 = cold fill).
    seconds: Vec<f64>,
    /// Kernel work per epoch.
    work: Vec<u64>,
    /// Work saved per epoch (warm engines only; 0 on cold fills).
    saved: Vec<u64>,
}

/// Solve `EPOCHS` epochs through one engine; `drifting` re-generates the
/// manifest between epochs, otherwise the same instances repeat.
fn run_epochs(warm_start: bool, seed: u64, drifting: bool) -> Run {
    let mut families: Vec<Family> = (0..FAMILIES as u64)
        .map(|i| Family::new(seed ^ (0xBA7C << 8) ^ i))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD21F7);
    let mut eng = engine(warm_start);
    let mut run = Run {
        seconds: Vec::with_capacity(EPOCHS),
        work: Vec::with_capacity(EPOCHS),
        saved: Vec::with_capacity(EPOCHS),
    };
    for epoch in 0..EPOCHS {
        if drifting && epoch > 0 {
            for f in &mut families {
                f.drift(&mut rng);
            }
        }
        let batch = manifest(&families);
        let report = eng.solve_batch(&batch, &mut NullObserver);
        assert!(report.all_converged(), "bench instances must converge");
        run.seconds.push(report.elapsed.as_secs_f64());
        run.work.push(report.kernel_work);
        run.saved.push(report.work_saved);
    }
    run
}

fn median_f(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    v[v.len() / 2]
}

fn median_u(mut v: Vec<u64>) -> u64 {
    assert!(!v.is_empty());
    v.sort_unstable();
    v[v.len() / 2]
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Benchmark one workload: medians over all repeats of the cold engine's
/// epochs vs the warm engine's *hit* epochs (epoch 0, the fill, excluded).
fn bench_workload(name: &str, repeats: usize, seed: u64, drifting: bool) -> JsonValue {
    let mut cold_secs = Vec::new();
    let mut cold_work = Vec::new();
    let mut warm_secs = Vec::new();
    let mut warm_work = Vec::new();
    let mut warm_saved = Vec::new();
    for r in 0..repeats {
        let s = seed.wrapping_add(r as u64);
        let cold = run_epochs(false, s, drifting);
        cold_secs.extend(cold.seconds);
        cold_work.extend(cold.work);
        let warm = run_epochs(true, s, drifting);
        warm_secs.extend(warm.seconds.into_iter().skip(1));
        warm_work.extend(warm.work.into_iter().skip(1));
        warm_saved.extend(warm.saved.into_iter().skip(1));
    }
    let cold_t = median_f(cold_secs);
    let warm_t = median_f(warm_secs);
    let cold_w = median_u(cold_work);
    let warm_w = median_u(warm_work);
    let speedup_t = cold_t / warm_t;
    let speedup_w = cold_w as f64 / (warm_w.max(1)) as f64;
    eprintln!(
        "{name}: cold {cold_t:.3e}s / {cold_w} work, warm {warm_t:.3e}s / {warm_w} work \
         → {speedup_t:.1}× time, {speedup_w:.1}× kernel work"
    );
    obj(vec![
        (
            "cold",
            obj(vec![
                ("median_epoch_seconds", f64_to_json(cold_t)),
                ("median_epoch_kernel_work", JsonValue::Number(cold_w as f64)),
            ]),
        ),
        (
            "warm",
            obj(vec![
                ("median_epoch_seconds", f64_to_json(warm_t)),
                ("median_epoch_kernel_work", JsonValue::Number(warm_w as f64)),
                (
                    "median_epoch_work_saved",
                    JsonValue::Number(median_u(warm_saved) as f64),
                ),
            ]),
        ),
        ("speedup_time", f64_to_json(speedup_t)),
        ("speedup_kernel_work", f64_to_json(speedup_w)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out = "BENCH_5.json".to_string();
    let mut repeats = 9usize;
    let mut seed = 1990u64;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                if let Some(v) = it.next() {
                    out = v.clone();
                }
            }
            "--repeats" => {
                if let Some(v) = it.next() {
                    repeats = v.parse().unwrap_or(repeats).max(1);
                }
            }
            "--seed" => {
                if let Some(v) = it.next() {
                    seed = v.parse().unwrap_or(seed);
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let repeated = bench_workload("repeated-identical", repeats, seed, false);
    let drifting = bench_workload("drifting-priors", repeats, seed, true);
    let doc = obj(vec![
        (
            "schema",
            JsonValue::String("sea-bench-summary/v1".to_string()),
        ),
        ("pr", JsonValue::Number(5.0)),
        ("repeats", JsonValue::Number(repeats as f64)),
        ("seed", JsonValue::Number(seed as f64)),
        (
            "batch_warm_start",
            obj(vec![
                ("instances", JsonValue::Number(FAMILIES as f64)),
                ("rows", JsonValue::Number(N as f64)),
                ("cols", JsonValue::Number(N as f64)),
                ("epochs", JsonValue::Number(EPOCHS as f64)),
                ("epsilon", f64_to_json(EPSILON)),
                ("drift", f64_to_json(DRIFT)),
                ("repeated_identical", repeated),
                ("drifting_priors", drifting),
            ]),
        ),
    ]);
    let mut text = doc.render();
    text.push('\n');
    std::fs::write(&out, text).expect("write bench summary");
    println!("wrote {out}");
}
