//! Table 1 — Computational experience with SEA on large-scale diagonal
//! quadratic constrained matrix problems (§4.1.1).
//!
//! Fixed-totals instances, 100 % dense, `x⁰ ~ U[0.1, 10000]`, chi-square
//! weights, doubled margins, ε = .01 (relative row balance). The paper ran
//! 750² … 3000² on one IBM 3090-600E processor.

use sea_bench::{results_dir, Scale};
use sea_core::{solve_diagonal, SeaOptions};
use sea_data::table1_instance;
use sea_report::{fmt_seconds, ExperimentRecord, Table};

fn main() {
    let (scale, seed) = Scale::from_args();
    let sizes: &[usize] = match scale {
        Scale::Small => &[50, 100, 200],
        Scale::Medium => &[200, 400, 750, 1000],
        Scale::Paper => &[750, 1000, 2000, 3000],
    };

    let mut record = ExperimentRecord::new(
        "table1",
        "Table 1: SEA on large-scale diagonal quadratic constrained matrix problems",
    );
    let mut table = Table::new(
        "CPU time (single example per size)",
        &["m x n", "# nonzero variables", "iterations", "CPU time (s)"],
    );

    for &size in sizes {
        let problem = table1_instance(size, seed);
        let opts = SeaOptions::with_epsilon(0.01);
        let sol = solve_diagonal(&problem, &opts).expect("solvable by construction");
        assert!(sol.stats.converged, "size {size} did not converge");
        table.push_row(vec![
            format!("{size} x {size}"),
            problem.variable_count().to_string(),
            sol.stats.iterations.to_string(),
            fmt_seconds(sol.stats.elapsed.as_secs_f64()),
        ]);
        eprintln!(
            "table1: {size}x{size} done in {} ({} iterations, residual {:.3e})",
            fmt_seconds(sol.stats.elapsed.as_secs_f64()),
            sol.stats.iterations,
            sol.stats.residual
        );
    }

    record.push_table(table);
    record.push_note(format!(
        "scale = {scale:?}, seed = {seed}, epsilon = .01 (paper setting)"
    ));
    record.push_note(
        "Paper (IBM 3090-600E, VS FORTRAN): 750^2 = 204.7s, 1000^2 = 483.2s, \
         2000^2 = 3823.2s, 3000^2 = 13561.6s; compare growth shape, not absolutes.",
    );
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
