//! Span-profiling overhead benchmark: the `BENCH_7.json` snapshot.
//!
//! Two workloads are timed twice each — once under [`NullObserver`]
//! (the audited zero-overhead path) and once with a [`SpanProfiler`]
//! attached — with the repeats interleaved so machine drift hits both
//! modes equally:
//!
//! * **sparse** — a supervised 10 000 × 10 000 banded CSR solve; span
//!   signalling adds epoch/pass/check spans, per-shard leaves, and the
//!   convergence telemetry stream.
//! * **batch** — a 3-instance warm-start batch through one engine; span
//!   signalling adds the batch frame and per-instance leaves (and forces
//!   counter harvesting on).
//!
//! The snapshot records median wall times, the relative overhead (the
//! tentpole budget is <2%), the per-phase breakdown computed from the
//! recorded spans, and the reconciliation error between the solve root
//! span and the end-to-end wall clock (must be ≤5%). Both exports are
//! exercised in-process: the chrome-trace document must parse back into
//! the same number of spans and the folded-stack text must be non-empty.
//!
//! ```text
//! bench_overhead [--out BENCH_7.json] [--seed 1990] [--repeats 3]
//!                [--smoke] [--max-overhead PCT]
//! ```
//!
//! `--smoke` runs a smaller sparse instance only and exits non-zero when
//! the measured overhead exceeds `--max-overhead` (default 2.0) — the CI
//! overhead-regression gate — after smoke-testing both export formats.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_batch::{BatchEngine, BatchInstance, BatchOptions, BatchProblem};
use sea_core::{
    solve_diagonal_supervised, DiagonalProblem, NullObserver, Parallelism, SeaOptions,
    SpanProfiler, StopReason, SupervisorOptions, TotalSpec, ZeroPolicy,
};
use sea_linalg::CsrMatrix;
use sea_observe::json::{f64_to_json, JsonValue};
use sea_observe::{chrome_trace, folded_stacks, parse_chrome_trace, ParsedSpan, SpanKind};
use sea_report::SpanBreakdown;

/// Sparse-stage order (rows = cols).
const SCALE_N: usize = 10_000;
/// Sparse-stage half-bandwidth: 129 stored cells per interior row keeps
/// one solve in the ~60 s range at the scale tolerance (iteration count
/// for banded priors grows steeply in `n / half_bandwidth`), while the
/// pass/shard structure matches the big BENCH_6 instance.
const SCALE_HB: usize = 64;
/// Smoke-stage order.
const SMOKE_N: usize = 2_000;
/// Smoke-stage half-bandwidth.
const SMOKE_HB: usize = 48;
/// Batch-stage instance order.
const BATCH_N: usize = 160;
/// Batch-stage instance count (the acceptance scenario).
const BATCH_INSTANCES: usize = 3;
/// Stopping tolerance for the batch snapshot stage (tiny instances).
const EPSILON: f64 = 1e-8;
/// Sparse-stage tolerance: 1e-6 at this order/bandwidth runs past the
/// ten-minute mark per solve, so the 10k×10k acceptance stage stops at
/// 1e-5 — still a supervised solve to convergence, ~60 s per run.
const EPSILON_SCALE: f64 = 1e-5;
/// Looser smoke tolerance: the overhead ratio does not depend on how far
/// the solve runs, and CI wants the gate in seconds, not minutes.
const EPSILON_SMOKE: f64 = 1e-5;
/// Reconciliation budget: root span vs end-to-end wall clock.
const MAX_RECONCILE_PCT: f64 = 5.0;
/// Profiler ring sizing: big enough that no epoch is ever sampled out,
/// so the bench measures the worst-case (record-everything) overhead.
const SPAN_CAPACITY: usize = 1 << 17;
/// Telemetry ring sizing, same reasoning.
const TELEMETRY_CAPACITY: usize = 1 << 13;

/// Build a banded CSR prior directly in CSR order.
fn banded_prior(rng: &mut ChaCha8Rng, n: usize, hb: usize) -> CsrMatrix {
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        let lo = i.saturating_sub(hb);
        let hi = (i + hb).min(n - 1);
        for j in lo..=hi {
            col_idx.push(j as u32);
            vals.push(rng.random_range(0.5..10.0));
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts(n, n, row_ptr, col_idx, vals).expect("banded pattern is valid CSR")
}

/// Feasible fixed-totals sparse problem on a banded support (the
/// BENCH_6 recipe: `10^±1` weight spreads, totals from the margins of a
/// ±10%-perturbed copy of the prior).
fn banded_problem(seed: u64, n: usize, hb: usize) -> DiagonalProblem<CsrMatrix> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x0 = banded_prior(&mut rng, n, hb);
    let gvals: Vec<f64> = (0..x0.stored())
        .map(|_| 10f64.powi(rng.random_range(-1..=1)))
        .collect();
    let gamma = x0.with_values(gvals).expect("same pattern");
    let yvals: Vec<f64> = x0
        .vals()
        .iter()
        .map(|&v| v * rng.random_range(0.9..1.1))
        .collect();
    let y = x0.with_values(yvals).expect("same pattern");
    let mut s0 = vec![0.0; n];
    let mut d0 = vec![0.0; n];
    y.row_sums_into(&mut s0);
    y.col_sums_into(&mut d0);
    DiagonalProblem::with_zero_policy(
        x0,
        gamma,
        TotalSpec::Fixed { s0, d0 },
        ZeroPolicy::Structural,
    )
    .expect("banded problem is feasible by construction")
}

/// A 3-instance batch in one family, priors a few percent apart so the
/// warm-start cache sees hits after the cold fill.
fn batch_manifest(seed: u64) -> Vec<BatchInstance> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBA7C7);
    (0..BATCH_INSTANCES)
        .map(|i| {
            let n = BATCH_N;
            let mut x0 = Vec::with_capacity(n * n);
            let mut gamma = Vec::with_capacity(n * n);
            for k in 0..n * n {
                let phase = k % 5;
                x0.push((1.0 + phase as f64) * rng.random_range(0.9..1.1));
                gamma.push(10f64.powi(phase as i32 - 2));
            }
            let x0 = sea_linalg::DenseMatrix::from_vec(n, n, x0).expect("nonempty");
            let gamma = sea_linalg::DenseMatrix::from_vec(n, n, gamma).expect("same shape");
            let s0: Vec<f64> = x0.row_sums().iter().map(|v| 1.1 * v).collect();
            let grand: f64 = s0.iter().sum();
            let mut d0: Vec<f64> = x0.col_sums();
            let dsum: f64 = d0.iter().sum();
            for d in &mut d0 {
                *d *= grand / dsum;
            }
            let resid = grand - d0.iter().sum::<f64>();
            d0[0] += resid;
            let problem = DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 })
                .expect("valid by construction");
            BatchInstance {
                id: format!("inst-{i}"),
                family: Some("bench".to_string()),
                problem: BatchProblem::Diagonal(problem),
            }
        })
        .collect()
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    v[v.len() / 2]
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Round-trip the profiler's ring through both export formats, failing
/// loudly when either drops information, and hand back the parsed spans.
fn validate_exports(profiler: &SpanProfiler) -> Vec<ParsedSpan> {
    let spans = profiler.spans();
    assert!(!spans.is_empty(), "profiler recorded no spans");
    let doc = chrome_trace(&spans, profiler.dropped());
    let parsed = parse_chrome_trace(&doc).expect("chrome-trace export must parse back");
    assert_eq!(
        parsed.len(),
        spans.len(),
        "chrome-trace round trip lost spans"
    );
    let flame = folded_stacks(&spans);
    assert!(
        flame
            .lines()
            .any(|l| l.starts_with("solve") || l.starts_with("batch")),
        "folded stacks carry no rooted lines:\n{flame}"
    );
    parsed
}

/// Serialize the per-kind aggregates of a breakdown.
fn phases_json(b: &SpanBreakdown) -> JsonValue {
    JsonValue::Object(
        b.kinds
            .iter()
            .map(|(kind, s)| {
                (
                    kind.name().to_string(),
                    obj(vec![
                        ("count", JsonValue::Number(s.count as f64)),
                        (
                            "inclusive_seconds",
                            f64_to_json(s.inclusive_ns as f64 * 1e-9),
                        ),
                        ("self_seconds", f64_to_json(s.self_ns as f64 * 1e-9)),
                    ]),
                )
            })
            .collect(),
    )
}

struct StageResult {
    null_median: f64,
    span_median: f64,
    overhead_pct: f64,
    reconcile_pct: f64,
    breakdown: SpanBreakdown,
    spans: usize,
}

impl StageResult {
    fn json(&self, extra: Vec<(&str, JsonValue)>) -> JsonValue {
        let mut fields = vec![
            ("null_median_seconds", f64_to_json(self.null_median)),
            ("span_median_seconds", f64_to_json(self.span_median)),
            ("overhead_pct", f64_to_json(self.overhead_pct)),
            ("reconcile_pct", f64_to_json(self.reconcile_pct)),
            ("spans", JsonValue::Number(self.spans as f64)),
            (
                "serial_fraction",
                f64_to_json(self.breakdown.serial_fraction()),
            ),
            (
                "critical_path_seconds",
                f64_to_json(self.breakdown.critical_path_ns as f64 * 1e-9),
            ),
            ("phases", phases_json(&self.breakdown)),
        ];
        fields.extend(extra);
        obj(fields)
    }
}

/// Interleave `repeats` timed runs of `null_run` and `span_run`; the
/// span runs record into `profiler` (reset between runs, last run kept).
fn measure<FN, FS>(
    repeats: usize,
    profiler: &mut SpanProfiler,
    mut null_run: FN,
    mut span_run: FS,
) -> (f64, f64)
where
    FN: FnMut() -> f64,
    FS: FnMut(&mut SpanProfiler) -> f64,
{
    let mut null_secs = Vec::with_capacity(repeats);
    let mut span_secs = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        null_secs.push(null_run());
        profiler.reset();
        span_secs.push(span_run(profiler));
    }
    (median(null_secs), median(span_secs))
}

/// Reconciliation: the root spans' wall coverage vs the measured
/// end-to-end seconds of the same (last) spanned run.
fn reconcile_pct(breakdown: &SpanBreakdown, end_to_end_seconds: f64) -> f64 {
    let covered = breakdown.wall_ns as f64 * 1e-9;
    100.0 * (end_to_end_seconds - covered).abs() / end_to_end_seconds
}

/// The supervised sparse stage at order `n`, half-bandwidth `hb`.
fn bench_sparse_stage(seed: u64, repeats: usize, n: usize, hb: usize, epsilon: f64) -> StageResult {
    let p = banded_problem(seed, n, hb);
    let mut opts = SeaOptions::with_epsilon(epsilon);
    opts.parallelism = Parallelism::Rayon;
    // Narrow bands couple weakly and take many cheap sweeps; give the
    // driver room (the budget below is the real guard, not this cap).
    opts.max_iterations = 50_000;
    let sup = SupervisorOptions::default();
    let run_null = || {
        let t = std::time::Instant::now();
        let sol = solve_diagonal_supervised(&p, &opts, &sup, &mut NullObserver)
            .expect("sparse solve failed");
        assert_eq!(
            sol.stop,
            StopReason::Converged,
            "sparse stage must converge"
        );
        t.elapsed().as_secs_f64()
    };
    let run_span = |prof: &mut SpanProfiler| {
        let t = std::time::Instant::now();
        let sol =
            solve_diagonal_supervised(&p, &opts, &sup, prof).expect("spanned sparse solve failed");
        assert_eq!(
            sol.stop,
            StopReason::Converged,
            "spanned stage must converge"
        );
        t.elapsed().as_secs_f64()
    };

    let mut profiler = SpanProfiler::with_capacity(SPAN_CAPACITY, TELEMETRY_CAPACITY);
    let mut last_span_seconds = 0.0;
    let (null_median, span_median) = measure(repeats, &mut profiler, run_null, |prof| {
        last_span_seconds = run_span(prof);
        last_span_seconds
    });
    assert_eq!(profiler.dropped(), 0, "ring sized to record every span");

    let parsed = validate_exports(&profiler);
    let breakdown = SpanBreakdown::from_spans(&parsed);
    let spans = parsed.len();
    StageResult {
        null_median,
        span_median,
        overhead_pct: 100.0 * (span_median - null_median) / null_median,
        reconcile_pct: reconcile_pct(&breakdown, last_span_seconds),
        breakdown,
        spans,
    }
}

/// The 3-instance batch stage: one engine per mode so warm-start cache
/// behavior is identical, timed over `repeats` further epochs each.
fn bench_batch_stage(seed: u64, repeats: usize) -> StageResult {
    let instances = batch_manifest(seed);
    let mk_engine = || {
        BatchEngine::new(BatchOptions {
            epsilon: EPSILON,
            ..BatchOptions::default()
        })
    };
    let mut null_engine = mk_engine();
    let mut span_engine = mk_engine();
    // Cold fill both engines once so the timed epochs hit the cache.
    assert!(null_engine
        .solve_batch(&instances, &mut NullObserver)
        .all_converged());
    let mut warmup = SpanProfiler::with_capacity(SPAN_CAPACITY, TELEMETRY_CAPACITY);
    assert!(span_engine
        .solve_batch(&instances, &mut warmup)
        .all_converged());

    let mut profiler = SpanProfiler::with_capacity(SPAN_CAPACITY, TELEMETRY_CAPACITY);
    let mut last_span_seconds = 0.0;
    let (null_median, span_median) = measure(
        repeats,
        &mut profiler,
        || {
            let report = null_engine.solve_batch(&instances, &mut NullObserver);
            assert!(report.all_converged(), "batch stage must converge");
            report.elapsed.as_secs_f64()
        },
        |prof| {
            let t = std::time::Instant::now();
            let report = span_engine.solve_batch(&instances, prof);
            assert!(report.all_converged(), "spanned batch stage must converge");
            last_span_seconds = t.elapsed().as_secs_f64();
            last_span_seconds
        },
    );

    let parsed = validate_exports(&profiler);
    let instances_seen = parsed
        .iter()
        .filter(|s| s.kind == SpanKind::Instance)
        .count();
    assert_eq!(
        instances_seen, BATCH_INSTANCES,
        "batch trace must carry one leaf per instance"
    );
    let breakdown = SpanBreakdown::from_spans(&parsed);
    let spans = parsed.len();
    StageResult {
        null_median,
        span_median,
        overhead_pct: 100.0 * (span_median - null_median) / null_median,
        reconcile_pct: reconcile_pct(&breakdown, last_span_seconds),
        breakdown,
        spans,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out: Option<String> = None;
    let mut seed = 1990u64;
    let mut repeats = 3usize;
    let mut smoke = false;
    let mut max_overhead = 2.0f64;
    let mut n_override: Option<usize> = None;
    let mut hb_override: Option<usize> = None;
    let mut eps_override: Option<f64> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                if let Some(v) = it.next() {
                    out = Some(v.clone());
                }
            }
            "--seed" => {
                if let Some(v) = it.next() {
                    seed = v.parse().unwrap_or(seed);
                }
            }
            "--repeats" => {
                if let Some(v) = it.next() {
                    repeats = v.parse().unwrap_or(repeats).max(1);
                }
            }
            "--max-overhead" => {
                if let Some(v) = it.next() {
                    max_overhead = v.parse().unwrap_or(max_overhead);
                }
            }
            "--n" => {
                if let Some(v) = it.next() {
                    n_override = v.parse().ok();
                }
            }
            "--hb" => {
                if let Some(v) = it.next() {
                    hb_override = v.parse().ok();
                }
            }
            "--epsilon" => {
                if let Some(v) = it.next() {
                    eps_override = v.parse().ok();
                }
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    if smoke {
        // CI gate: a smaller instance at a looser tolerance (the overhead
        // ratio is tolerance-independent), more repeats for a stable
        // median, hard overhead threshold, and both exports exercised.
        let r = bench_sparse_stage(
            seed,
            repeats.max(3),
            n_override.unwrap_or(SMOKE_N),
            hb_override.unwrap_or(SMOKE_HB),
            eps_override.unwrap_or(EPSILON_SMOKE),
        );
        println!(
            "smoke: null {:.3}s vs spans {:.3}s → {:+.2}% overhead \
             ({} spans, reconcile {:.2}%)",
            r.null_median, r.span_median, r.overhead_pct, r.spans, r.reconcile_pct
        );
        assert!(
            r.reconcile_pct <= MAX_RECONCILE_PCT,
            "span coverage reconciles to {:.2}% (> {MAX_RECONCILE_PCT}%)",
            r.reconcile_pct
        );
        if r.overhead_pct > max_overhead {
            eprintln!(
                "OVERHEAD REGRESSION: {:.2}% > {max_overhead}% budget",
                r.overhead_pct
            );
            std::process::exit(1);
        }
        return;
    }

    let scale_n = n_override.unwrap_or(SCALE_N);
    let scale_hb = hb_override.unwrap_or(SCALE_HB);
    let scale_eps = eps_override.unwrap_or(EPSILON_SCALE);
    eprintln!("sparse stage: {scale_n}×{scale_n}, half-bandwidth {scale_hb}, {repeats} repeats…");
    let sparse = bench_sparse_stage(seed, repeats, scale_n, scale_hb, scale_eps);
    eprintln!(
        "sparse: null {:.3}s vs spans {:.3}s → {:+.2}% overhead, reconcile {:.2}%",
        sparse.null_median, sparse.span_median, sparse.overhead_pct, sparse.reconcile_pct
    );
    assert!(
        sparse.reconcile_pct <= MAX_RECONCILE_PCT,
        "sparse reconcile {:.2}% exceeds {MAX_RECONCILE_PCT}%",
        sparse.reconcile_pct
    );

    eprintln!("batch stage: {BATCH_INSTANCES}×{BATCH_N}×{BATCH_N} instances, {repeats} repeats…");
    let batch = bench_batch_stage(seed, repeats);
    eprintln!(
        "batch: null {:.3}s vs spans {:.3}s → {:+.2}% overhead, reconcile {:.2}%",
        batch.null_median, batch.span_median, batch.overhead_pct, batch.reconcile_pct
    );
    assert!(
        batch.reconcile_pct <= MAX_RECONCILE_PCT,
        "batch reconcile {:.2}% exceeds {MAX_RECONCILE_PCT}%",
        batch.reconcile_pct
    );

    let doc = obj(vec![
        (
            "schema",
            JsonValue::String("sea-bench-summary/v1".to_string()),
        ),
        ("pr", JsonValue::Number(7.0)),
        ("seed", JsonValue::Number(seed as f64)),
        ("overhead_budget_pct", f64_to_json(max_overhead)),
        (
            "sparse",
            sparse.json(vec![
                ("rows", JsonValue::Number(scale_n as f64)),
                ("cols", JsonValue::Number(scale_n as f64)),
                ("half_bandwidth", JsonValue::Number(scale_hb as f64)),
                ("epsilon", f64_to_json(scale_eps)),
            ]),
        ),
        (
            "batch",
            batch.json(vec![
                ("instances", JsonValue::Number(BATCH_INSTANCES as f64)),
                ("order", JsonValue::Number(BATCH_N as f64)),
                ("epsilon", f64_to_json(EPSILON)),
            ]),
        ),
    ]);
    let rendered = doc.render();
    match out {
        Some(path) => {
            std::fs::write(&path, format!("{rendered}\n")).expect("write snapshot");
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    assert!(
        sparse.overhead_pct <= max_overhead && batch.overhead_pct <= max_overhead,
        "measured overhead (sparse {:.2}%, batch {:.2}%) exceeds the {max_overhead}% budget",
        sparse.overhead_pct,
        batch.overhead_pct
    );
}
