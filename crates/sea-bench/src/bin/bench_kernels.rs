//! SIMD / mixed-precision kernel benchmark: the `BENCH_10.json` snapshot.
//!
//! Three stages measure what the vectorized equilibration kernels actually
//! buy, against the untouched scalar oracle:
//!
//! * **kernel_primitives** — the n = 2000 breakpoint/clamp primitive bench:
//!   per-primitive medians for the f64 scalar oracle loop, the explicit
//!   f64 SIMD path, and (for the λ-search fills) the 8-lane f32
//!   mixed-precision path. The headline gate is the **median mixed-precision
//!   speedup over the scalar oracle across the breakpoint/coefficient
//!   fills, which must be ≥ 2×**. The f64 SIMD rows are reported honestly:
//!   they hover near 1× because the scalar fallback already
//!   autovectorizes and `vdivpd`'s per-element throughput does not improve
//!   with register width — the mixed-precision lanes (half the bandwidth,
//!   `vdivps` at ~3× the per-element rate) are where the win is.
//! * **full_kernel** — one whole n = 2000 exact equilibration per variant
//!   (sort-scan and quickselect; scalar vs SIMD vs f32 λ-search), with
//!   bitwise identity checks between the scalar and SIMD results.
//! * **e2e_banded_csr** — the 10 000 × 10 000 banded CSR instance
//!   (≈1.01·10⁷ nonzeros, the `bench_sparse` scale recipe) solved for a
//!   fixed iteration budget under `--simd off`/`--simd auto` and
//!   `f64`/`f32-mixed`, interleaved repeats, medians recorded. Wall-clock
//!   on shared runners is noisy (±20% observed), so this stage records
//!   speedups without a hard gate; the committed snapshot shows the win.
//!
//! ```text
//! bench_kernels [--out BENCH_10.json] [--seed 1990] [--repeats 21] [--smoke]
//! ```
//!
//! `--smoke` is the CI exit-code gate: tiny sizes, no speedup assertions
//! (CI runners share cores), but every bitwise identity check still runs —
//! scalar-vs-SIMD primitive fills, full-kernel results, and an
//! off-vs-auto end-to-end solve must agree bit for bit, and the
//! mixed-precision solve must run. Exits non-zero on any mismatch.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{
    exact_equilibration_f32, exact_equilibration_simd, exact_equilibration_with, solve_diagonal,
    DiagonalProblem, EquilibrationScratch, KernelKind, Parallelism, Precision, SeaOptions,
    SimdLevel, SimdMode, Storage, TotalMode, TotalSpec, ZeroPolicy,
};
use sea_linalg::simd as prims;
use sea_linalg::CsrMatrix;
use sea_observe::json::{f64_to_json, JsonValue};
use std::time::Instant;

/// Primitive/full-kernel subproblem length (the acceptance size).
const KERNEL_N: usize = 2_000;
/// End-to-end stage order (matches the `bench_sparse` scale stage).
const E2E_N: usize = 10_000;
/// End-to-end half-bandwidth: ≈1.01·10⁷ stored nonzeros.
const E2E_HB: usize = 520;
/// Fixed iteration budget for the end-to-end stage: every configuration
/// does identical per-iteration work, so wall-clock ratios are kernel
/// ratios, not convergence-path artifacts.
const E2E_ITERATIONS: usize = 4;
/// Interleaved end-to-end repeats per configuration.
const E2E_REPEATS: usize = 5;
/// The primitive-stage gate: median mixed-precision fill speedup over the
/// scalar f64 oracle.
const MIXED_GATE: f64 = 2.0;

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timing samples"));
    v[v.len() / 2]
}

/// Median nanoseconds of one call to `f`, over `trials` samples of `reps`
/// calls each.
fn time_ns<F: FnMut()>(mut f: F, reps: usize, trials: usize) -> f64 {
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    median(samples)
}

/// Deterministic well-conditioned kernel inputs (no RNG: the primitive
/// stage must be byte-reproducible across runs).
#[allow(clippy::type_complexity)]
fn kernel_inputs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let q: Vec<f64> = (0..n)
        .map(|j| ((j * 37 % 101) as f64) / 7.0 - 4.0)
        .collect();
    let g: Vec<f64> = (0..n)
        .map(|j| 0.03 + ((j * 13 % 89) as f64) / 11.0)
        .collect();
    let sh: Vec<f64> = (0..n).map(|j| ((j * 7 % 61) as f64) / 9.0 - 2.5).collect();
    let lo: Vec<f64> = (0..n).map(|j| ((j * 3 % 17) as f64) / 10.0 - 0.4).collect();
    let hi: Vec<f64> = lo.iter().map(|&l| l + 2.5).collect();
    (q, g, sh, lo, hi)
}

fn bits_eq_f64(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn bits_eq_f32(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// One primitive row: scalar-oracle, f64 SIMD, and optional f32 medians.
struct PrimRow {
    name: &'static str,
    f64_scalar_ns: f64,
    f64_simd_ns: f64,
    f32_simd_ns: Option<f64>,
}

/// Time (and bitwise-check) every vectorized fill primitive at length `n`.
fn bench_primitives(n: usize, reps: usize, trials: usize, level: SimdLevel) -> Vec<PrimRow> {
    let (q, g, sh, lo, hi) = kernel_inputs(n);
    let nar = |v: &[f64]| v.iter().map(|&x| x as f32).collect::<Vec<f32>>();
    let (q32, g32, sh32, lo32, hi32) = (nar(&q), nar(&g), nar(&sh), nar(&lo), nar(&hi));
    let mut rows = Vec::new();

    // Scratch outputs, reused across timings.
    let mut o1 = vec![0.0f64; n];
    let mut o2 = vec![0.0f64; n];
    let mut o3 = vec![0.0f64; n];
    let mut s1 = vec![0.0f32; n];
    let mut s2 = vec![0.0f32; n];

    // breakpoints_plain: the plain λ-search breakpoint fill.
    let mut rf = vec![0.0f64; n];
    prims::breakpoints_plain(SimdLevel::Scalar, &q, &g, &sh, &mut rf);
    prims::breakpoints_plain(level, &q, &g, &sh, &mut o1);
    assert!(bits_eq_f64(&rf, &o1), "breakpoints_plain diverged");
    let mut rf32 = vec![0.0f32; n];
    prims::breakpoints_plain_f32(SimdLevel::Scalar, &q32, &g32, &sh32, &mut rf32);
    prims::breakpoints_plain_f32(level, &q32, &g32, &sh32, &mut s1);
    assert!(bits_eq_f32(&rf32, &s1), "breakpoints_plain_f32 diverged");
    rows.push(PrimRow {
        name: "breakpoints_plain",
        f64_scalar_ns: time_ns(
            || prims::breakpoints_plain(SimdLevel::Scalar, &q, &g, &sh, &mut o1),
            reps,
            trials,
        ),
        f64_simd_ns: time_ns(
            || prims::breakpoints_plain(level, &q, &g, &sh, &mut o1),
            reps,
            trials,
        ),
        f32_simd_ns: Some(time_ns(
            || prims::breakpoints_plain_f32(level, &q32, &g32, &sh32, &mut s1),
            reps,
            trials,
        )),
    });

    // event_coeffs_plain: per-event slope/intercept deltas (the divisions).
    {
        let (mut v0, mut da0, mut db0) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        prims::event_coeffs_plain(SimdLevel::Scalar, &q, &g, &sh, &mut v0, &mut da0, &mut db0);
        prims::event_coeffs_plain(level, &q, &g, &sh, &mut o1, &mut o2, &mut o3);
        assert!(
            bits_eq_f64(&v0, &o1) && bits_eq_f64(&da0, &o2) && bits_eq_f64(&db0, &o3),
            "event_coeffs_plain diverged"
        );
        let (mut da0s, mut db0s) = (vec![0.0f32; n], vec![0.0f32; n]);
        prims::event_coeffs_plain_f32(SimdLevel::Scalar, &q32, &g32, &sh32, &mut da0s, &mut db0s);
        prims::event_coeffs_plain_f32(level, &q32, &g32, &sh32, &mut s1, &mut s2);
        assert!(
            bits_eq_f32(&da0s, &s1) && bits_eq_f32(&db0s, &s2),
            "event_coeffs_plain_f32 diverged"
        );
    }
    rows.push(PrimRow {
        name: "event_coeffs",
        f64_scalar_ns: time_ns(
            || prims::event_coeffs_plain(SimdLevel::Scalar, &q, &g, &sh, &mut o1, &mut o2, &mut o3),
            reps,
            trials,
        ),
        f64_simd_ns: time_ns(
            || prims::event_coeffs_plain(level, &q, &g, &sh, &mut o1, &mut o2, &mut o3),
            reps,
            trials,
        ),
        f32_simd_ns: Some(time_ns(
            || prims::event_coeffs_plain_f32(level, &q32, &g32, &sh32, &mut s1, &mut s2),
            reps,
            trials,
        )),
    });

    // breakpoints_boxed: the two-sided (clamped) event fill.
    {
        let (mut l0, mut h0) = (vec![0.0; n], vec![0.0; n]);
        prims::breakpoints_boxed(SimdLevel::Scalar, &q, &g, &sh, &lo, &hi, &mut l0, &mut h0);
        prims::breakpoints_boxed(level, &q, &g, &sh, &lo, &hi, &mut o1, &mut o2);
        assert!(
            bits_eq_f64(&l0, &o1) && bits_eq_f64(&h0, &o2),
            "breakpoints_boxed diverged"
        );
        let (mut l0s, mut h0s) = (vec![0.0f32; n], vec![0.0f32; n]);
        prims::breakpoints_boxed_f32(
            SimdLevel::Scalar,
            &q32,
            &g32,
            &sh32,
            &lo32,
            &hi32,
            &mut l0s,
            &mut h0s,
        );
        prims::breakpoints_boxed_f32(level, &q32, &g32, &sh32, &lo32, &hi32, &mut s1, &mut s2);
        assert!(
            bits_eq_f32(&l0s, &s1) && bits_eq_f32(&h0s, &s2),
            "breakpoints_boxed_f32 diverged"
        );
    }
    rows.push(PrimRow {
        name: "breakpoints_boxed",
        f64_scalar_ns: time_ns(
            || prims::breakpoints_boxed(SimdLevel::Scalar, &q, &g, &sh, &lo, &hi, &mut o1, &mut o2),
            reps,
            trials,
        ),
        f64_simd_ns: time_ns(
            || prims::breakpoints_boxed(level, &q, &g, &sh, &lo, &hi, &mut o1, &mut o2),
            reps,
            trials,
        ),
        f32_simd_ns: Some(time_ns(
            || {
                prims::breakpoints_boxed_f32(
                    level, &q32, &g32, &sh32, &lo32, &hi32, &mut s1, &mut s2,
                )
            },
            reps,
            trials,
        )),
    });

    // materialize_plain / materialize_boxed: the clamp sweeps. These stay
    // f64-only — mixed precision always materializes in f64 so residuals
    // are measured honestly.
    let lambda = 0.7321;
    {
        let mut x0 = vec![0.0; n];
        let (r0, a0) = prims::materialize_plain(SimdLevel::Scalar, &q, &g, &sh, lambda, &mut x0);
        let (r1, a1) = prims::materialize_plain(level, &q, &g, &sh, lambda, &mut o1);
        assert!(
            r0.to_bits() == r1.to_bits() && a0 == a1 && bits_eq_f64(&x0, &o1),
            "materialize_plain diverged"
        );
    }
    rows.push(PrimRow {
        name: "materialize_plain",
        f64_scalar_ns: time_ns(
            || {
                std::hint::black_box(prims::materialize_plain(
                    SimdLevel::Scalar,
                    &q,
                    &g,
                    &sh,
                    lambda,
                    &mut o1,
                ));
            },
            reps,
            trials,
        ),
        f64_simd_ns: time_ns(
            || {
                std::hint::black_box(prims::materialize_plain(
                    level, &q, &g, &sh, lambda, &mut o1,
                ));
            },
            reps,
            trials,
        ),
        f32_simd_ns: None,
    });
    {
        let mut x0 = vec![0.0; n];
        let c0 =
            prims::materialize_boxed(SimdLevel::Scalar, &q, &g, &sh, &lo, &hi, lambda, &mut x0);
        let c1 = prims::materialize_boxed(level, &q, &g, &sh, &lo, &hi, lambda, &mut o1);
        assert!(
            c0 == c1 && bits_eq_f64(&x0, &o1),
            "materialize_boxed diverged"
        );
    }
    rows.push(PrimRow {
        name: "materialize_boxed",
        f64_scalar_ns: time_ns(
            || {
                std::hint::black_box(prims::materialize_boxed(
                    SimdLevel::Scalar,
                    &q,
                    &g,
                    &sh,
                    &lo,
                    &hi,
                    lambda,
                    &mut o1,
                ));
            },
            reps,
            trials,
        ),
        f64_simd_ns: time_ns(
            || {
                std::hint::black_box(prims::materialize_boxed(
                    level, &q, &g, &sh, &lo, &hi, lambda, &mut o1,
                ));
            },
            reps,
            trials,
        ),
        f32_simd_ns: None,
    });

    rows
}

/// Median speedup of the f32 mixed-precision fills over the f64 scalar
/// oracle, across the rows that have an f32 path.
fn mixed_median_speedup(rows: &[PrimRow]) -> f64 {
    let speedups: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.f32_simd_ns.map(|f32ns| r.f64_scalar_ns / f32ns))
        .collect();
    median(speedups)
}

fn primitives_json(rows: &[PrimRow], n: usize) -> JsonValue {
    let row_objs: Vec<JsonValue> = rows
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("primitive", JsonValue::String(r.name.to_string())),
                ("f64_scalar_ns", f64_to_json(r.f64_scalar_ns)),
                ("f64_simd_ns", f64_to_json(r.f64_simd_ns)),
                (
                    "f64_simd_speedup",
                    f64_to_json(r.f64_scalar_ns / r.f64_simd_ns),
                ),
            ];
            if let Some(f32ns) = r.f32_simd_ns {
                fields.push(("f32_simd_ns", f64_to_json(f32ns)));
                fields.push(("mixed_speedup", f64_to_json(r.f64_scalar_ns / f32ns)));
            }
            obj(fields)
        })
        .collect();
    obj(vec![
        ("n", JsonValue::Number(n as f64)),
        ("rows", JsonValue::Array(row_objs)),
        (
            "mixed_median_speedup",
            f64_to_json(mixed_median_speedup(rows)),
        ),
    ])
}

/// Whole-kernel comparison at length `n`: scalar oracle vs SIMD vs the f32
/// λ-search, for both kernel kinds, with bitwise identity checks on the
/// scalar-vs-SIMD pair.
fn bench_full_kernel(n: usize, reps: usize, trials: usize, level: SimdLevel) -> JsonValue {
    let (q, g, sh, _, _) = kernel_inputs(n);
    let total = q.iter().map(|v| v.abs()).sum::<f64>() * 0.4 + 1.0;
    let mode = TotalMode::Fixed { total };
    let mut scratch = EquilibrationScratch::default();
    let mut x = vec![0.0; n];
    let mut rows = Vec::new();

    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        // Bitwise identity: SIMD vs scalar on the same subproblem.
        let mut x_ref = vec![0.0; n];
        let r_ref = exact_equilibration_with(kernel, &q, &g, &sh, mode, &mut x_ref, &mut scratch)
            .expect("scalar kernel solves");
        let r_simd =
            exact_equilibration_simd(level, kernel, &q, &g, &sh, mode, &mut x, &mut scratch)
                .expect("simd kernel solves");
        assert!(
            r_ref.lambda.to_bits() == r_simd.lambda.to_bits() && bits_eq_f64(&x_ref, &x),
            "{kernel:?}: SIMD kernel diverged from the scalar oracle"
        );
        let f32_ok = exact_equilibration_f32(level, &q, &g, &sh, mode, &mut x, &mut scratch)
            .expect("f32 kernel runs")
            .is_some();
        assert!(
            f32_ok,
            "f32 λ-search must handle the well-conditioned bench input"
        );

        let scalar_ns = time_ns(
            || {
                std::hint::black_box(
                    exact_equilibration_with(kernel, &q, &g, &sh, mode, &mut x, &mut scratch)
                        .expect("scalar kernel solves"),
                );
            },
            reps,
            trials,
        );
        let simd_ns = time_ns(
            || {
                std::hint::black_box(
                    exact_equilibration_simd(
                        level,
                        kernel,
                        &q,
                        &g,
                        &sh,
                        mode,
                        &mut x,
                        &mut scratch,
                    )
                    .expect("simd kernel solves"),
                );
            },
            reps,
            trials,
        );
        let f32_ns = time_ns(
            || {
                std::hint::black_box(
                    exact_equilibration_f32(level, &q, &g, &sh, mode, &mut x, &mut scratch)
                        .expect("f32 kernel runs"),
                );
            },
            reps,
            trials,
        );
        rows.push(obj(vec![
            (
                "kernel",
                JsonValue::String(format!("{kernel:?}").to_lowercase()),
            ),
            ("scalar_ns", f64_to_json(scalar_ns)),
            ("simd_ns", f64_to_json(simd_ns)),
            ("simd_speedup", f64_to_json(scalar_ns / simd_ns)),
            ("f32_sort_scan_ns", f64_to_json(f32_ns)),
        ]));
    }
    obj(vec![
        ("n", JsonValue::Number(n as f64)),
        ("rows", JsonValue::Array(rows)),
    ])
}

/// Build a banded CSR prior directly in CSR order (the `bench_sparse`
/// recipe: triplet assembly would transiently triple the footprint).
fn banded_prior(rng: &mut ChaCha8Rng, n: usize, hb: usize) -> CsrMatrix {
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        let lo = i.saturating_sub(hb);
        let hi = (i + hb).min(n - 1);
        for j in lo..=hi {
            col_idx.push(j as u32);
            vals.push(rng.random_range(0.5..10.0));
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts(n, n, row_ptr, col_idx, vals).expect("banded pattern is valid CSR")
}

/// Feasible fixed-totals sparse problem on a banded support.
fn banded_problem(seed: u64, n: usize, hb: usize) -> DiagonalProblem<CsrMatrix> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x0 = banded_prior(&mut rng, n, hb);
    let gvals: Vec<f64> = (0..x0.stored())
        .map(|_| 10f64.powi(rng.random_range(-1..=1)))
        .collect();
    let gamma = x0.with_values(gvals).expect("same pattern");
    let yvals: Vec<f64> = x0
        .vals()
        .iter()
        .map(|&v| v * rng.random_range(0.9..1.1))
        .collect();
    let y = x0.with_values(yvals).expect("same pattern");
    let mut s0 = vec![0.0; n];
    let mut d0 = vec![0.0; n];
    y.row_sums_into(&mut s0);
    y.col_sums_into(&mut d0);
    DiagonalProblem::with_zero_policy(
        x0,
        gamma,
        TotalSpec::Fixed { s0, d0 },
        ZeroPolicy::Structural,
    )
    .expect("banded problem is feasible by construction")
}

fn e2e_options(simd: SimdMode, precision: Precision, iterations: usize) -> SeaOptions {
    // ε = -1 is unreachable, so every solve runs exactly `iterations`
    // row/column epochs: identical work per configuration.
    let mut o = SeaOptions::with_epsilon(-1.0);
    o.max_iterations = iterations;
    o.parallelism = Parallelism::RayonThreads(4);
    o.kernel = KernelKind::SortScan;
    o.simd = simd;
    o.precision = precision;
    o
}

/// End-to-end stage: fixed-budget solves of the banded CSR instance under
/// the three configurations, interleaved, medians recorded.
fn bench_e2e(seed: u64, n: usize, hb: usize, iterations: usize, repeats: usize) -> JsonValue {
    let p = banded_problem(seed, n, hb);
    let nnz = p.x0().stored();
    let configs: [(&str, SimdMode, Precision); 3] = [
        ("off/f64", SimdMode::Off, Precision::F64),
        ("auto/f64", SimdMode::Auto, Precision::F64),
        ("auto/f32-mixed", SimdMode::Auto, Precision::F32Mixed),
    ];
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for _ in 0..repeats {
        for (ci, (_, simd, prec)) in configs.iter().enumerate() {
            let o = e2e_options(*simd, *prec, iterations);
            let t = Instant::now();
            let sol = solve_diagonal(&p, &o).expect("e2e solve runs");
            times[ci].push(t.elapsed().as_secs_f64());
            assert_eq!(sol.stats.iterations, iterations);
        }
    }
    let medians: Vec<f64> = times.iter().map(|v| median(v.clone())).collect();
    let rows: Vec<JsonValue> = configs
        .iter()
        .enumerate()
        .map(|(ci, (label, _, _))| {
            let mut fields = vec![
                ("config", JsonValue::String((*label).to_string())),
                ("median_s", f64_to_json(medians[ci])),
            ];
            if ci > 0 {
                fields.push(("speedup_vs_off", f64_to_json(medians[0] / medians[ci])));
            }
            obj(fields)
        })
        .collect();
    obj(vec![
        ("rows_n", JsonValue::Number(n as f64)),
        ("half_bandwidth", JsonValue::Number(hb as f64)),
        ("nnz", JsonValue::Number(nnz as f64)),
        ("iterations", JsonValue::Number(iterations as f64)),
        ("repeats", JsonValue::Number(repeats as f64)),
        ("kernel", JsonValue::String("sort_scan".to_string())),
        ("rows", JsonValue::Array(rows)),
    ])
}

/// The CI smoke gate: every bitwise identity check at small sizes, plus an
/// off-vs-auto end-to-end bitwise comparison and a mixed-precision solve.
/// No speedup assertions — shared runners cannot time reliably.
fn run_smoke(seed: u64, level: SimdLevel) {
    let n = 257; // deliberately not a lane multiple
    let _ = bench_primitives(n, 4, 3, level);
    let _ = bench_full_kernel(n, 2, 3, level);

    let p = banded_problem(seed, 400, 30);
    let off = solve_diagonal(&p, &e2e_options(SimdMode::Off, Precision::F64, 3))
        .expect("smoke off solve");
    let auto = solve_diagonal(&p, &e2e_options(SimdMode::Auto, Precision::F64, 3))
        .expect("smoke auto solve");
    assert_eq!(off.stats.iterations, auto.stats.iterations);
    assert!(
        bits_eq_f64(off.x.values(), auto.x.values()),
        "off/auto end-to-end iterates diverged"
    );
    let mixed = solve_diagonal(&p, &e2e_options(SimdMode::Auto, Precision::F32Mixed, 3))
        .expect("smoke mixed solve");
    assert_eq!(mixed.stats.iterations, 3);
    println!("smoke passed (level={level}, n={n}, e2e 400×400)");
}

fn main() {
    let mut out: Option<String> = None;
    let mut seed = 1990u64;
    let mut repeats = 21usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer")
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .expect("--repeats needs a value")
                    .parse()
                    .expect("repeats must be an integer")
            }
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other:?} (see the module docs)"),
        }
    }

    let level = SimdLevel::detect();
    if smoke {
        run_smoke(seed, level);
        return;
    }

    let prim_rows = bench_primitives(KERNEL_N, 2_000, repeats, level);
    let mixed_speedup = mixed_median_speedup(&prim_rows);
    println!(
        "kernel primitives measured (n={KERNEL_N}, level={level}): \
         mixed median speedup {mixed_speedup:.2}x"
    );
    assert!(
        mixed_speedup >= MIXED_GATE,
        "mixed-precision breakpoint/clamp fills must be ≥{MIXED_GATE}x the \
         scalar oracle, measured {mixed_speedup:.2}x"
    );

    let full = bench_full_kernel(KERNEL_N, 200, repeats, level);
    println!("full-kernel stage measured (n={KERNEL_N})");

    let e2e = bench_e2e(seed, E2E_N, E2E_HB, E2E_ITERATIONS, E2E_REPEATS);
    println!("end-to-end stage measured ({E2E_N}×{E2E_N}, hb={E2E_HB})");

    let doc = obj(vec![
        (
            "schema",
            JsonValue::String("sea-bench-summary/v1".to_string()),
        ),
        ("pr", JsonValue::Number(10.0)),
        ("seed", JsonValue::Number(seed as f64)),
        ("simd_level", JsonValue::String(level.name().to_string())),
        ("kernel_primitives", primitives_json(&prim_rows, KERNEL_N)),
        ("full_kernel", full),
        ("e2e_banded_csr", e2e),
    ]);
    let mut text = doc.render();
    text.push('\n');
    let out = out.unwrap_or_else(|| "BENCH_10.json".to_string());
    std::fs::write(&out, text).expect("write bench summary");
    println!("wrote {out}");
}
