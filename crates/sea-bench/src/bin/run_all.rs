//! Run every experiment binary in sequence at the chosen scale, producing
//! `results/*.md` and `results/*.csv` for all nine tables and both
//! figures plus the extension studies.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "table9",
        "fig5",
        "fig7",
        "ablation",
        "weights_study",
        "theory_check",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in bins {
        eprintln!("==== running {bin} {} ====", args.join(" "));
        let status = Command::new(exe_dir.join(bin)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        eprintln!("all experiments completed; see results/");
    } else {
        eprintln!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
