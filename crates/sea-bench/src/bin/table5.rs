//! Table 5 — SEA on spatial price equilibrium problems (§4.1.2).
//!
//! Linear separable SPE instances SP50×50 … SP750×750, solved through the
//! SPE ⇄ constrained-matrix isomorphism, ε = .01. Every solution's
//! equilibrium conditions are verified before reporting.

use sea_bench::{results_dir, Scale};
use sea_core::SeaOptions;
use sea_report::{fmt_seconds, ExperimentRecord, Table};
use sea_spatial::{random_spe, solve_spe};

fn main() {
    let (scale, seed) = Scale::from_args();
    let sizes: &[usize] = match scale {
        Scale::Small => &[50, 100],
        Scale::Medium => &[50, 100, 250, 500],
        Scale::Paper => &[50, 100, 250, 500, 750],
    };

    let mut record = ExperimentRecord::new(
        "table5",
        "Table 5: SEA on spatial price equilibrium problems",
    );
    let mut table = Table::new(
        "CPU time per instance (epsilon = .01)",
        &[
            "m x n",
            "# variables",
            "iterations",
            "CPU time (s)",
            "max equilibrium violation",
        ],
    );

    for &size in sizes {
        let spe = random_spe(size, size, seed);
        // The paper checked convergence every other iteration for these
        // elastic problems (§4.2).
        let mut opts = SeaOptions::with_epsilon(0.01);
        opts.check_every = 2;
        let sol = solve_spe(&spe, &opts).expect("valid instance");
        assert!(sol.converged, "SP{size} did not converge");
        let viol = sol
            .report
            .max_price_violation
            .max(sol.report.max_complementarity_gap / sol.report.total_flow.max(1.0));
        table.push_row(vec![
            format!("SP{size} x {size}"),
            (size * size).to_string(),
            sol.iterations.to_string(),
            fmt_seconds(sol.elapsed.as_secs_f64()),
            format!("{viol:.2e}"),
        ]);
        eprintln!("table5: SP{size} done ({} iterations)", sol.iterations);
    }

    record.push_table(table);
    record.push_note(format!("scale = {scale:?}, seed = {seed}"));
    record.push_note(
        "Paper CPU seconds: SP50 1.38, SP100 11.26, SP250 129.5, SP500 540.7, \
         SP750 1589.1. Elastic problems need far more iterations than the fixed \
         Table 1 problems (paper: 84 for SP500, 104 for SP750).",
    );
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
