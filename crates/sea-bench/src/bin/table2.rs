//! Table 2 — SEA on United States input/output matrix datasets (§4.1.2).
//!
//! Nine fixed-totals datasets: IOC72a/b/c (205², 52 % dense),
//! IOC77a/b/c (205², 58 %), IO72a/b/c (485², 16 %). The `c` datapoints are
//! the average of 10 perturbed replications, exactly as in the paper.

use sea_bench::{results_dir, Scale};
use sea_core::{solve_diagonal, SeaOptions};
use sea_data::io_tables::{all_variants, io_dataset};
use sea_report::{fmt_seconds, ExperimentRecord, Table};

fn main() {
    let (scale, _seed) = Scale::from_args();
    // The I/O datasets are fixed-size real-data stand-ins; `small` trims
    // the replication count of the averaged `c` datapoints.
    let c_replications: u64 = match scale {
        Scale::Small => 2,
        Scale::Medium => 5,
        Scale::Paper => 10,
    };

    let mut record = ExperimentRecord::new(
        "table2",
        "Table 2: SEA on United States input/output matrix datasets",
    );
    let mut table = Table::new(
        "CPU time per dataset",
        &["Dataset", "size", "% nonzero", "iterations", "CPU time (s)"],
    );

    for v in all_variants() {
        let reps = if v.variant == 'c' { c_replications } else { 1 };
        let mut total_secs = 0.0;
        let mut total_iters = 0usize;
        let mut density = 0.0;
        for r in 0..reps {
            let problem = io_dataset(v, r);
            density = problem.x0().density();
            let sol = solve_diagonal(&problem, &SeaOptions::with_epsilon(0.01))
                .expect("feasible by construction");
            assert!(sol.stats.converged, "{} did not converge", v.name());
            total_secs += sol.stats.elapsed.as_secs_f64();
            total_iters += sol.stats.iterations;
        }
        table.push_row(vec![
            v.name(),
            format!("{0} x {0}", v.size()),
            format!("{:.0}%", 100.0 * density),
            format!("{:.1}", total_iters as f64 / reps as f64),
            fmt_seconds(total_secs / reps as f64),
        ]);
        eprintln!("table2: {} done", v.name());
    }

    record.push_table(table);
    record.push_note(format!(
        "scale = {scale:?}; 'c' rows average {c_replications} replications (paper: 10)"
    ));
    record.push_note(
        "Paper CPU seconds: IOC72a 18.7, IOC72b 19.0, IOC72c 25.6, IOC77a 13.6, \
         IOC77b 19.1, IOC77c 30.2, IO72a 333.3, IO72b 438.4, IO72c 335.6 — the \
         485^2 series should be roughly an order of magnitude above the 205^2 series.",
    );
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
