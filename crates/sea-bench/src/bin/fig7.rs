//! Figure 7 — speedup curves for SEA vs RC on the general 10000×10000-G
//! example, as CSV series (`algorithm,processors,speedup,efficiency`).
//! Same data as Table 9, including the N = 1 anchor points.

use sea_bench::{experiments::general_speedup_experiment, results_dir, Scale};
use std::io::Write;

fn main() {
    let (scale, seed) = Scale::from_args();
    let results = general_speedup_experiment(scale, seed);

    let mut csv = String::from("algorithm,processors,speedup,efficiency\n");
    for (name, rows) in &results {
        for r in rows {
            csv.push_str(&format!(
                "{name},{},{:.4},{:.4}\n",
                r.processors, r.speedup, r.efficiency
            ));
        }
    }
    print!("{csv}");

    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut f) = std::fs::File::create(dir.join("fig7.csv")) {
            let _ = f.write_all(csv.as_bytes());
            eprintln!("saved {}", dir.join("fig7.csv").display());
        }
    }
}
