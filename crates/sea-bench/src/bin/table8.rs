//! Table 8 — SEA on general constrained matrix problems consisting of US
//! migration tables with 100 % dense G (§5.1.2): six 48×48 problems,
//! G of order 2304, ε′ = .001.

use sea_bench::{results_dir, Scale};
use sea_core::{solve_general, GeneralSeaOptions};
use sea_data::migration::{migration_general, Period};
use sea_report::{fmt_seconds, ExperimentRecord, Table};

fn main() {
    let (scale, _seed) = Scale::from_args();

    let mut record = ExperimentRecord::new(
        "table8",
        "Table 8: SEA on general migration problems, dense G (2304 x 2304)",
    );
    let mut table = Table::new(
        "CPU time per dataset (epsilon' = .001)",
        &["Dataset", "outer iters", "inner iters", "CPU time (s)"],
    );

    for period in Period::all() {
        for perturb in [false, true] {
            let name = format!("GMIG{}{}", period.tag(), if perturb { 'b' } else { 'a' });
            let p = migration_general(period, perturb);
            let sol = solve_general(&p, &GeneralSeaOptions::with_epsilon(0.001)).expect("solvable");
            assert!(sol.converged, "{name} did not converge");
            table.push_row(vec![
                name.clone(),
                sol.outer_iterations.to_string(),
                sol.inner_iterations.to_string(),
                fmt_seconds(sol.elapsed.as_secs_f64()),
            ]);
            eprintln!("table8: {name} done");
        }
    }

    record.push_table(table);
    record.push_note(format!(
        "scale = {scale:?} (fixed 48x48 / G 2304^2, as in the paper)"
    ));
    record.push_note(
        "Paper: all six examples ~23-29 CPU seconds with epsilon' = .001; the \
         dominant cost is the dense 2304^2 G mat-vec per projection step, so \
         all six datasets should take nearly identical time.",
    );
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
