//! Table 3 — SEA on social accounting matrix datasets (§4.1.2).
//!
//! Balanced (SAM) estimation problems: STONE, TURK, SRI, USDA82E, and the
//! large random S500/S750/S1000. Convergence tolerance ε = .001 (relative
//! row balance), per the paper.

use sea_bench::{results_dir, Scale};
use sea_core::{solve_diagonal, SeaOptions};
use sea_data::sam::{sam_problem, SamInstance};
use sea_report::{fmt_seconds, ExperimentRecord, Table};

fn main() {
    let (scale, seed) = Scale::from_args();
    let instances: Vec<SamInstance> = match scale {
        Scale::Small => vec![
            SamInstance::Stone,
            SamInstance::Turk,
            SamInstance::Sri,
            SamInstance::Usda82e,
        ],
        Scale::Medium | Scale::Paper => SamInstance::all().to_vec(),
    };

    let mut record = ExperimentRecord::new(
        "table3",
        "Table 3: SEA on social accounting matrix datasets",
    );
    let mut table = Table::new(
        "CPU time per dataset (epsilon = .001)",
        &[
            "Dataset",
            "# accounts",
            "# transactions",
            "iterations",
            "CPU time (s)",
        ],
    );

    for inst in instances {
        let problem = sam_problem(inst, seed);
        let sol = solve_diagonal(&problem, &SeaOptions::with_epsilon(0.001))
            .expect("feasible by construction");
        assert!(sol.stats.converged, "{} did not converge", inst.name());
        table.push_row(vec![
            inst.name().to_string(),
            inst.accounts().to_string(),
            problem.x0().count_nonzero().to_string(),
            sol.stats.iterations.to_string(),
            fmt_seconds(sol.stats.elapsed.as_secs_f64()),
        ]);
        eprintln!("table3: {} done", inst.name());
    }

    record.push_table(table);
    record.push_note(format!("scale = {scale:?}, seed = {seed}"));
    record.push_note(
        "Paper CPU seconds: STONE .0024, TURK .0210, SRI .009, USDA82E 5.76, \
         S500 28.99, S750 52.60, S1000 95.08 — small real SAMs in fractions of a \
         second, large random SAMs scaling roughly with account count squared.",
    );
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
