//! Machine-readable perf snapshot: median timings for both equilibration
//! kernels plus an end-to-end diagonal solve, written as JSON.
//!
//! Seeds the repo's BENCH trajectory (`BENCH_<pr>.json` at the repo root):
//! each entry records the medians for this revision so later PRs can
//! compare against a committed baseline instead of re-running history.
//!
//! ```text
//! bench_summary [--out BENCH_2.json] [--repeats 41] [--seed 1990]
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::knapsack::{exact_equilibration_with, EquilibrationScratch, KernelKind, TotalMode};
use sea_core::{solve_diagonal, SeaOptions};
use sea_data::random::table1_instance;
use sea_observe::json::{f64_to_json, JsonValue};
use std::hint::black_box;
use std::time::Instant;

/// Subproblem size for the kernel microbenchmark.
const KERNEL_N: usize = 2000;
/// Problem order for the end-to-end solve.
const SOLVE_N: usize = 200;

fn median(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Median seconds of one exact equilibration over `KERNEL_N` variables.
fn bench_kernel(kernel: KernelKind, repeats: usize, seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBE_2C);
    let q: Vec<f64> = (0..KERNEL_N)
        .map(|_| rng.random_range(0.1..10_000.0))
        .collect();
    let gamma: Vec<f64> = q.iter().map(|&v| 1.0 / v).collect();
    let shift: Vec<f64> = (0..KERNEL_N).map(|_| rng.random_range(-1.0..1.0)).collect();
    let total: f64 = q.iter().sum::<f64>() * 1.7;
    let mut x = vec![0.0; KERNEL_N];
    let mut scratch = EquilibrationScratch::new();
    let run = |x: &mut [f64], scratch: &mut EquilibrationScratch| {
        exact_equilibration_with(
            kernel,
            black_box(&q),
            &gamma,
            &shift,
            TotalMode::Fixed { total },
            x,
            scratch,
        )
        .expect("valid inputs")
    };
    // Warm up (fills scratch buffers so the timed runs are steady-state).
    for _ in 0..3 {
        run(&mut x, &mut scratch);
    }
    let samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            run(&mut x, &mut scratch);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(samples)
}

/// Median seconds (and iteration count) of a full Table-1-style solve.
fn bench_solve(kernel: KernelKind, repeats: usize, seed: u64) -> (f64, usize) {
    let p = table1_instance(SOLVE_N, seed);
    let mut opts = SeaOptions::with_epsilon(1e-8);
    opts.kernel = kernel;
    let mut iterations = 0;
    let samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let sol = solve_diagonal(black_box(&p), &opts).expect("solvable");
            assert!(sol.stats.converged, "bench instance must converge");
            iterations = sol.stats.iterations;
            t0.elapsed().as_secs_f64()
        })
        .collect();
    (median(samples), iterations)
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out = "BENCH_2.json".to_string();
    let mut repeats = 41usize;
    let mut seed = 1990u64;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                if let Some(v) = it.next() {
                    out = v.clone();
                }
            }
            "--repeats" => {
                if let Some(v) = it.next() {
                    repeats = v.parse().unwrap_or(repeats).max(1);
                }
            }
            "--seed" => {
                if let Some(v) = it.next() {
                    seed = v.parse().unwrap_or(seed);
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut kernels: Vec<(String, JsonValue)> = Vec::new();
    let mut solves: Vec<(String, JsonValue)> = Vec::new();
    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        let name = kernel.name();
        let micro = bench_kernel(kernel, repeats, seed);
        kernels.push((
            name.to_string(),
            obj(vec![("median_seconds", f64_to_json(micro))]),
        ));
        // End-to-end solves are heavier; a third of the repeats suffices.
        let (solve_median, iterations) = bench_solve(kernel, repeats / 3, seed);
        solves.push((
            name.to_string(),
            obj(vec![
                ("median_seconds", f64_to_json(solve_median)),
                ("iterations", JsonValue::Number(iterations as f64)),
            ]),
        ));
        eprintln!(
            "{name}: equilibration(n={KERNEL_N}) {micro:.3e}s, \
             solve({SOLVE_N}x{SOLVE_N}) {solve_median:.3e}s ({iterations} iters)"
        );
    }

    let doc = obj(vec![
        (
            "schema",
            JsonValue::String("sea-bench-summary/v1".to_string()),
        ),
        ("pr", JsonValue::Number(2.0)),
        ("repeats", JsonValue::Number(repeats as f64)),
        ("seed", JsonValue::Number(seed as f64)),
        (
            "kernel_equilibration",
            obj(vec![
                ("n", JsonValue::Number(KERNEL_N as f64)),
                ("mode", JsonValue::String("fixed".to_string())),
                ("by_kernel", JsonValue::Object(kernels)),
            ]),
        ),
        (
            "solve_diagonal",
            obj(vec![
                ("rows", JsonValue::Number(SOLVE_N as f64)),
                ("cols", JsonValue::Number(SOLVE_N as f64)),
                ("epsilon", f64_to_json(1e-8)),
                ("by_kernel", JsonValue::Object(solves)),
            ]),
        ),
    ]);
    let mut text = doc.render();
    text.push('\n');
    std::fs::write(&out, text).expect("write bench summary");
    println!("wrote {out}");
}
