//! Figure 5 — speedup curves for SEA on diagonal problems, as CSV series
//! (`example,processors,speedup,efficiency`) suitable for plotting. Same
//! data as Table 6, including the N = 1 anchor points the figure plots.

use sea_bench::{experiments::diagonal_speedup_experiment, results_dir, Scale};
use std::io::Write;

fn main() {
    let (scale, seed) = Scale::from_args();
    let results = diagonal_speedup_experiment(scale, seed);

    let mut csv = String::from("example,processors,speedup,efficiency\n");
    for (name, rows) in &results {
        for r in rows {
            csv.push_str(&format!(
                "{name},{},{:.4},{:.4}\n",
                r.processors, r.speedup, r.efficiency
            ));
        }
    }
    print!("{csv}");

    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut f) = std::fs::File::create(dir.join("fig5.csv")) {
            let _ = f.write_all(csv.as_bytes());
            eprintln!("saved {}", dir.join("fig5.csv").display());
        }
    }
}
