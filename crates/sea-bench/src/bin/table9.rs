//! Table 9 — Parallel speedup and efficiency measurements for SEA and RC
//! on general problems (§5.2), plus the Figure 7 series.
//!
//! The paper's 10000×10000-G example (X⁰ 100×100) solved by both SEA and
//! RC with trace recording; speedups for N ∈ {2, 4} from the scheduling
//! simulator (substitution S2). The structural expectation: SEA verifies
//! projection convergence once, RC once per projection iteration inside
//! every half-step, so SEA parallelizes better.

use sea_bench::{
    experiments::general_speedup_experiment, results_dir, speedup_rows_to_table, Scale,
};
use sea_report::{ExperimentRecord, Table};

fn main() {
    let (scale, seed) = Scale::from_args();
    let results = general_speedup_experiment(scale, seed);

    let mut record = ExperimentRecord::new(
        "table9",
        "Table 9: parallel speedup and efficiency, SEA vs RC on general problems (simulated machine)",
    );
    let mut table = Table::new("Speedups", &["Example", "N", "S_N", "E_N"]);
    for (name, rows) in &results {
        speedup_rows_to_table(&mut table, name, rows);
    }
    record.push_table(table);
    record.push_note(format!("scale = {scale:?}, seed = {seed}"));
    record.push_note(
        "Paper (10000x10000 G, standalone): SEA 1.82 (N=2) / 2.62 (N=4) vs \
         RC 1.75 / 2.24 — SEA ahead by ~3% absolute efficiency at N=2 and \
         ~10% at N=4. Check that SEA's speedup exceeds RC's at each N.",
    );
    // Make the SEA-vs-RC comparison explicit for both machine models.
    for pair in results.chunks(2) {
        if let [(sea_name, sea_rows), (rc_name, rc_rows)] = pair {
            for (s, r) in sea_rows.iter().zip(rc_rows) {
                if s.processors == 1 {
                    continue;
                }
                record.push_note(format!(
                    "N={}: {} speedup {:.2} vs {} speedup {:.2} ({})",
                    s.processors,
                    sea_name,
                    s.speedup,
                    rc_name,
                    r.speedup,
                    if s.speedup >= r.speedup {
                        "SEA ahead, as in the paper"
                    } else {
                        "RC ahead — differs from the paper"
                    }
                ));
            }
        }
    }
    record.push_note(
        "Two machine models are reported: the modern measured-trace machine \
         (where compiler-vectorized convergence checks erase RC's serial-phase \
         penalty, so SEA and RC parallelize alike) and the 'vector-era' machine \
         (serial scalar phases 30x the cost of vectorized parallel work, as on \
         the 3090's Vector Facility), which reproduces the paper's mechanism: \
         RC's extra projection-convergence verifications drag its efficiency \
         below SEA's.",
    );
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
