//! Table 7 — Computational comparisons of SEA, RC, and B-K on general
//! quadratic constrained matrix problems with 100 % dense G (§5.1.1).
//!
//! `X⁰` sides 10…120 giving G orders 100…14400; G symmetric, strictly
//! diagonally dominant, diag ∈ [500, 800], negative off-diagonals; ε′ =
//! .001. B-K is only run on the smaller instances — exactly as in the
//! paper, where "the larger problems were not solved using B-K because it
//! became prohibitively expensive to do so".

use sea_baselines::bachem_korte::{solve_general_bk, BkOptions};
use sea_baselines::rc::{solve_general_rc, RcOptions};
use sea_bench::{results_dir, Scale};
use sea_core::{solve_general, GeneralSeaOptions};
use sea_data::table7_instance;
use sea_report::{fmt_seconds, ExperimentRecord, Table};

fn main() {
    let (scale, seed) = Scale::from_args();
    // (X0 side, # replications averaged, run B-K?)
    let cases: &[(usize, u64, bool)] = match scale {
        Scale::Small => &[(10, 3, true), (20, 2, true), (30, 1, false)],
        Scale::Medium => &[
            (10, 10, true),
            (20, 10, true),
            (30, 2, false),
            (50, 1, false),
            (70, 1, false),
        ],
        Scale::Paper => &[
            (10, 10, true),
            (20, 10, true),
            (30, 2, true),
            (50, 1, false),
            (70, 1, false),
            (100, 1, false),
            (120, 1, false),
        ],
    };

    let mut record = ExperimentRecord::new(
        "table7",
        "Table 7: SEA vs RC vs B-K on general problems with 100% dense G",
    );
    let mut table = Table::new(
        "CPU time (seconds, averaged over replications)",
        &["Dim of G", "# runs", "SEA", "RC", "B-K"],
    );

    for &(side, reps, run_bk) in cases {
        let g_order = side * side;
        let mut sea_secs = 0.0;
        let mut rc_secs = 0.0;
        let mut bk_secs = 0.0;
        let mut agreement: f64 = 0.0;
        for r in 0..reps {
            let p = table7_instance(side, seed.wrapping_add(r));

            let sea = solve_general(&p, &GeneralSeaOptions::with_epsilon(0.001)).expect("solvable");
            assert!(sea.converged, "SEA failed on G {g_order}");
            sea_secs += sea.elapsed.as_secs_f64();

            let rc = solve_general_rc(&p, &RcOptions::with_epsilon(0.001)).expect("solvable");
            assert!(rc.converged, "RC failed on G {g_order}");
            rc_secs += rc.elapsed.as_secs_f64();
            agreement = agreement.max(sea.x.max_abs_diff(&rc.x));

            // B-K is orders of magnitude slower; measure it on the first
            // replication only (its column in the paper is likewise the
            // point of abandonment for the larger sizes).
            if run_bk && r == 0 {
                let bk = solve_general_bk(&p, &BkOptions::with_epsilon(0.001)).expect("solvable");
                bk_secs = bk.elapsed.as_secs_f64();
                agreement = agreement.max(sea.x.max_abs_diff(&bk.x));
            }
        }
        let repsf = reps as f64;
        table.push_row(vec![
            format!("{g_order} x {g_order}"),
            reps.to_string(),
            fmt_seconds(sea_secs / repsf),
            fmt_seconds(rc_secs / repsf),
            if run_bk {
                fmt_seconds(bk_secs)
            } else {
                "-".to_string()
            },
        ]);
        eprintln!("table7: G {g_order}x{g_order} done (max solver disagreement {agreement:.2e})");
    }

    record.push_table(table);
    record.push_note(format!("scale = {scale:?}, seed = {seed}, epsilon' = .001"));
    record.push_note(
        "Paper (G from 100^2 to 14400^2): SEA beat RC by 3-4x throughout and \
         B-K by up to two orders of magnitude; B-K was abandoned beyond 900^2. \
         Check: SEA < RC < B-K per row, with the B-K gap widening with size. \
         In this reproduction B-K's ABSOLUTE seconds track the paper's B-K \
         column closely, while SEA/RC run hundreds of times faster than their \
         1990 counterparts (cache-resident problems), so the B-K/SEA ratio is \
         amplified beyond the paper's; the ordering and growth shape hold.",
    );
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
