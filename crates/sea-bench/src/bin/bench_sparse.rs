//! Sparse-scale benchmark: the `BENCH_6.json` snapshot.
//!
//! Three measurements prove the CSR storage backend does what dense
//! storage cannot:
//!
//! * **scale** — a 10 000 × 10 000 banded constrained matrix problem with
//!   ≥10⁷ stored nonzeros is solved to a passing KKT certificate over CSR
//!   storage. Its dense image would need six 800 MB matrices before the
//!   first pass runs.
//! * **dense-alloc probe** — a child process under a 2 GB address-space
//!   cap (`ulimit -v`) tries to allocate just the three primary dense
//!   matrices of the same instance via `DenseMatrix::try_zeros` and must
//!   fail, while the sparse solve above fits comfortably.
//! * **parity** — a 1 200 × 1 200 banded instance both backends can hold
//!   is solved dense and sparse; the iterates must agree bitwise on the
//!   support, and both wall-clock medians are recorded.
//!
//! ```text
//! bench_sparse [--out BENCH_6.json] [--seed 1990] [--repeats 3] [--smoke]
//! ```
//!
//! `--smoke` runs only a release-mode 2 000 × 2 000 sparse solve to a
//! passing supervised certificate (the CI gate) and writes no snapshot.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{
    solve_diagonal, solve_diagonal_supervised, DiagonalProblem, NullObserver, Parallelism,
    SeaOptions, StopReason, SupervisorOptions, TotalSpec, ZeroPolicy,
};
use sea_linalg::{CsrMatrix, DenseMatrix};
use sea_observe::json::{f64_to_json, JsonValue};

/// Scale-stage order.
const SCALE_N: usize = 10_000;
/// Scale-stage half-bandwidth: 2·520 + 1 = 1041 stored cells per interior
/// row, ≈1.014·10⁷ nonzeros total.
const SCALE_HB: usize = 520;
/// Parity-stage order (small enough that the dense side stays quick).
const PARITY_N: usize = 1_200;
/// Parity-stage half-bandwidth (~13% density).
const PARITY_HB: usize = 80;
/// CI smoke-solve order (sparse only; the dense image would be slow).
const SMOKE_N: usize = 2_000;
/// CI smoke-solve half-bandwidth.
const SMOKE_HB: usize = 120;
/// Stopping tolerance for both stages.
const EPSILON: f64 = 1e-8;
/// Address-space cap for the dense-allocation probe, in KiB (2 GiB).
const PROBE_LIMIT_KIB: u64 = 2 * 1024 * 1024;

/// Build a banded CSR prior directly in CSR order (triplet assembly would
/// transiently triple the footprint at 10⁷ nonzeros).
fn banded_prior(rng: &mut ChaCha8Rng, n: usize, hb: usize) -> CsrMatrix {
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        let lo = i.saturating_sub(hb);
        let hi = (i + hb).min(n - 1);
        for j in lo..=hi {
            col_idx.push(j as u32);
            vals.push(rng.random_range(0.5..10.0));
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts(n, n, row_ptr, col_idx, vals).expect("banded pattern is valid CSR")
}

/// Feasible fixed-totals sparse problem on a banded support: `10^±1`
/// weight spreads, totals from the margins of a ±10%-perturbed copy of
/// the prior.
fn banded_problem(seed: u64, n: usize, hb: usize) -> DiagonalProblem<CsrMatrix> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x0 = banded_prior(&mut rng, n, hb);
    let gvals: Vec<f64> = (0..x0.stored())
        .map(|_| 10f64.powi(rng.random_range(-1..=1)))
        .collect();
    let gamma = x0.with_values(gvals).expect("same pattern");
    let yvals: Vec<f64> = x0
        .vals()
        .iter()
        .map(|&v| v * rng.random_range(0.9..1.1))
        .collect();
    let y = x0.with_values(yvals).expect("same pattern");
    let mut s0 = vec![0.0; n];
    let mut d0 = vec![0.0; n];
    y.row_sums_into(&mut s0);
    y.col_sums_into(&mut d0);
    DiagonalProblem::with_zero_policy(
        x0,
        gamma,
        TotalSpec::Fixed { s0, d0 },
        ZeroPolicy::Structural,
    )
    .expect("banded problem is feasible by construction")
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Solve the 10k×10k instance over CSR and demand a passing certificate.
fn bench_scale(seed: u64) -> JsonValue {
    let build_start = std::time::Instant::now();
    let p = banded_problem(seed, SCALE_N, SCALE_HB);
    let build_seconds = build_start.elapsed().as_secs_f64();
    let nnz = p.x0().stored();
    assert!(
        nnz >= 10_000_000,
        "scale stage must hold at least 1e7 nonzeros, got {nnz}"
    );

    let mut opts = SeaOptions::with_epsilon(EPSILON);
    opts.parallelism = Parallelism::Rayon;
    let sup = SupervisorOptions::default();
    let solve_start = std::time::Instant::now();
    let sol = solve_diagonal_supervised(&p, &opts, &sup, &mut NullObserver)
        .expect("scale-stage solve failed");
    let solve_seconds = solve_start.elapsed().as_secs_f64();
    assert_eq!(
        sol.stop,
        StopReason::Converged,
        "scale stage did not converge"
    );

    // The certificate's stationarity / sign / feasibility checks are
    // relative and must pass outright; the duality gap is an absolute
    // number that scales with the grand total, so it is recorded (and
    // sanity-bounded relative to the objective) rather than compared to
    // the stationarity tolerance.
    let cert = &sol.certificate;
    assert!(cert.max_stationarity <= 1e-6, "stationarity: {cert:?}");
    assert!(cert.max_sign_violation <= 1e-6, "sign: {cert:?}");
    assert!(
        cert.residuals.rel_row_inf <= EPSILON * 1.01,
        "rows: {cert:?}"
    );
    assert!(cert.min_entry >= -1e-9, "negativity: {cert:?}");
    let objective = cert.objective;
    assert!(
        cert.is_optimal_with(1e-6, sea_core::verify::GapCheck::RelativeToObjective),
        "relative duality gap: {} vs objective {objective}",
        cert.duality_gap
    );

    obj(vec![
        ("rows", JsonValue::Number(SCALE_N as f64)),
        ("cols", JsonValue::Number(SCALE_N as f64)),
        ("half_bandwidth", JsonValue::Number(SCALE_HB as f64)),
        ("nonzeros", JsonValue::Number(nnz as f64)),
        ("build_seconds", f64_to_json(build_seconds)),
        ("solve_seconds", f64_to_json(solve_seconds)),
        (
            "iterations",
            JsonValue::Number(sol.solution.stats.iterations as f64),
        ),
        ("converged", JsonValue::Bool(true)),
        ("max_stationarity", f64_to_json(cert.max_stationarity)),
        ("rel_row_residual", f64_to_json(cert.residuals.rel_row_inf)),
        ("duality_gap", f64_to_json(cert.duality_gap)),
        ("objective", f64_to_json(objective)),
    ])
}

/// Child-process body for `--probe-dense`: try to allocate the three
/// primary dense matrices of the scale-stage instance. Exit 0 if all
/// three fit, 3 when allocation fails (the expected outcome under the
/// parent's address-space cap).
fn probe_dense_child() -> ! {
    let mut held = Vec::new();
    for _ in 0..3 {
        match DenseMatrix::try_zeros(SCALE_N, SCALE_N) {
            Ok(m) => held.push(m),
            Err(_) => {
                println!("dense allocation failed with {} matrices held", held.len());
                std::process::exit(3);
            }
        }
    }
    println!("all dense matrices allocated");
    std::process::exit(0);
}

/// Run the dense-allocation probe under `ulimit -v` in a child process.
fn bench_dense_probe() -> JsonValue {
    let exe = std::env::current_exe().expect("own executable path");
    let cmd = format!(
        "ulimit -v {PROBE_LIMIT_KIB}; exec '{}' --probe-dense",
        exe.display()
    );
    let status = std::process::Command::new("sh")
        .arg("-c")
        .arg(&cmd)
        .status()
        .expect("spawn dense probe");
    let denied = status.code() == Some(3);
    assert!(
        denied,
        "dense path allocated a {SCALE_N}×{SCALE_N} problem under a \
         {PROBE_LIMIT_KIB} KiB cap (exit {status:?}); the scale stage no \
         longer demonstrates anything"
    );
    obj(vec![
        ("rows", JsonValue::Number(SCALE_N as f64)),
        ("cols", JsonValue::Number(SCALE_N as f64)),
        (
            "address_space_limit_kib",
            JsonValue::Number(PROBE_LIMIT_KIB as f64),
        ),
        ("matrices_attempted", JsonValue::Number(3.0)),
        ("dense_allocation_failed", JsonValue::Bool(true)),
    ])
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Dense-vs-sparse parity at a size both backends can hold: bitwise equal
/// iterates on the support, medians of `repeats` timed solves each.
fn bench_parity(seed: u64, repeats: usize) -> JsonValue {
    let sparse_p = banded_problem(seed, PARITY_N, PARITY_HB);
    let dense_p = sparse_p.to_dense_problem().expect("parity size fits dense");
    let mut opts = SeaOptions::with_epsilon(EPSILON);
    opts.parallelism = Parallelism::Rayon;

    let mut sparse_secs = Vec::new();
    let mut dense_secs = Vec::new();
    let mut iterations = 0usize;
    for _ in 0..repeats {
        let t = std::time::Instant::now();
        let ssol = solve_diagonal(&sparse_p, &opts).expect("sparse parity solve");
        sparse_secs.push(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        let dsol = solve_diagonal(&dense_p, &opts).expect("dense parity solve");
        dense_secs.push(t.elapsed().as_secs_f64());
        assert!(ssol.stats.converged && dsol.stats.converged);
        assert_eq!(ssol.stats.iterations, dsol.stats.iterations);
        iterations = ssol.stats.iterations;
        let sx = ssol.x.to_dense().expect("densify parity solution");
        let bits_equal = sx
            .as_slice()
            .iter()
            .zip(dsol.x.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(bits_equal, "parity stage: storage backends diverged");
    }
    let (sparse_med, dense_med) = (median(sparse_secs), median(dense_secs));
    obj(vec![
        ("rows", JsonValue::Number(PARITY_N as f64)),
        ("cols", JsonValue::Number(PARITY_N as f64)),
        ("half_bandwidth", JsonValue::Number(PARITY_HB as f64)),
        ("nonzeros", JsonValue::Number(sparse_p.x0().stored() as f64)),
        ("repeats", JsonValue::Number(repeats as f64)),
        ("iterations", JsonValue::Number(iterations as f64)),
        ("bitwise_equal", JsonValue::Bool(true)),
        ("sparse_median_seconds", f64_to_json(sparse_med)),
        ("dense_median_seconds", f64_to_json(dense_med)),
        ("speedup", f64_to_json(dense_med / sparse_med)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--probe-dense") {
        probe_dense_child();
    }
    let mut out: Option<String> = None;
    let mut seed = 1990u64;
    let mut repeats = 3usize;
    let mut smoke = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                if let Some(v) = it.next() {
                    out = Some(v.clone());
                }
            }
            "--seed" => {
                if let Some(v) = it.next() {
                    seed = v.parse().unwrap_or(seed);
                }
            }
            "--repeats" => {
                if let Some(v) = it.next() {
                    repeats = v.parse().unwrap_or(repeats).max(1);
                }
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    if smoke {
        let p = banded_problem(seed, SMOKE_N, SMOKE_HB);
        let mut opts = SeaOptions::with_epsilon(EPSILON);
        opts.parallelism = Parallelism::Rayon;
        let sup = SupervisorOptions::default();
        let t = std::time::Instant::now();
        let sol = solve_diagonal_supervised(&p, &opts, &sup, &mut NullObserver)
            .expect("smoke solve failed");
        assert_eq!(
            sol.stop,
            StopReason::Converged,
            "smoke solve did not converge"
        );
        assert!(
            sol.certificate.max_stationarity <= 1e-6
                && sol.certificate.residuals.rel_row_inf <= EPSILON * 1.01,
            "smoke certificate failed: {:?}",
            sol.certificate
        );
        println!(
            "smoke solve passed ({SMOKE_N}×{SMOKE_N}, {} nonzeros, {} iterations, {:.2}s)",
            p.x0().stored(),
            sol.solution.stats.iterations,
            t.elapsed().as_secs_f64()
        );
        return;
    }

    let parity = bench_parity(seed, repeats);
    println!("parity stage passed ({PARITY_N}×{PARITY_N})");

    let mut fields = vec![
        (
            "schema",
            JsonValue::String("sea-bench-summary/v1".to_string()),
        ),
        ("pr", JsonValue::Number(6.0)),
        ("seed", JsonValue::Number(seed as f64)),
        ("epsilon", f64_to_json(EPSILON)),
        ("parity", parity),
    ];
    fields.push(("dense_probe", bench_dense_probe()));
    println!("dense-allocation probe passed (denied under cap)");
    fields.push(("sparse_scale", bench_scale(seed)));
    println!("scale stage passed ({SCALE_N}×{SCALE_N})");
    let doc = obj(fields);
    let mut text = doc.render();
    text.push('\n');
    let out = out.unwrap_or_else(|| "BENCH_6.json".to_string());
    std::fs::write(&out, text).expect("write bench summary");
    println!("wrote {out}");
}
