//! Weight-scheme study (extension, DESIGN.md §8): how the §2 weighting
//! choices — least squares, chi-square, inverse-sqrt — affect SEA's
//! iteration count and the character of the estimate on the same updating
//! problem.
//!
//! The theory (eq. 58-64) predicts the iteration bound degrades with the
//! spread `M_l/m_l` of `1/(2γ)`, i.e. with the dispersion of the weights —
//! chi-square weights on wide-spread data are the hard case.

use sea_bench::{results_dir, Scale};
use sea_core::{solve_diagonal, theory, DiagonalProblem, SeaOptions, TotalSpec, WeightScheme};
use sea_report::{fmt_seconds, ExperimentRecord, Table};

fn main() {
    let (scale, seed) = Scale::from_args();
    let size = match scale {
        Scale::Small => 60,
        Scale::Medium => 150,
        Scale::Paper => 400,
    };

    // A wide-spread prior, margins grown by conflicting per-line factors.
    let base = sea_data::table1_instance(size, seed);
    let x0 = base.x0().clone();
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let s0: Vec<f64> = x0
        .row_sums()
        .iter()
        .map(|v| v * rng.random_range(0.7..1.6))
        .collect();
    let mut d0: Vec<f64> = x0
        .col_sums()
        .iter()
        .map(|v| v * rng.random_range(0.7..1.6))
        .collect();
    let f: f64 = s0.iter().sum::<f64>() / d0.iter().sum::<f64>();
    for v in &mut d0 {
        *v *= f;
    }

    let mut record = ExperimentRecord::new(
        "weights_study",
        "Weight-scheme study: conditioning and iterations across the Section 2 schemes",
    );
    let mut t = Table::new(
        "Same problem, three weight schemes (epsilon = .001)",
        &[
            "scheme",
            "M_l/m_l (weight spread)",
            "iterations",
            "CPU time (s)",
            "relative change vs prior",
        ],
    );

    for (name, scheme) in [
        ("least squares", WeightScheme::LeastSquares),
        ("chi-square", WeightScheme::ChiSquare),
        ("inverse-sqrt", WeightScheme::InverseSqrt),
    ] {
        let gamma = scheme.entry_weights(&x0).expect("finite prior");
        let p = DiagonalProblem::new(
            x0.clone(),
            gamma,
            TotalSpec::Fixed {
                s0: s0.clone(),
                d0: d0.clone(),
            },
        )
        .expect("valid");
        let bounds = theory::CurvatureBounds::compute(&p);
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(0.001)).expect("solvable");
        assert!(sol.stats.converged, "{name} did not converge");
        let rel_change =
            sol.x.max_abs_diff(&x0) / x0.as_slice().iter().fold(0.0_f64, |m, &v| m.max(v));
        t.push_row(vec![
            name.to_string(),
            format!("{:.1}", bounds.upper / bounds.lower),
            sol.stats.iterations.to_string(),
            fmt_seconds(sol.stats.elapsed.as_secs_f64()),
            format!("{rel_change:.3}"),
        ]);
        eprintln!("weights_study: {name} done");
    }

    record.push_table(t);
    record.push_note(format!("scale = {scale:?} ({size}x{size}), seed = {seed}"));
    record.push_note(
        "Chi-square weights make large entries cheap to move and small entries \
         expensive (RAS-like updates); least squares spreads adjustment evenly. \
         The weight spread M_l/m_l is the paper's iteration-bound driver.",
    );
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
