//! Table 4 — SEA on United States migration tables (§4.1.2).
//!
//! Nine 48×48 elastic-totals problems (three periods × variants a/b/c),
//! unit weights. The paper's qualitative findings checked here: the larger
//! growth range (`b`) is harder than the smaller (`a`), and the perturbed-
//! entries variant (`c`) solves fastest.

use sea_bench::{results_dir, Scale};
use sea_core::{solve_diagonal, SeaOptions};
use sea_data::migration::{migration_problem, MigrationVariant, Period};
use sea_report::{fmt_seconds, ExperimentRecord, Table};

fn main() {
    let (scale, _seed) = Scale::from_args();

    let mut record = ExperimentRecord::new(
        "table4",
        "Table 4: SEA on United States migration tables (48 x 48, elastic totals)",
    );
    let mut table = Table::new(
        "CPU time per dataset",
        &["Dataset", "iterations", "CPU time (s)"],
    );

    let mut times = std::collections::HashMap::new();
    for period in Period::all() {
        for variant in [
            MigrationVariant::A,
            MigrationVariant::B,
            MigrationVariant::C,
        ] {
            let name = format!("MIG{}{}", period.tag(), variant.letter());
            let problem = migration_problem(period, variant);
            let sol = solve_diagonal(&problem, &SeaOptions::with_epsilon(0.01))
                .expect("feasible by construction");
            assert!(sol.stats.converged, "{name} did not converge");
            let secs = sol.stats.elapsed.as_secs_f64();
            times.insert(name.clone(), (sol.stats.iterations, secs));
            table.push_row(vec![
                name.clone(),
                sol.stats.iterations.to_string(),
                fmt_seconds(secs),
            ]);
            eprintln!("table4: {name} done");
        }
    }

    record.push_table(table);
    record.push_note(format!(
        "scale = {scale:?} (fixed 48x48 size, as in the paper)"
    ));
    record.push_note(
        "Paper: a-variants 1.3-3.5s, b-variants 4.0-9.1s, c-variants ~0.8s. \
         Expected shape: iterations(b) >= iterations(a) > iterations(c).",
    );
    // Report the qualitative ordering explicitly.
    for period in Period::all() {
        let a = times[&format!("MIG{}a", period.tag())].0;
        let b = times[&format!("MIG{}b", period.tag())].0;
        let c = times[&format!("MIG{}c", period.tag())].0;
        record.push_note(format!(
            "MIG{}: iterations a={a}, b={b}, c={c} ({})",
            period.tag(),
            if b >= a && a >= c {
                "matches paper ordering"
            } else {
                "ordering differs"
            }
        ));
    }
    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
