//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Sorting strategy** inside exact equilibration — the paper's
//!    length-dispatched heapsort/straight-insertion pair vs forcing either
//!    one everywhere.
//! 2. **Convergence-check cadence** — §4.2 suggests checking every other
//!    (or every fifth) iteration to shrink the serial phase; measure the
//!    iteration/time impact on an elastic problem.
//! 3. **Parallel granularity** — simulated efficiency of one large problem
//!    vs several small ones at equal total work (task-grain effect).

use sea_bench::{results_dir, trace_to_phases, Scale};
use sea_core::{solve_diagonal, SeaOptions};
use sea_data::table1_instance;
use sea_linalg::sort;
use sea_parsim::{speedup_table, MachineModel};
use sea_report::{fmt_seconds, ExperimentRecord, Table};
use sea_spatial::random_spe;
use std::time::Instant;

fn bench_sort(strategy: &str, lens: &[usize], reps: usize) -> f64 {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut total = 0.0;
    for &n in lens {
        let key: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let t0 = Instant::now();
        for _ in 0..reps {
            sort::identity_permutation(&mut idx);
            match strategy {
                "insertion" => sort::insertion_argsort(&mut idx, &key),
                "heapsort" => sort::heap_argsort(&mut idx, &key),
                "dispatched" => sort::argsort(&mut idx, &key),
                _ => {
                    let k = &key;
                    idx.sort_unstable_by(|&a, &b| {
                        k[a as usize].partial_cmp(&k[b as usize]).unwrap()
                    });
                }
            }
        }
        total += t0.elapsed().as_secs_f64();
    }
    total
}

fn main() {
    let (scale, seed) = Scale::from_args();
    let mut record = ExperimentRecord::new("ablation", "Ablation studies");

    // --- 1. Sorting strategies. -------------------------------------------
    let (short_reps, long_reps) = match scale {
        Scale::Small => (2_000, 50),
        _ => (20_000, 500),
    };
    let mut t = Table::new(
        "Sorting strategy (seconds, lower is better)",
        &[
            "strategy",
            "short arrays (10-120)",
            "long arrays (500-3000)",
        ],
    );
    let shorts = [10usize, 30, 60, 120];
    let longs = [500usize, 1000, 3000];
    for strategy in ["insertion", "heapsort", "dispatched", "std"] {
        t.push_row(vec![
            strategy.to_string(),
            fmt_seconds(bench_sort(strategy, &shorts, short_reps)),
            fmt_seconds(bench_sort(strategy, &longs, long_reps)),
        ]);
    }
    record.push_table(t);
    record.push_note(
        "Expected: insertion wins short arrays (the Table 7/8 regime), heapsort \
         wins long arrays (the Table 1 regime); the dispatched strategy (the \
         paper's choice) tracks the better of the two.",
    );

    // --- 2. Convergence-check cadence. ------------------------------------
    let size = match scale {
        Scale::Small => 60,
        Scale::Medium => 150,
        Scale::Paper => 300,
    };
    let spe = random_spe(size, size, seed);
    let cmp = spe.to_constrained_matrix().expect("valid");
    let mut t = Table::new(
        "Convergence-check cadence (elastic SP problem)",
        &[
            "check every",
            "iterations",
            "wall time (s)",
            "simulated serial fraction",
        ],
    );
    for cadence in [1usize, 2, 5] {
        let mut opts = SeaOptions::with_epsilon(0.01);
        opts.check_every = cadence;
        opts.record_trace = true;
        let sol = solve_diagonal(&cmp, &opts).expect("solvable");
        let trace = sol.stats.trace.as_ref().expect("trace");
        t.push_row(vec![
            cadence.to_string(),
            sol.stats.iterations.to_string(),
            fmt_seconds(sol.stats.elapsed.as_secs_f64()),
            format!("{:.4}", trace.serial_fraction()),
        ]);
    }
    record.push_table(t);
    record.push_note(
        "Checking less often may overshoot by a few iterations but shrinks the \
         serial fraction — the trade §4.2 describes for the SP runs.",
    );

    // --- 3. Task granularity under simulation. ----------------------------
    let grain_size = match scale {
        Scale::Small => 100,
        _ => 300,
    };
    let p = table1_instance(grain_size, seed);
    let mut opts = SeaOptions::with_epsilon(0.01);
    opts.record_trace = true;
    let sol = solve_diagonal(&p, &opts).expect("solvable");
    let phases = trace_to_phases(sol.stats.trace.as_ref().expect("trace"));
    let mut t = Table::new(
        "Simulated efficiency vs dispatch overhead (N = 6)",
        &["dispatch overhead (s/task)", "E_6"],
    );
    for oh in [0.0, 1e-6, 1e-5, 1e-4] {
        let rows = speedup_table(&phases, &[6], oh, MachineModel::DEFAULT_FORK_JOIN_OVERHEAD);
        t.push_row(vec![
            format!("{oh:.0e}"),
            format!("{:.2}%", 100.0 * rows[0].efficiency),
        ]);
    }
    record.push_table(t);
    record.push_note(
        "Task-allocation overhead eats efficiency as tasks shrink — the Parallel \
         FORTRAN cost the paper's task-allocation discussion refers to.",
    );

    record.print();
    if let Ok(path) = record.save_markdown(&results_dir()) {
        eprintln!("saved {}", path.display());
    }
}
