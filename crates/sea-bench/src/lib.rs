//! # sea-bench — the paper's experiment harness
//!
//! One binary per table/figure of the evaluation section; each prints the
//! same rows/series the paper reports and writes `results/<id>.md`:
//!
//! | binary    | reproduces |
//! |-----------|------------|
//! | `table1`  | Table 1 — SEA on large-scale diagonal problems |
//! | `table2`  | Table 2 — SEA on US input/output datasets |
//! | `table3`  | Table 3 — SEA on social accounting matrices |
//! | `table4`  | Table 4 — SEA on US migration tables |
//! | `table5`  | Table 5 — SEA on spatial price equilibrium problems |
//! | `table6`  | Table 6 + Figure 5 — parallel speedups, diagonal problems |
//! | `table7`  | Table 7 — SEA vs RC vs B-K, general problems, dense G |
//! | `table8`  | Table 8 — SEA on general migration problems |
//! | `table9`  | Table 9 + Figure 7 — parallel speedups, general problems |
//! | `fig5`    | Figure 5 speedup series (CSV) |
//! | `fig7`    | Figure 7 speedup series (CSV) |
//! | `ablation`| extra: sorting / check-cadence ablations (DESIGN.md §8) |
//! | `theory_check` | extra: empirical validation of the §3.1 convergence theory |
//! | `weights_study` | extra: weight-scheme conditioning study |
//! | `run_all` | everything above in sequence |
//!
//! Every binary accepts `--scale {small|medium|paper}` (default `medium`)
//! to trade fidelity for runtime, and `--seed <u64>`.

pub mod experiments;

use sea_core::trace::ExecutionTrace;
use sea_parsim::SimPhase;
use std::path::PathBuf;

/// Problem-size scaling for the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sizes (seconds).
    Small,
    /// Reduced but representative sizes (default).
    Medium,
    /// The paper's full problem sizes.
    Paper,
}

impl Scale {
    /// Parse `--scale` and `--seed` from `std::env::args`. Unknown
    /// arguments are ignored so binaries can add their own flags.
    pub fn from_args() -> (Scale, u64) {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Scale::Medium;
        let mut seed = 1990; // the paper's year, for determinism
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    if let Some(v) = it.next() {
                        scale = match v.as_str() {
                            "small" => Scale::Small,
                            "paper" => Scale::Paper,
                            _ => Scale::Medium,
                        };
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next() {
                        seed = v.parse().unwrap_or(seed);
                    }
                }
                _ => {}
            }
        }
        (scale, seed)
    }
}

/// Convert a solver [`ExecutionTrace`] into simulator phases: parallel
/// phases keep their per-task costs; serial phases (convergence checks)
/// become serial `SimPhase`s.
pub fn trace_to_phases(trace: &ExecutionTrace) -> Vec<SimPhase> {
    trace
        .phases
        .iter()
        .map(|ph| match ph.kind {
            k if !k.is_parallel() => SimPhase::serial(ph.task_seconds.clone()),
            sea_core::trace::PhaseKind::Projection => {
                // Dense mat-vec: bandwidth-bound on a shared-memory machine.
                SimPhase::parallel_memory_bound(ph.task_seconds.clone())
            }
            _ => SimPhase::parallel(ph.task_seconds.clone()),
        })
        .collect()
}

/// Directory experiment records are written to (`./results`).
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Standard speedup columns used by Tables 6 and 9.
pub fn speedup_rows_to_table(
    table: &mut sea_report::Table,
    example: &str,
    rows: &[sea_parsim::SpeedupRow],
) {
    for r in rows {
        if r.processors == 1 {
            continue; // the paper lists N ≥ 2 only
        }
        table.push_row(vec![
            example.to_string(),
            r.processors.to_string(),
            format!("{:.2}", r.speedup),
            format!("{:.2}%", 100.0 * r.efficiency),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::trace::PhaseKind;

    #[test]
    fn trace_conversion_respects_parallelism() {
        let mut tr = ExecutionTrace::new();
        tr.push(PhaseKind::RowEquilibration, vec![1.0, 2.0]);
        tr.push(PhaseKind::ConvergenceCheck, vec![0.5]);
        let phases = trace_to_phases(&tr);
        assert!(phases[0].parallel);
        assert!(!phases[1].parallel);
        assert_eq!(phases[0].tasks, vec![1.0, 2.0]);
    }

    #[test]
    fn vector_era_scaling_penalizes_serial_phases_only() {
        use crate::experiments::{vector_era_phases, VECTOR_ERA_SCALAR_PENALTY};
        let phases = vec![
            SimPhase::parallel(vec![1.0, 2.0]),
            SimPhase::serial(vec![0.5]),
            SimPhase::parallel_memory_bound(vec![3.0]),
        ];
        let scaled = vector_era_phases(&phases);
        assert_eq!(scaled[0].tasks, vec![1.0, 2.0]);
        assert_eq!(scaled[1].tasks, vec![0.5 * VECTOR_ERA_SCALAR_PENALTY]);
        assert_eq!(scaled[2].tasks, vec![3.0]);
        assert!(scaled[2].memory_bound);
    }

    #[test]
    fn projection_phases_convert_to_memory_bound() {
        let mut tr = ExecutionTrace::new();
        tr.push(PhaseKind::Projection, vec![0.1; 4]);
        let phases = trace_to_phases(&tr);
        assert!(phases[0].parallel);
        assert!(phases[0].memory_bound);
    }

    #[test]
    fn speedup_table_skips_n1() {
        let mut t = sea_report::Table::new("t", &["Example", "N", "S_N", "E_N"]);
        let rows = vec![
            sea_parsim::SpeedupRow {
                processors: 1,
                time: 1.0,
                speedup: 1.0,
                efficiency: 1.0,
            },
            sea_parsim::SpeedupRow {
                processors: 2,
                time: 0.52,
                speedup: 1.92,
                efficiency: 0.96,
            },
        ];
        speedup_rows_to_table(&mut t, "X", &rows);
        assert_eq!(t.len(), 1);
    }
}
