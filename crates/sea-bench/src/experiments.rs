//! Shared experiment drivers for the speedup studies (Table 6/Figure 5 and
//! Table 9/Figure 7), so the table and figure binaries report identical
//! numbers.

use crate::{trace_to_phases, Scale};
use sea_baselines::rc::{solve_general_rc, RcOptions};
use sea_core::{solve_diagonal, GeneralSeaOptions, SeaOptions};
use sea_data::io_tables::{io_dataset, IoVariant};
use sea_data::{table1_instance, table7_instance};
use sea_parsim::SimPhase;
use sea_parsim::{speedup_table, MachineModel, SpeedupRow};
use sea_spatial::random_spe;

/// Processor counts of the paper's diagonal speedup study.
pub const DIAGONAL_PROCESSORS: [usize; 4] = [1, 2, 4, 6];
/// Processor counts of the paper's general speedup study.
pub const GENERAL_PROCESSORS: [usize; 3] = [1, 2, 4];

/// Scalar penalty of the "vector-era machine": on the IBM 3090-600E the
/// parallel equilibration/mat-vec phases ran on the Vector Facility while
/// the serial convergence-verification phases ran scalar, making serial
/// work ~this much more expensive relative to parallel work than on a
/// modern SIMD CPU (where compilers vectorize the serial checks too).
pub const VECTOR_ERA_SCALAR_PENALTY: f64 = 30.0;

/// Rescale a phase list to the vector-era machine: serial phases cost
/// [`VECTOR_ERA_SCALAR_PENALTY`]× more relative to parallel phases.
pub fn vector_era_phases(phases: &[SimPhase]) -> Vec<SimPhase> {
    phases
        .iter()
        .map(|ph| {
            if ph.parallel {
                ph.clone()
            } else {
                SimPhase::serial(
                    ph.tasks
                        .iter()
                        .map(|&t| t * VECTOR_ERA_SCALAR_PENALTY)
                        .collect(),
                )
            }
        })
        .collect()
}

fn speedups_from_trace(
    trace: &sea_core::trace::ExecutionTrace,
    processors: &[usize],
) -> Vec<SpeedupRow> {
    let phases = trace_to_phases(trace);
    speedup_table(
        &phases,
        processors,
        MachineModel::DEFAULT_DISPATCH_OVERHEAD,
        MachineModel::DEFAULT_FORK_JOIN_OVERHEAD,
    )
}

/// Table 6 / Figure 5: run the four diagonal examples (IO72b, the Table 1
/// 1000×1000 instance, SP500×500, SP750×750) with trace recording and
/// simulate N ∈ {1,2,4,6} processors. Returns `(example name, rows)`.
pub fn diagonal_speedup_experiment(scale: Scale, seed: u64) -> Vec<(String, Vec<SpeedupRow>)> {
    let mut out = Vec::new();

    // IO72b (fixed totals; scale shrinks the companion random instance
    // sizes but the I/O dataset is fixed-size).
    {
        let p = io_dataset(
            IoVariant {
                family: 2,
                variant: 'b',
            },
            0,
        );
        let mut opts = SeaOptions::with_epsilon(0.01);
        opts.record_trace = true;
        let sol = solve_diagonal(&p, &opts).expect("feasible");
        let trace = sol.stats.trace.expect("trace requested");
        out.push((
            "IO72b".to_string(),
            speedups_from_trace(&trace, &DIAGONAL_PROCESSORS),
        ));
    }

    // The Table 1 random instance (1000×1000 at paper scale).
    {
        let size = match scale {
            Scale::Small => 200,
            Scale::Medium => 500,
            Scale::Paper => 1000,
        };
        let p = table1_instance(size, seed);
        let mut opts = SeaOptions::with_epsilon(0.01);
        opts.record_trace = true;
        let sol = solve_diagonal(&p, &opts).expect("feasible");
        let trace = sol.stats.trace.expect("trace requested");
        out.push((
            format!("{size} x {size}"),
            speedups_from_trace(&trace, &DIAGONAL_PROCESSORS),
        ));
    }

    // SP500 and SP750 (elastic; convergence checked every other iteration,
    // as §4.2 describes).
    let (sp_small, sp_large) = match scale {
        Scale::Small => (100, 150),
        Scale::Medium => (250, 400),
        Scale::Paper => (500, 750),
    };
    for size in [sp_small, sp_large] {
        let spe = random_spe(size, size, seed);
        let cmp = spe.to_constrained_matrix().expect("valid");
        let mut opts = SeaOptions::with_epsilon(0.01);
        opts.check_every = 2;
        opts.record_trace = true;
        let sol = solve_diagonal(&cmp, &opts).expect("feasible");
        let trace = sol.stats.trace.expect("trace requested");
        out.push((
            format!("SP{size} x {size}"),
            speedups_from_trace(&trace, &DIAGONAL_PROCESSORS),
        ));
    }

    out
}

/// Table 9 / Figure 7: SEA vs RC on the general dense-G example
/// (10000×10000 G at paper scale), simulated at N ∈ {1,2,4}.
///
/// Returns four series: SEA and RC on the modern measured-trace machine,
/// plus both on the "vector-era machine" (serial phases ×
/// [`VECTOR_ERA_SCALAR_PENALTY`]) that reproduces the 3090's
/// serial-phase-dominated efficiency gap between the two algorithms.
pub fn general_speedup_experiment(scale: Scale, seed: u64) -> Vec<(String, Vec<SpeedupRow>)> {
    let side = match scale {
        Scale::Small => 20,
        Scale::Medium => 50,
        Scale::Paper => 100,
    };
    let p = table7_instance(side, seed);
    let g_order = side * side;

    let mut sea_opts = GeneralSeaOptions::with_epsilon(0.001);
    sea_opts.record_trace = true;
    let sea = sea_core::solve_general(&p, &sea_opts).expect("solvable");
    assert!(sea.converged, "general SEA did not converge");
    let sea_phases = trace_to_phases(sea.trace.as_ref().expect("trace"));

    let mut rc_opts = RcOptions::with_epsilon(0.001);
    rc_opts.record_trace = true;
    let rc = solve_general_rc(&p, &rc_opts).expect("solvable");
    assert!(rc.converged, "general RC did not converge");
    let rc_phases = trace_to_phases(rc.trace.as_ref().expect("trace"));

    let run = |phases: &[SimPhase]| {
        speedup_table(
            phases,
            &GENERAL_PROCESSORS,
            MachineModel::DEFAULT_DISPATCH_OVERHEAD,
            MachineModel::DEFAULT_FORK_JOIN_OVERHEAD,
        )
    };

    vec![
        (format!("SEA {g_order} x {g_order}"), run(&sea_phases)),
        (format!("RC {g_order} x {g_order}"), run(&rc_phases)),
        (
            format!("SEA {g_order} x {g_order} (vector-era)"),
            run(&vector_era_phases(&sea_phases)),
        ),
        (
            format!("RC {g_order} x {g_order} (vector-era)"),
            run(&vector_era_phases(&rc_phases)),
        ),
    ]
}
