//! Offline stand-in for `proptest`.
//!
//! Provides the subset used across this workspace: the [`proptest!`] macro
//! with an optional `#![proptest_config(...)]` header, range strategies over
//! the numeric primitives, [`collection::vec`], [`array::uniform2`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Case generation
//! is a deterministic SplitMix64 stream keyed on the test's module path and
//! name plus the case index, so failures are reproducible run-to-run.
//! Unlike upstream there is no shrinking: the failing case's inputs are
//! fully determined by the printed case index.
//!
//! Regression persistence mirrors upstream's `proptest-regressions/`
//! convention, adapted to index-determined cases: because a case's inputs
//! are a pure function of the qualified test name and the case index, a
//! regression entry is just that pair. Failing cases are appended to
//! `proptest-regressions/regressions.txt` in the consuming crate, and every
//! later run replays the recorded cases before the fresh sweep — commit the
//! file and the failure is pinned for CI forever.

/// Configuration accepted by `#![proptest_config(...)]`.
pub mod test_runner {
    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many generated cases each property is checked with.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the property named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the fully qualified name, mixed with the case.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }
}

/// Failing-case persistence (`proptest-regressions/regressions.txt`).
pub mod persistence {
    use std::io::Write;
    use std::path::Path;

    /// File the regressions live in, under the consuming crate's
    /// `proptest-regressions/` directory.
    pub const FILE_NAME: &str = "regressions.txt";

    /// Recorded case indices for the property `qualified`, in file order.
    /// Lines are `<qualified-test-name> <case-index>`; `#` comments and
    /// malformed lines are skipped. Missing file means no regressions.
    pub fn load(dir: &Path, qualified: &str) -> Vec<u32> {
        let Ok(text) = std::fs::read_to_string(dir.join(FILE_NAME)) else {
            return Vec::new();
        };
        let mut cases = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some(qualified) {
                continue;
            }
            if let Some(Ok(case)) = parts.next().map(str::parse) {
                cases.push(case);
            }
        }
        cases
    }

    /// Append a failing case, creating the directory and file on first use.
    /// Best-effort: persistence must never mask the original test failure,
    /// so IO errors are swallowed. Already-recorded cases are not
    /// duplicated (a replayed regression that still fails stays one line).
    pub fn record(dir: &Path, qualified: &str, case: u32) {
        if load(dir, qualified).contains(&case) {
            return;
        }
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(FILE_NAME);
        let header_needed = !path.exists();
        let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
            return;
        };
        if header_needed {
            let _ = writeln!(
                f,
                "# Proptest regression file: one `<qualified-test-name> <case-index>` pair\n\
                 # per line. Case inputs are a pure function of that pair, so each line\n\
                 # pins one historical failure. Commit this file; edit only to prune."
            );
        }
        let _ = writeln!(f, "{qualified} {case}");
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_strategy!(f32, f64);

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategies are usable behind references (the macro takes `&expr`).
    impl<S: Strategy> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

/// `Vec` strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `element`-generated values, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `[T; 2]`.
    pub struct Uniform2<S> {
        element: S,
    }

    /// Two independent draws from `element`.
    pub fn uniform2<S: Strategy>(element: S) -> Uniform2<S> {
        Uniform2 { element }
    }

    impl<S: Strategy> Strategy for Uniform2<S> {
        type Value = [S::Value; 2];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 2] {
            [self.element.generate(rng), self.element.generate(rng)]
        }
    }
}

/// Define properties: optional `#![proptest_config(expr)]`, then one or
/// more `#[test] fn name(arg in strategy, ...) { body }` items. Each body
/// runs once per generated case; `prop_assert*`/`prop_assume!` short-circuit
/// the case, and ordinary panics propagate with the case index attached.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let qualified = concat!(module_path!(), "::", stringify!($name));
            // `env!` expands in the consuming crate, so regressions land in
            // (and replay from) that crate's `proptest-regressions/`.
            let proptest_regress_dir = ::std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("proptest-regressions");
            let mut proptest_run_case = |case: u32| {
                let mut proptest_case_rng =
                    $crate::test_runner::TestRng::for_case(qualified, case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_case_rng,
                    );
                )*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                outcome
            };
            // Recorded regressions replay first: a committed failure stays
            // pinned even when it lies beyond this run's fresh-case budget.
            for case in $crate::persistence::load(&proptest_regress_dir, qualified) {
                if let ::std::result::Result::Err(message) = proptest_run_case(case) {
                    panic!(
                        "property {qualified} failed at recorded regression case {case}: {message}"
                    );
                }
            }
            for case in 0..config.cases {
                if let ::std::result::Result::Err(message) = proptest_run_case(case) {
                    $crate::persistence::record(&proptest_regress_dir, qualified, case);
                    panic!("property {qualified} failed at case {case}: {message}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

/// Assert inside a property; failure reports the generating case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left, right, format!($($fmt)*)
            ));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The glob import test modules use.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            n in 3usize..17,
            x in -2.5f64..4.0,
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.5..4.0).contains(&x), "x out of range: {x}");
        }

        #[test]
        fn vec_strategy_respects_size(
            v in crate::collection::vec(0.0f64..1.0, 2..9),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&e| (0.0..1.0).contains(&e)));
        }

        #[test]
        fn uniform2_generates_pairs(p in crate::array::uniform2(-1.0f64..1.0)) {
            prop_assert!(p.len() == 2);
            prop_assert_eq!(p.len(), 2);
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n < 3);
            prop_assert!(n < 3);
        }
    }

    #[test]
    fn persistence_round_trips_and_skips_comments() {
        let dir = std::env::temp_dir().join(format!(
            "proptest-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(crate::persistence::load(&dir, "a::b").is_empty());

        crate::persistence::record(&dir, "a::b", 17);
        crate::persistence::record(&dir, "a::b", 4);
        crate::persistence::record(&dir, "a::b", 17); // deduplicated
        crate::persistence::record(&dir, "other::prop", 9);

        assert_eq!(crate::persistence::load(&dir, "a::b"), vec![17, 4]);
        assert_eq!(crate::persistence::load(&dir, "other::prop"), vec![9]);
        assert!(crate::persistence::load(&dir, "missing::prop").is_empty());

        let text =
            std::fs::read_to_string(dir.join(crate::persistence::FILE_NAME)).unwrap();
        assert!(text.starts_with('#'), "file carries an explanatory header");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("x::y", 7);
        let mut b = crate::test_runner::TestRng::for_case("x::y", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("x::y", 8);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
