//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` APIs the code actually uses are reimplemented here with
//! no external dependencies: [`RngCore`]/[`Rng`] with `random_range`,
//! [`SeedableRng`] with the SplitMix64-based `seed_from_u64`, and
//! [`seq::SliceRandom::shuffle`]. The value stream is deterministic for a
//! given seed (which is all the experiments and tests rely on) but is *not*
//! bit-compatible with upstream `rand`.

/// Low-level source of randomness: a 64-bit word generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a bool with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        distr::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring upstream's `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 exactly like
    /// upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step (public so sibling stand-ins can share it).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform range sampling.
pub mod distr {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Map 64 random bits to a `f64` in `[0, 1)`.
    #[inline]
    pub(crate) fn unit_f64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A range type that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty float range");
                    let u = unit_f64(rng.next_u64()) as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty float range");
                    let u = unit_f64(rng.next_u64()) as $t;
                    a + u * (b - a)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty integer range");
                    let span = (b as i128 - a as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (a as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Slice utilities (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices, mirroring upstream's trait of the same name.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 += 1;
            splitmix64(&mut s)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(5usize..9);
            assert!((5..9).contains(&i));
            let k = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&k));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(42);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Raw([u8; 16]);
        impl SeedableRng for Raw {
            type Seed = [u8; 16];
            fn from_seed(seed: [u8; 16]) -> Self {
                Raw(seed)
            }
        }
        assert_eq!(Raw::seed_from_u64(9).0, Raw::seed_from_u64(9).0);
        assert_ne!(Raw::seed_from_u64(9).0, Raw::seed_from_u64(10).0);
    }
}
