//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`] built on a genuine
//! ChaCha block function (8 rounds), seeded via the workspace `rand`
//! stand-in's [`rand::SeedableRng`]. Deterministic per seed; not
//! bit-compatible with the upstream crate.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha keystream RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (from the 32-byte seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    idx: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce left at zero (single-stream use).
        let input = state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn keystream_is_not_constant_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn range_sampling_looks_uniform_enough() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
