//! Offline stand-in for `criterion`.
//!
//! Implements the subset this workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`/`bench_with_input`,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (simple form). Each
//! benchmark runs a short warm-up then `sample_size` timed samples and
//! prints min/mean/max wall-clock per iteration. There are no plots,
//! baselines, or statistical analysis — just honest timings, so relative
//! comparisons (e.g. kernel A vs kernel B at the same `n`) remain valid.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier combining a function name and a parameter, printed as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, parameter: P) -> Self {
        let name = name.into();
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// routine.
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations collected by `iter`.
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample after a warm-up call, keeping the
    /// result alive via [`black_box`] so the work is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.timings.clear();
        self.timings.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let full = format!("{}/{}", self.name, label);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut bencher);
        let t = &bencher.timings;
        if t.is_empty() {
            println!("{full:<48} (no samples: bencher.iter never called)");
            return;
        }
        let min = *t.iter().min().unwrap();
        let max = *t.iter().max().unwrap();
        let mean = t.iter().sum::<Duration>() / t.len() as u32;
        println!(
            "{full:<48} time: [{} {} {}]  ({} samples)",
            format_duration(min),
            format_duration(mean),
            format_duration(max),
            t.len(),
        );
    }

    /// Benchmark `f` under `id` (any `Display`, e.g. a [`BenchmarkId`] or
    /// `&str`).
    pub fn bench_function<D: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), f);
        self
    }

    /// Benchmark `f` with a borrowed input (the input is passed through
    /// unchanged; criterion's per-input setup machinery is not needed
    /// here).
    pub fn bench_with_input<D, I, F>(&mut self, id: D, input: &I, mut f: F) -> &mut Self
    where
        D: std::fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (separator line, matching criterion's API shape).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Benchmark driver. Holds the optional substring filter taken from the
/// command line (`cargo bench -- <filter>`).
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Read a name filter from argv, skipping harness flags cargo passes
    /// (`--bench`, `--test`) and any `--flag[=value]` pairs.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--bench" || arg == "--test" || arg == "--nocapture" {
                continue;
            }
            if let Some(flag) = arg.strip_prefix("--") {
                // Consume a separated value for value-taking flags.
                if !flag.contains('=') && matches!(flag, "sample-size" | "measurement-time") {
                    let _ = args.next();
                }
                continue;
            }
            self.filter = Some(arg);
        }
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            criterion: self,
        }
    }
}

/// `criterion_group!(name, target, ...)` — defines `fn name()` running each
/// target against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)` — defines `fn main()` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            timings: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.timings.len(), 5);
        // One warm-up call plus five samples.
        assert_eq!(count, 6);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("fixed", 100).to_string(), "fixed/100");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn filter_matching() {
        let c = Criterion {
            filter: Some("kern".into()),
        };
        assert!(c.matches("kernels/fixed/100"));
        assert!(!c.matches("solvers/sea"));
        let open = Criterion::default();
        assert!(open.matches("anything"));
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2);
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.finish();
        }
        // warm-up + 2 samples
        assert_eq!(ran, 3);
    }
}
