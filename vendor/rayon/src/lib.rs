//! Offline stand-in for `rayon`.
//!
//! Implements the subset of the rayon API this workspace uses — parallel
//! slice/range iterators with `zip`/`enumerate`/`for_each`/
//! `try_for_each_init`/`sum`, plus [`ThreadPoolBuilder`] and
//! [`current_num_threads`] — on top of `std::thread::scope`. Every parallel
//! iterator here is *indexed* (exactly splittable), which is all the
//! equilibration passes need: the driver splits the index space into one
//! contiguous chunk per worker and runs each chunk with plain sequential
//! iterators, so per-item results are bitwise identical to the serial path
//! regardless of worker count.

use std::cell::Cell;

// ---------------------------------------------------------------------------
// Thread accounting and pools.
// ---------------------------------------------------------------------------

thread_local! {
    /// Width installed by [`ThreadPool::install`] on this thread (0 = none).
    static INSTALLED_WIDTH: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel drives on this thread will fan out to: the
/// installed pool width if inside [`ThreadPool::install`], otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_WIDTH.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this
/// stand-in, present for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" of a fixed width. Threads are not persistent: the width is
/// installed for the duration of [`install`](Self::install) and scoped
/// threads are spawned per parallel drive.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's width installed as the fan-out for any
    /// parallel iterators it drives.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_WIDTH.with(|c| c.set(self.0));
            }
        }
        let prev = INSTALLED_WIDTH.with(|c| c.replace(self.width));
        let _restore = Restore(prev);
        op()
    }

    /// The width this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder (default width = available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request an exact width; `0` means the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

// ---------------------------------------------------------------------------
// The iterator traits.
// ---------------------------------------------------------------------------

/// Base parallel-iterator trait carrying the item type.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;
}

/// An exactly-splittable parallel iterator over a known-length index space.
pub trait IndexedParallelIterator: ParallelIterator {
    /// The sequential iterator a chunk is driven with.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Remaining number of items.
    fn len(&self) -> usize;

    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into the first `index` items and the rest.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Downgrade to a sequential iterator.
    fn into_seq(self) -> Self::SeqIter;

    /// Pair up with another indexed iterator (truncates to the shorter).
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attach the global index to each item.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Run `op` on every item across the current fan-out width.
    fn for_each<OP>(self, op: OP)
    where
        OP: Fn(Self::Item) + Sync,
    {
        each_chunk(self, &|chunk| {
            chunk.into_seq().for_each(&op);
            Ok::<(), Never>(())
        })
        .unwrap_or_else(|never| match never {});
    }

    /// Fallible for-each with one `init()` value per worker chunk — the
    /// rayon idiom the equilibration passes use for per-thread scratch.
    /// All chunks run to completion; the first error in chunk order wins.
    ///
    /// # Errors
    /// Returns the first error produced by `op`.
    fn try_for_each_init<T, E, INIT, OP>(self, init: INIT, op: OP) -> Result<(), E>
    where
        INIT: Fn() -> T + Sync,
        OP: Fn(&mut T, Self::Item) -> Result<(), E> + Sync,
        E: Send,
    {
        each_chunk(self, &|chunk| {
            let mut acc = init();
            for item in chunk.into_seq() {
                op(&mut acc, item)?;
            }
            Ok(())
        })
    }

    /// Sum of all items (chunk partials are added in chunk order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let mut partials: Vec<S> = Vec::new();
        collect_chunk_results(self, &|chunk| chunk.into_seq().sum::<S>(), &mut partials);
        partials.into_iter().sum()
    }
}

/// Uninhabited error for the infallible drive.
enum Never {}

/// Split `it` into one contiguous chunk per worker and run `body` on each,
/// in parallel when the installed width allows it. Chunk results are
/// combined in chunk order, so outcomes are deterministic.
fn each_chunk<I, E>(it: I, body: &(dyn Fn(I) -> Result<(), E> + Sync)) -> Result<(), E>
where
    I: IndexedParallelIterator,
    E: Send,
{
    let mut results: Vec<Result<(), E>> = Vec::new();
    collect_chunk_results(it, body, &mut results);
    results.into_iter().collect()
}

/// Shared chunked drive: splits `it` evenly, runs `body` per chunk (scoped
/// threads beyond the first), and pushes per-chunk outputs in chunk order.
fn collect_chunk_results<I, R>(
    it: I,
    body: &(dyn Fn(I) -> R + Sync),
    out: &mut Vec<R>,
) where
    I: IndexedParallelIterator,
    R: Send,
{
    let len = it.len();
    let workers = current_num_threads().clamp(1, len.max(1));
    if workers <= 1 {
        out.push(body(it));
        return;
    }
    // Even split: the first `len % workers` chunks get one extra item.
    let mut parts = Vec::with_capacity(workers);
    let (base, extra) = (len / workers, len % workers);
    let mut rest = it;
    for i in 0..workers - 1 {
        let take = base + usize::from(i < extra);
        let (head, tail) = rest.split_at(take);
        parts.push(head);
        rest = tail;
    }
    parts.push(rest);

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers - 1);
        let mut parts = parts.into_iter();
        let first = parts.next().expect("at least one chunk");
        for part in parts {
            handles.push(s.spawn(move || body(part)));
        }
        out.push(body(first));
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Sources: slices, chunks, ranges.
// ---------------------------------------------------------------------------

/// Parallel shared-slice iterator (`par_iter`).
pub struct Iter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;
}

impl<'a, T: Sync> IndexedParallelIterator for Iter<'a, T> {
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (Iter { slice: a }, Iter { slice: b })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Parallel mutable-slice iterator (`par_iter_mut`).
pub struct IterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;
}

impl<'a, T: Send> IndexedParallelIterator for IterMut<'a, T> {
    type SeqIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (IterMut { slice: a }, IterMut { slice: b })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over complete `chunk`-sized windows
/// (`par_chunks_exact`).
pub struct ChunksExact<'a, T: Sync> {
    /// Trimmed to a multiple of `chunk` at construction.
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksExact<'a, T> {
    type Item = &'a [T];
}

impl<'a, T: Sync> IndexedParallelIterator for ChunksExact<'a, T> {
    type SeqIter = std::slice::ChunksExact<'a, T>;

    fn len(&self) -> usize {
        self.slice.len() / self.chunk
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index * self.chunk);
        (
            ChunksExact {
                slice: a,
                chunk: self.chunk,
            },
            ChunksExact {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_exact(self.chunk)
    }
}

/// Mutable variant of [`ChunksExact`] (`par_chunks_exact_mut`).
pub struct ChunksExactMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksExactMut<'a, T> {
    type Item = &'a mut [T];
}

impl<'a, T: Send> IndexedParallelIterator for ChunksExactMut<'a, T> {
    type SeqIter = std::slice::ChunksExactMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len() / self.chunk
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index * self.chunk);
        (
            ChunksExactMut {
                slice: a,
                chunk: self.chunk,
            },
            ChunksExactMut {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_exact_mut(self.chunk)
    }
}

/// Extension methods on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over elements.
    fn par_iter(&self) -> Iter<'_, T>;
    /// Parallel iterator over complete `chunk`-sized windows.
    fn par_chunks_exact(&self, chunk: usize) -> ChunksExact<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter { slice: self }
    }

    fn par_chunks_exact(&self, chunk: usize) -> ChunksExact<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        let complete = self.len() - self.len() % chunk;
        ChunksExact {
            slice: &self[..complete],
            chunk,
        }
    }
}

/// Extension methods on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable elements.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    /// Parallel iterator over complete mutable `chunk`-sized windows.
    fn par_chunks_exact_mut(&mut self, chunk: usize) -> ChunksExactMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }

    fn par_chunks_exact_mut(&mut self, chunk: usize) -> ChunksExactMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        let complete = self.len() - self.len() % chunk;
        ChunksExactMut {
            slice: &mut self[..complete],
            chunk,
        }
    }
}

/// Conversion into a parallel iterator (implemented for integer ranges).
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: IndexedParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: std::ops::Range<T>,
}

macro_rules! impl_range_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
        }

        impl IndexedParallelIterator for RangeIter<$t> {
            type SeqIter = std::ops::Range<$t>;

            fn len(&self) -> usize {
                (self.range.end as i128 - self.range.start as i128).max(0) as usize
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = (self.range.start as i128 + index as i128) as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }

            fn into_seq(self) -> Self::SeqIter {
                self.range
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }
    )*};
}
impl_range_iter!(u32, u64, usize, i32, i64);

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// Lock-step pairing of two indexed iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedParallelIterator, B: IndexedParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
}

impl<A: IndexedParallelIterator, B: IndexedParallelIterator> IndexedParallelIterator
    for Zip<A, B>
{
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Global-index attachment, split-aware via an offset.
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: IndexedParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type SeqIter = std::iter::Zip<std::ops::Range<usize>, I::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        let start = self.offset;
        let end = start + self.base.len();
        (start..end).zip(self.base.into_seq())
    }
}

/// The glob import used throughout the workspace.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn for_each_covers_every_item() {
        let mut data = vec![0u64; 1000];
        data.par_iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = i as u64 + 1);
        assert_eq!(data.iter().sum::<u64>(), 500_500);
    }

    #[test]
    fn zip_and_chunks_line_up() {
        let src: Vec<f64> = (0..12).map(f64::from).collect();
        let mut dst = vec![0.0; 4];
        dst.par_iter_mut()
            .zip(src.par_chunks_exact(3))
            .for_each(|(d, row)| *d = row.iter().sum());
        assert_eq!(dst, vec![3.0, 12.0, 21.0, 30.0]);
    }

    #[test]
    fn try_for_each_init_reports_first_error_in_order() {
        let data: Vec<usize> = (0..64).collect();
        let r = data
            .par_iter()
            .try_for_each_init(|| 0usize, |_acc, &v| if v >= 10 { Err(v) } else { Ok(()) });
        assert_eq!(r, Err(10));
    }

    #[test]
    fn range_sum_matches_closed_form() {
        let sum: i64 = (0..1000i64).into_par_iter().sum();
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn pool_width_is_installed_and_restored() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn parallel_results_match_serial_bitwise() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let src: Vec<f64> = (0..997).map(|i| (i as f64).sin()).collect();
        let mut serial = vec![0.0; src.len()];
        for (d, s) in serial.iter_mut().zip(&src) {
            *d = s.exp().ln_1p();
        }
        let mut par = vec![0.0; src.len()];
        pool.install(|| {
            par.par_iter_mut()
                .zip(src.par_iter())
                .for_each(|(d, s)| *d = s.exp().ln_1p());
        });
        assert_eq!(serial, par);
    }
}
