//! # sea — the Splitting Equilibration Algorithm workspace facade
//!
//! A production-quality Rust reproduction of
//!
//! > A. Nagurney and A. Eydeland, *"A Splitting Equilibration Algorithm for
//! > the Computation of Large-Scale Constrained Matrix Problems: Theoretical
//! > Analysis and Applications"*, OR 223-90, July 1990 (Supercomputing '90).
//!
//! The *constrained matrix problem* estimates a nonnegative matrix `X`
//! closest to a prior `X⁰` under row/column total constraints — the core
//! computation behind input/output table updating, social accounting matrix
//! (SAM) balancing, migration-flow projection, and spatial price
//! equilibrium. The **splitting equilibration algorithm (SEA)** solves the
//! entire class by dual block-coordinate ascent whose row and column
//! subproblems decompose into independent closed-form "exact equilibration"
//! solves — embarrassingly parallel across rows/columns.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] ([`sea_core`]) — problems, weight schemes, the exact
//!   equilibration kernel, diagonal SEA (unknown-totals / SAM / fixed-totals
//!   variants), general SEA via projection, dual theory.
//! * [`baselines`] ([`sea_baselines`]) — the RC equilibration algorithm,
//!   Bachem–Korte, and RAS/IPF comparators.
//! * [`spatial`] ([`sea_spatial`]) — spatial price equilibrium and its
//!   isomorphism with elastic constrained matrix problems.
//! * [`data`] ([`sea_data`]) — synthetic dataset generators matching every
//!   dataset family the paper evaluates on.
//! * [`parsim`] ([`sea_parsim`]) — a deterministic multiprocessor scheduling
//!   simulator used to reproduce the paper's speedup studies.
//! * [`linalg`] ([`sea_linalg`]) and [`report`] ([`sea_report`]) —
//!   substrates.
//!
//! ## Quickstart
//!
//! ```
//! use sea::core::{DiagonalProblem, SeaOptions, TotalSpec, WeightScheme, solve_diagonal};
//! use sea::linalg::DenseMatrix;
//!
//! // A 2x2 prior whose row/column totals must double.
//! let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let gamma = WeightScheme::ChiSquare.entry_weights(&x0).unwrap();
//! let problem = DiagonalProblem::new(
//!     x0,
//!     gamma,
//!     TotalSpec::Fixed { s0: vec![6.0, 14.0], d0: vec![8.0, 12.0] },
//! )
//! .unwrap();
//! let sol = solve_diagonal(&problem, &SeaOptions::default()).unwrap();
//! let sums = sol.x.row_sums();
//! assert!((sums[0] - 6.0).abs() < 1e-6 && (sums[1] - 14.0).abs() < 1e-6);
//! ```

pub use sea_baselines as baselines;
pub use sea_core as core;
pub use sea_data as data;
pub use sea_linalg as linalg;
pub use sea_parsim as parsim;
pub use sea_report as report;
pub use sea_spatial as spatial;
